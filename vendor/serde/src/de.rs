//! Deserialization half of the mini-serde data model.
//!
//! Instead of real serde's visitor machinery, a [`Deserializer`] produces a
//! self-describing [`Content`] tree (the JSON data model) and every
//! [`Deserialize`] impl decodes from that. Derived impls route nested fields
//! back through [`ContentDeserializer`], so user-written `with`-style helper
//! modules keep their real-serde signatures.

use std::fmt::Display;
use std::marker::PhantomData;

/// Errors produced while deserializing.
pub trait Error: Sized + Display {
    /// Builds an error from any displayable message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A self-describing value tree — the JSON data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Content>),
    /// An object; insertion order is preserved.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an `i64`, converting in-range unsigned values.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(v) => Some(v),
            Content::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, converting non-negative signed values.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, converting any numeric content.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::F64(v) => Some(v),
            Content::I64(v) => Some(v as f64),
            Content::U64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, when it is one.
    pub fn as_array(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object entries, when it is one.
    pub fn as_object(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// `true` for [`Content::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    /// A short name of the content's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "boolean",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// A data-format frontend: yields the full value as [`Content`].
pub trait Deserializer<'de>: Sized {
    /// Error type of the format.
    type Error: Error;

    /// Consumes the input and returns its content tree.
    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

/// A deserializable value.
pub trait Deserialize<'de>: Sized {
    /// Builds `Self` from the deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Marker alias matching real serde's `DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Replays an already-materialised [`Content`] tree as a [`Deserializer`]
/// with a caller-chosen error type. This is what derived impls use for
/// nested fields and what `with`-module `deserialize` functions receive.
pub struct ContentDeserializer<E> {
    content: Content,
    marker: PhantomData<E>,
}

impl<E> ContentDeserializer<E> {
    /// Wraps a content tree.
    pub fn new(content: Content) -> Self {
        ContentDeserializer {
            content,
            marker: PhantomData,
        }
    }
}

impl<E: Error> std::fmt::Debug for ContentDeserializer<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContentDeserializer")
            .field("content", &self.content)
            .finish()
    }
}

impl<'de, E: Error> Deserializer<'de> for ContentDeserializer<E> {
    type Error = E;

    fn deserialize_content(self) -> Result<Content, E> {
        Ok(self.content)
    }
}

/// Decodes a typed value out of a content tree.
pub fn from_content<'de, T: Deserialize<'de>, E: Error>(content: Content) -> Result<T, E> {
    T::deserialize(ContentDeserializer::new(content))
}

/// Removes `key` from derived-struct map entries, yielding [`Content::Null`]
/// when absent (so `Option` fields default to `None` and everything else
/// reports a type error naming the field's expectation).
pub fn take_field(entries: &mut Vec<(String, Content)>, key: &str) -> Content {
    match entries.iter().position(|(k, _)| k == key) {
        Some(index) => entries.swap_remove(index).1,
        None => Content::Null,
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for primitives and common std types.
// ---------------------------------------------------------------------------

macro_rules! deserialize_int {
    ($($t:ty),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.deserialize_content()?;
                let value = content
                    .as_i64()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .or_else(|| content.as_u64().and_then(|v| <$t>::try_from(v).ok()));
                value.ok_or_else(|| {
                    D::Error::custom(format_args!(
                        "invalid type: expected {}, found {}",
                        stringify!($t),
                        content.kind()
                    ))
                })
            }
        }
    )*};
}

deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! deserialize_float {
    ($($t:ty),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.deserialize_content()?;
                content.as_f64().map(|v| v as $t).ok_or_else(|| {
                    D::Error::custom(format_args!(
                        "invalid type: expected {}, found {}",
                        stringify!($t),
                        content.kind()
                    ))
                })
            }
        }
    )*};
}

deserialize_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let content = deserializer.deserialize_content()?;
        content.as_bool().ok_or_else(|| {
            D::Error::custom(format_args!(
                "invalid type: expected bool, found {}",
                content.kind()
            ))
        })
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) => Ok(s),
            other => Err(D::Error::custom(format_args!(
                "invalid type: expected string, found {}",
                other.kind()
            ))),
        }
    }
}

/// Static string slices deserialize by leaking the decoded `String`. Real
/// serde borrows from the input instead; this data model owns its strings,
/// so a (tiny, test-only) leak is the price of keeping `&'static str` fields
/// round-trippable.
impl<'de> Deserialize<'de> for &'static str {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) => Ok(&*Box::leak(s.into_boxed_str())),
            other => Err(D::Error::custom(format_args!(
                "invalid type: expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(()),
            other => Err(D::Error::custom(format_args!(
                "invalid type: expected null, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            other => from_content(other).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Seq(items) => items.into_iter().map(from_content).collect(),
            other => Err(D::Error::custom(format_args!(
                "invalid type: expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        from_content::<T, D::Error>(deserializer.deserialize_content()?).map(Box::new)
    }
}

macro_rules! deserialize_tuple_impl {
    ($(($($name:ident),+) of $len:expr;)*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
                match deserializer.deserialize_content()? {
                    Content::Seq(items) if items.len() == $len => {
                        let mut iter = items.into_iter();
                        Ok(($(
                            from_content::<$name, De::Error>(
                                iter.next().expect("length checked"),
                            )?,
                        )+))
                    }
                    other => Err(De::Error::custom(format_args!(
                        "invalid type: expected array of length {}, found {}",
                        $len,
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

deserialize_tuple_impl! {
    (A) of 1;
    (A, B) of 2;
    (A, B, C) of 3;
    (A, B, C, Z) of 4;
}

impl crate::ser::Serialize for Content {
    fn serialize<S: crate::ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use crate::ser::{SerializeSeq as _, SerializeStruct as _};
        match self {
            Content::Null => serializer.serialize_none(),
            Content::Bool(b) => serializer.serialize_bool(*b),
            Content::I64(v) => serializer.serialize_i64(*v),
            Content::U64(v) => serializer.serialize_u64(*v),
            Content::F64(v) => serializer.serialize_f64(*v),
            Content::Str(s) => serializer.serialize_str(s),
            Content::Seq(items) => {
                let mut seq = serializer.serialize_seq(Some(items.len()))?;
                for item in items {
                    seq.serialize_element(item)?;
                }
                seq.end()
            }
            Content::Map(entries) => {
                // Entry keys are runtime strings; the struct serializer wants
                // `&'static str`, so maps round-trip through per-entry
                // single-field emission instead.
                let mut st = serializer.serialize_struct("Content", entries.len())?;
                for (key, value) in entries {
                    st.serialize_dyn_field(key, value)?;
                }
                st.end()
            }
        }
    }
}

impl<'de> Deserialize<'de> for Content {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_content()
    }
}
