//! Serialization half of the mini-serde data model.

use std::fmt::Display;

/// Errors produced while serializing.
pub trait Error: Sized + Display {
    /// Builds an error from any displayable message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A serializable value.
pub trait Serialize {
    /// Feeds `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data-format backend (by-value, like real serde).
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type of the format.
    type Error: Error;
    /// Compound serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for structs with named fields.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a floating-point number.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes the unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes the payload of `Option::Some`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes a dataless enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins a struct with named fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    /// Serializes an `i8` (delegates to `serialize_i64`).
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(v as i64)
    }
    /// Serializes an `i16` (delegates to `serialize_i64`).
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(v as i64)
    }
    /// Serializes an `i32` (delegates to `serialize_i64`).
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(v as i64)
    }
    /// Serializes a `u8` (delegates to `serialize_u64`).
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(v as u64)
    }
    /// Serializes a `u16` (delegates to `serialize_u64`).
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(v as u64)
    }
    /// Serializes a `u32` (delegates to `serialize_u64`).
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(v as u64)
    }
    /// Serializes an `f32` (delegates to `serialize_f64`).
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error> {
        self.serialize_f64(v as f64)
    }
}

/// Compound serializer for sequences.
pub trait SerializeSeq {
    /// Output of a successful serialization.
    type Ok;
    /// Error type of the format.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for tuples.
pub trait SerializeTuple {
    /// Output of a successful serialization.
    type Ok;
    /// Error type of the format.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for structs.
pub trait SerializeStruct {
    /// Output of a successful serialization.
    type Ok;
    /// Error type of the format.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Serializes one field whose key is only known at runtime (used by the
    /// [`crate::de::Content`] value type, which is a map of owned strings).
    fn serialize_dyn_field<T: Serialize + ?Sized>(
        &mut self,
        key: &str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for struct enum variants.
pub trait SerializeStructVariant {
    /// Output of a successful serialization.
    type Ok;
    /// Error type of the format.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and common std types.
// ---------------------------------------------------------------------------

macro_rules! serialize_via {
    ($($t:ty => $method:ident),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        }
    )*};
}

serialize_via! {
    bool => serialize_bool,
    i8 => serialize_i8, i16 => serialize_i16, i32 => serialize_i32, i64 => serialize_i64,
    u8 => serialize_u8, u16 => serialize_u16, u32 => serialize_u32, u64 => serialize_u64,
    f32 => serialize_f32, f64 => serialize_f64,
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

macro_rules! serialize_tuple_impl {
    ($(($($name:ident . $idx:tt),+) of $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tup = serializer.serialize_tuple($len)?;
                $(tup.serialize_element(&self.$idx)?;)+
                tup.end()
            }
        }
    )*};
}

serialize_tuple_impl! {
    (A.0) of 1;
    (A.0, B.1) of 2;
    (A.0, B.1, C.2) of 3;
    (A.0, B.1, C.2, D.3) of 4;
}
