//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `serde` to this minimal implementation. It keeps the *shape* of the real
//! API — `Serialize`/`Serializer` with associated `Ok`/`Error` types,
//! compound serializers, `Deserialize<'de>`/`Deserializer<'de>` — so code
//! written against real serde (including `#[serde(with = "...")]` helper
//! modules) compiles unchanged. The data model is radically simplified on
//! the deserialization side: a [`Deserializer`] yields a self-describing
//! [`de::Content`] tree and typed values are decoded from it, which is all a
//! JSON-only workspace needs.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

// The derive macros share names with the traits, exactly like real serde.
pub use serde_derive::{Deserialize, Serialize};
