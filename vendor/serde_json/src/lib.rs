//! Offline stand-in for `serde_json`.
//!
//! A complete JSON writer/parser over the mini-serde data model in
//! `vendor/serde`: compact and pretty serialization with full string
//! escaping, and a recursive-descent parser producing [`Value`]
//! (`serde::de::Content`) trees with `\uXXXX` decoding and i64/u64/f64
//! number disambiguation. Non-finite floats serialize as `null`, matching
//! real serde_json's default behaviour.

use std::io::{self, Read, Write};

use serde::de::{Content, DeserializeOwned};
use serde::ser::{
    Serialize, SerializeSeq, SerializeStruct, SerializeStructVariant, SerializeTuple, Serializer,
};

/// JSON values are the deserialization content tree itself.
pub type Value = Content;

/// Errors from JSON serialization or parsing.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl From<io::Error> for Error {
    fn from(err: io::Error) -> Self {
        Error::new(err.to_string())
    }
}

/// Convenience alias matching real serde_json.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let bytes = to_vec(value)?;
    String::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))
}

/// Serializes `value` as a pretty-printed JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut bytes = Vec::new();
    to_writer_pretty(&mut bytes, value)?;
    String::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))
}

/// Serializes `value` as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let mut bytes = Vec::new();
    to_writer(&mut bytes, value)?;
    Ok(bytes)
}

/// Writes `value` as compact JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    value.serialize(JsonSerializer {
        out: &mut writer,
        pretty: false,
        indent: 0,
    })
}

/// Writes `value` as pretty-printed JSON into `writer`.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    value.serialize(JsonSerializer {
        out: &mut writer,
        pretty: true,
        indent: 0,
    })
}

fn write_escaped(out: &mut dyn Write, text: &str) -> Result<()> {
    out.write_all(b"\"")?;
    for ch in text.chars() {
        match ch {
            '"' => out.write_all(b"\\\"")?,
            '\\' => out.write_all(b"\\\\")?,
            '\n' => out.write_all(b"\\n")?,
            '\r' => out.write_all(b"\\r")?,
            '\t' => out.write_all(b"\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_all(b"\"")?;
    Ok(())
}

fn write_f64(out: &mut dyn Write, v: f64) -> Result<()> {
    if v.is_finite() {
        write!(out, "{v}")?;
    } else {
        out.write_all(b"null")?;
    }
    Ok(())
}

struct JsonSerializer<'a> {
    out: &'a mut dyn Write,
    pretty: bool,
    indent: usize,
}

/// Shared compound state for sequences, tuples, structs, and variants.
pub struct Compound<'a> {
    out: &'a mut dyn Write,
    pretty: bool,
    /// Indentation level *inside* the brackets.
    indent: usize,
    first: bool,
    close: &'static [u8],
}

impl<'a> Compound<'a> {
    fn separator(&mut self) -> Result<()> {
        if self.first {
            self.first = false;
        } else {
            self.out.write_all(b",")?;
        }
        if self.pretty {
            self.out.write_all(b"\n")?;
            for _ in 0..self.indent {
                self.out.write_all(b"  ")?;
            }
        }
        Ok(())
    }

    fn element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        self.separator()?;
        value.serialize(JsonSerializer {
            out: self.out,
            pretty: self.pretty,
            indent: self.indent,
        })
    }

    fn field<T: Serialize + ?Sized>(&mut self, key: &str, value: &T) -> Result<()> {
        self.separator()?;
        write_escaped(self.out, key)?;
        self.out.write_all(if self.pretty { b": " } else { b":" })?;
        value.serialize(JsonSerializer {
            out: self.out,
            pretty: self.pretty,
            indent: self.indent,
        })
    }

    fn finish(self) -> Result<()> {
        if self.pretty && !self.first {
            self.out.write_all(b"\n")?;
            for _ in 1..self.indent {
                self.out.write_all(b"  ")?;
            }
        }
        self.out.write_all(self.close)?;
        Ok(())
    }
}

impl<'a> Serializer for JsonSerializer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.out.write_all(if v { b"true" } else { b"false" })?;
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<()> {
        write!(self.out, "{v}")?;
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<()> {
        write!(self.out, "{v}")?;
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<()> {
        write_f64(self.out, v)
    }

    fn serialize_str(self, v: &str) -> Result<()> {
        write_escaped(self.out, v)
    }

    fn serialize_unit(self) -> Result<()> {
        self.out.write_all(b"null")?;
        Ok(())
    }

    fn serialize_none(self) -> Result<()> {
        self.out.write_all(b"null")?;
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<()> {
        write_escaped(self.out, variant)
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>> {
        self.out.write_all(b"[")?;
        Ok(Compound {
            out: self.out,
            pretty: self.pretty,
            indent: self.indent + 1,
            first: true,
            close: b"]",
        })
    }

    fn serialize_tuple(self, len: usize) -> Result<Compound<'a>> {
        self.serialize_seq(Some(len))
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>> {
        self.out.write_all(b"{")?;
        Ok(Compound {
            out: self.out,
            pretty: self.pretty,
            indent: self.indent + 1,
            first: true,
            close: b"}",
        })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>> {
        // Externally tagged: {"Variant":{...}}
        self.out.write_all(b"{")?;
        write_escaped(self.out, variant)?;
        self.out
            .write_all(if self.pretty { b": {" } else { b":{" })?;
        Ok(Compound {
            out: self.out,
            pretty: self.pretty,
            indent: self.indent + 1,
            first: true,
            close: b"}}",
        })
    }
}

impl SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        self.element(value)
    }

    fn end(self) -> Result<()> {
        self.finish()
    }
}

impl SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        self.element(value)
    }

    fn end(self) -> Result<()> {
        self.finish()
    }
}

impl SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<()> {
        self.field(key, value)
    }

    fn serialize_dyn_field<T: Serialize + ?Sized>(&mut self, key: &str, value: &T) -> Result<()> {
        self.field(key, value)
    }

    fn end(self) -> Result<()> {
        self.finish()
    }
}

impl SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<()> {
        self.field(key, value)
    }

    fn end(self) -> Result<()> {
        self.finish()
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parses a typed value from a JSON string.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T> {
    let content = parse_content(text)?;
    serde::de::from_content(content)
}

/// Parses a typed value from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(text)
}

/// Parses a typed value from a JSON reader.
pub fn from_reader<R: Read, T: DeserializeOwned>(mut reader: R) -> Result<T> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

fn parse_content(text: &str) -> Result<Content> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy a run of plain bytes in one go (valid UTF-8 passes through).
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::new("truncated escape sequence"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let mut code = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: require a \uXXXX low surrogate.
                                if self.eat_keyword("\\u") {
                                    let low = self.parse_hex4()?;
                                    if (0xDC00..0xE000).contains(&low) {
                                        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    } else {
                                        return Err(Error::new("invalid low surrogate"));
                                    }
                                } else {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string("hi \"there\"\n").unwrap(), r#""hi \"there\"\n""#);
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn round_trips_collections() {
        let v = vec![1u32, 2, 3];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,2,3]");
        let back: Vec<u32> = from_str(&text).unwrap();
        assert_eq!(back, v);

        let pair: (f64, bool) = (0.5, true);
        let back: (f64, bool) = from_str(&to_string(&pair).unwrap()).unwrap();
        assert_eq!(back, pair);
    }

    #[test]
    fn parses_nested_value() {
        let value: Value = from_str(r#"{"a": [1, 2.5, "xA"], "b": {"c": null}}"#).unwrap();
        assert_eq!(value.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            value.get("a").unwrap().as_array().unwrap()[2].as_str(),
            Some("xA")
        );
        assert!(value.get("b").unwrap().get("c").unwrap().is_null());
    }

    #[test]
    fn pretty_output_reparses() {
        let value: Value = from_str(r#"{"k":[1,{"m":true}],"s":"t"}"#).unwrap();
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn number_disambiguation() {
        let v: Value = from_str("9223372036854775807").unwrap();
        assert_eq!(v.as_i64(), Some(i64::MAX));
        let v: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let v: Value = from_str("1e3").unwrap();
        assert_eq!(v.as_f64(), Some(1000.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
