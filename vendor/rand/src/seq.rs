//! Sequence utilities: the `SliceRandom` extension trait.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` when empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }
    impl SeedableRng for Lcg {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Lcg(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut Lcg::seed_from_u64(1));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let mut a: Vec<usize> = (0..20).collect();
        let mut b: Vec<usize> = (0..20).collect();
        a.shuffle(&mut Lcg::seed_from_u64(9));
        b.shuffle(&mut Lcg::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn choose_handles_empty_and_full() {
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut Lcg(1)).is_none());
        let one = [42u8];
        assert_eq!(one.choose(&mut Lcg(1)), Some(&42));
    }
}
