use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int {
    ($($t:ty as $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(bounded(rng, span as u64) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                if span == 0 {
                    // Full domain of the type.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span as u64) as $t)
            }
        }
    )*};
}

uniform_int!(
    u8 as u8,
    u16 as u16,
    u32 as u32,
    u64 as u64,
    usize as usize,
    i8 as u8,
    i16 as u16,
    i32 as u32,
    i64 as u64,
    isize as usize
);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as crate::Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as crate::Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// A uniform draw from `[0, span)` (`span > 0`) via Lemire's widening
/// multiply with rejection — unbiased and branch-light.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let low = m as u64;
        if low >= span {
            return (m >> 64) as u64;
        }
        // Rejection zone: accept unless `low` falls under the bias threshold.
        let threshold = span.wrapping_neg() % span;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}
