//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `rand` to this minimal implementation covering exactly the API surface
//! lithohd uses: [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), and [`seq::SliceRandom`]
//! (`shuffle`, `choose`). Algorithms follow the same general constructions as
//! upstream (Lemire-style bounded integers, 53-bit float conversion,
//! Fisher–Yates shuffling) but make no bit-compatibility promise with the
//! real crate — only determinism per seed, which is all the workspace needs.

/// A source of randomness: the core 32/64-bit generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it to a full seed with
    /// SplitMix64 (the same construction rand_core documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

mod uniform;
pub use uniform::SampleRange;

/// Extension methods every `RngCore` gains.
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (standard distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform draw from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // Compare against 64 random bits scaled to [0, 1).
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types drawable from the standard uniform distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, i8 => next_u32,
              i16 => next_u32, i32 => next_u32, u64 => next_u64, i64 => next_u64,
              usize => next_u64, isize => next_u64);

pub mod seq;

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Lcg(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Lcg(5);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
