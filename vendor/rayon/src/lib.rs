//! Offline stand-in for `rayon`.
//!
//! The workspace uses `into_par_iter()`/`par_iter()` as drop-in parallel
//! maps. This stub keeps the trait names and call sites intact but runs
//! sequentially: each `par_*` method returns the corresponding standard
//! iterator. Results are identical (the real code relies on order-preserving
//! `collect`), only wall-clock parallelism is lost — an acceptable trade in
//! an environment without the real dependency.

pub mod prelude {
    //! Everything callers import with `use rayon::prelude::*`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// By-value conversion into a "parallel" (here: sequential) iterator.
pub trait IntoParallelIterator {
    /// Item type of the iteration.
    type Item;
    /// Concrete iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Converts `self` into the iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;

    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = std::ops::Range<usize>;

    fn into_par_iter(self) -> Self::Iter {
        self
    }
}

/// By-reference conversion into a "parallel" (here: sequential) iterator.
pub trait IntoParallelRefIterator<'data> {
    /// Item type of the iteration (a reference).
    type Item;
    /// Concrete iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Iterates `self` by reference.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = std::slice::Iter<'data, T>;

    fn par_iter(&'data self) -> Self::Iter {
        self.iter()
    }
}

impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = std::slice::Iter<'data, T>;

    fn par_iter(&'data self) -> Self::Iter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iters_match_sequential() {
        let doubled: Vec<i32> = vec![1, 2, 3].into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let v = vec![1, 2, 3];
        let sum: i32 = v.par_iter().map(|x| x + 1).sum();
        assert_eq!(sum, 9);
        let idx: Vec<usize> = (0..4usize).into_par_iter().collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }
}
