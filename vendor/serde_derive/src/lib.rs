//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses — structs with named fields, enums
//! with unit and struct variants, and the `#[serde(with = "module")]` field
//! attribute — by walking the raw `proc_macro` token stream directly (the
//! build environment has no `syn`/`quote`). Unsupported shapes (generics,
//! tuple structs, tuple variants, other serde attributes) produce a
//! `compile_error!` naming the limitation rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `struct`/`enum` field: name, type text, optional `with` module.
struct Field {
    name: String,
    ty: String,
    with: Option<String>,
}

/// A parsed enum variant; `fields: None` means a unit variant.
struct Variant {
    name: String,
    fields: Option<Vec<Field>>,
}

enum Kind {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    kind: Kind,
}

struct Parser {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Parser {
    fn new(stream: TokenStream) -> Self {
        Parser {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let token = self.tokens.get(self.pos).cloned();
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        match self.peek() {
            Some(TokenTree::Ident(id)) if id.to_string() == word => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        match self.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == ch => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.bump() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!(
                "expected identifier, found {:?}",
                other.map(|t| t.to_string())
            )),
        }
    }

    /// Skips leading attributes, returning the `with` module of a
    /// `#[serde(with = "module")]` attribute when present. Any other
    /// `#[serde(...)]` content is rejected so unsupported behaviour fails
    /// loudly at compile time.
    fn skip_attrs(&mut self) -> Result<Option<String>, String> {
        let mut with = None;
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.bump();
            let group = match self.bump() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                _ => return Err("expected `[...]` after `#`".into()),
            };
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            let is_serde =
                matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
            if !is_serde {
                continue;
            }
            let args = match inner.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
                _ => return Err("malformed #[serde(...)] attribute".into()),
            };
            let arg_tokens: Vec<TokenTree> = args.stream().into_iter().collect();
            match arg_tokens.first() {
                Some(TokenTree::Ident(key)) if key.to_string() == "with" => {
                    let literal = match (arg_tokens.get(1), arg_tokens.get(2)) {
                        (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                            if eq.as_char() == '=' =>
                        {
                            lit.to_string()
                        }
                        _ => return Err("expected #[serde(with = \"module\")]".into()),
                    };
                    with = Some(literal.trim_matches('"').to_string());
                }
                _ => {
                    return Err(format!(
                        "unsupported serde attribute #[serde({})]; this offline derive only knows `with`",
                        args.stream()
                    ))
                }
            }
        }
        Ok(with)
    }
}

fn parse_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut parser = Parser::new(stream);
    let mut fields = Vec::new();
    loop {
        let with = parser.skip_attrs()?;
        if parser.peek().is_none() {
            break;
        }
        if parser.eat_ident("pub") {
            // Consume a restriction like `pub(crate)` when present.
            if matches!(parser.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                parser.bump();
            }
        }
        let name = parser.expect_ident()?;
        if !parser.eat_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        // Capture the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        let mut ty_tokens: Vec<String> = Vec::new();
        while let Some(token) = parser.peek() {
            if let TokenTree::Punct(p) = token {
                match p.as_char() {
                    ',' if depth == 0 => break,
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    _ => {}
                }
            }
            ty_tokens.push(token.to_string());
            parser.bump();
        }
        parser.eat_punct(',');
        fields.push(Field {
            name,
            ty: ty_tokens.join(" "),
            with,
        });
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut parser = Parser::new(stream);
    let mut variants = Vec::new();
    loop {
        parser.skip_attrs()?;
        if parser.peek().is_none() {
            break;
        }
        let name = parser.expect_ident()?;
        let fields = match parser.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                parser.bump();
                Some(parse_fields(inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "tuple variant `{name}` is not supported by the offline serde derive"
                ));
            }
            _ => None,
        };
        parser.eat_punct(',');
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_input(stream: TokenStream) -> Result<Input, String> {
    let mut parser = Parser::new(stream);
    parser.skip_attrs()?;
    if parser.eat_ident("pub")
        && matches!(parser.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
    {
        parser.bump();
    }
    let is_enum = if parser.eat_ident("struct") {
        false
    } else if parser.eat_ident("enum") {
        true
    } else {
        return Err("expected `struct` or `enum`".into());
    };
    let name = parser.expect_ident()?;
    if matches!(parser.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "generic type `{name}` is not supported by the offline serde derive"
        ));
    }
    let body = match parser.bump() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            return Err(format!(
                "tuple struct `{name}` is not supported by the offline serde derive"
            ));
        }
        _ => return Err(format!("expected `{{ ... }}` body for `{name}`")),
    };
    let kind = if is_enum {
        Kind::Enum(parse_variants(body)?)
    } else {
        Kind::Struct(parse_fields(body)?)
    };
    Ok(Input { name, kind })
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({:?});", message)
        .parse()
        .expect("compile_error tokens")
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(fields) => {
            let mut out = format!(
                "let mut __s = serde::ser::Serializer::serialize_struct(__serializer, \"{name}\", {})?;\n",
                fields.len()
            );
            for field in fields {
                let fname = &field.name;
                if let Some(with) = &field.with {
                    // Wrapper whose Serialize defers to the user's module,
                    // preserving real serde's `with` semantics.
                    out.push_str(&format!(
                        "{{\n\
                         struct __SerdeWith<'__a>(&'__a {ty});\n\
                         impl<'__a> serde::ser::Serialize for __SerdeWith<'__a> {{\n\
                         fn serialize<__S2: serde::ser::Serializer>(&self, __serializer: __S2) -> Result<__S2::Ok, __S2::Error> {{\n\
                         {with}::serialize(self.0, __serializer)\n\
                         }}\n\
                         }}\n\
                         serde::ser::SerializeStruct::serialize_field(&mut __s, \"{fname}\", &__SerdeWith(&self.{fname}))?;\n\
                         }}\n",
                        ty = field.ty,
                    ));
                } else {
                    out.push_str(&format!(
                        "serde::ser::SerializeStruct::serialize_field(&mut __s, \"{fname}\", &self.{fname})?;\n"
                    ));
                }
            }
            out.push_str("serde::ser::SerializeStruct::end(__s)\n");
            out
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (index, variant) in variants.iter().enumerate() {
                let vname = &variant.name;
                match &variant.fields {
                    None => arms.push_str(&format!(
                        "{name}::{vname} => serde::ser::Serializer::serialize_unit_variant(__serializer, \"{name}\", {index}u32, \"{vname}\"),\n"
                    )),
                    Some(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = format!(
                            "let mut __sv = serde::ser::Serializer::serialize_struct_variant(__serializer, \"{name}\", {index}u32, \"{vname}\", {})?;\n",
                            fields.len()
                        );
                        for field in fields {
                            let fname = &field.name;
                            inner.push_str(&format!(
                                "serde::ser::SerializeStructVariant::serialize_field(&mut __sv, \"{fname}\", {fname})?;\n"
                            ));
                        }
                        inner.push_str("serde::ser::SerializeStructVariant::end(__sv)\n");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n{inner}}}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::ser::Serialize for {name} {{\n\
         fn serialize<__S: serde::ser::Serializer>(&self, __serializer: __S) -> Result<__S::Ok, __S::Error> {{\n\
         {body}\
         }}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

fn gen_field_decoders(fields: &[Field], map_var: &str) -> String {
    let mut out = String::new();
    for field in fields {
        let fname = &field.name;
        if let Some(with) = &field.with {
            out.push_str(&format!(
                "{fname}: {with}::deserialize(serde::de::ContentDeserializer::<__D::Error>::new(serde::de::take_field(&mut {map_var}, \"{fname}\")))?,\n"
            ));
        } else {
            out.push_str(&format!(
                "{fname}: serde::de::from_content::<_, __D::Error>(serde::de::take_field(&mut {map_var}, \"{fname}\"))?,\n"
            ));
        }
    }
    out
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(fields) => {
            let decoders = gen_field_decoders(fields, "__map");
            format!(
                "match serde::de::Deserializer::deserialize_content(__deserializer)? {{\n\
                 serde::de::Content::Map(mut __map) => {{\n\
                 let _ = &mut __map;\n\
                 Ok({name} {{\n{decoders}}})\n\
                 }}\n\
                 __other => Err(<__D::Error as serde::de::Error>::custom(format_args!(\n\
                 \"invalid type for {name}: expected object, found {{}}\", __other.kind()))),\n\
                 }}\n"
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.fields {
                    None => unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n")),
                    Some(fields) => {
                        let decoders = gen_field_decoders(fields, "__fields");
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => match __inner {{\n\
                             serde::de::Content::Map(mut __fields) => {{\n\
                             let _ = &mut __fields;\n\
                             Ok({name}::{vname} {{\n{decoders}}})\n\
                             }}\n\
                             __bad => Err(<__D::Error as serde::de::Error>::custom(format_args!(\n\
                             \"invalid value for variant `{vname}` of {name}: expected object, found {{}}\", __bad.kind()))),\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "match serde::de::Deserializer::deserialize_content(__deserializer)? {{\n\
                 serde::de::Content::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(<__D::Error as serde::de::Error>::custom(format_args!(\n\
                 \"unknown variant `{{}}` for {name}\", __other))),\n\
                 }},\n\
                 serde::de::Content::Map(mut __map) => {{\n\
                 if __map.len() != 1 {{\n\
                 return Err(<__D::Error as serde::de::Error>::custom(\n\
                 \"expected single-key object for enum {name}\"));\n\
                 }}\n\
                 let (__tag, __inner) = __map.pop().expect(\"length checked\");\n\
                 let _ = &__inner;\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\
                 __other => Err(<__D::Error as serde::de::Error>::custom(format_args!(\n\
                 \"unknown variant `{{}}` for {name}\", __other))),\n\
                 }}\n\
                 }}\n\
                 __other => Err(<__D::Error as serde::de::Error>::custom(format_args!(\n\
                 \"invalid type for enum {name}: expected string or object, found {{}}\", __other.kind()))),\n\
                 }}\n"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::de::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: serde::de::Deserializer<'de>>(__deserializer: __D) -> Result<Self, __D::Error> {{\n\
         {body}\
         }}\n\
         }}\n"
    )
}

/// Derives `serde::Serialize` for structs with named fields and for enums
/// with unit/struct variants.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_serialize(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde derive codegen error: {e}"))),
        Err(message) => compile_error(&message),
    }
}

/// Derives `serde::Deserialize` for structs with named fields and for enums
/// with unit/struct variants.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_deserialize(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde derive codegen error: {e}"))),
        Err(message) => compile_error(&message),
    }
}
