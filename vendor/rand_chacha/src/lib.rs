//! Offline stand-in for `rand_chacha`: a real ChaCha8 keystream generator
//! behind the [`ChaCha8Rng`] type the workspace seeds everywhere.
//!
//! The implementation is the reference ChaCha block function (IETF layout,
//! 8 rounds, 64-bit counter) keyed by the 32-byte seed. It is a correct
//! ChaCha8 keystream; like the rest of `vendor/`, it promises determinism
//! per seed rather than bit-compatibility with the upstream crate's word
//! ordering.

pub use rand::{RngCore, SeedableRng};

/// Re-export module mirroring `rand_chacha::rand_core`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const CHACHA_ROUNDS: usize = 8;

/// A deterministic ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill".
    index: usize,
}

/// Portable capture of a [`ChaCha8Rng`] keystream position.
///
/// The buffered block is not stored: `counter`/`index` identify the stream
/// position exactly, and restoring regenerates the block on demand. Two
/// generators with equal stream state produce identical future output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaChaStreamState {
    /// Key schedule words derived from the seed.
    pub key: [u32; 8],
    /// Block counter of the *next* block to generate.
    pub counter: u64,
    /// Next unread word in the current block; 16 means "at a block boundary".
    pub index: usize,
}

impl ChaCha8Rng {
    /// Captures the exact keystream position for later [`Self::from_stream_state`].
    pub fn stream_state(&self) -> ChaChaStreamState {
        ChaChaStreamState {
            key: self.key,
            counter: self.counter,
            index: self.index,
        }
    }

    /// Reconstructs a generator at a previously captured keystream position.
    ///
    /// Returns `None` when `state.index > 16` (not a valid word offset).
    pub fn from_stream_state(state: ChaChaStreamState) -> Option<Self> {
        if state.index > 16 {
            return None;
        }
        let mut rng = ChaCha8Rng {
            key: state.key,
            counter: state.counter,
            buffer: [0; 16],
            index: 16,
        };
        if state.index < 16 {
            // Mid-block position: regenerate the block that was being read.
            // `refill` consumes `counter` and advances it, so rewind first.
            rng.counter = state.counter.wrapping_sub(1);
            rng.refill();
            rng.index = state.index;
        }
        Some(rng)
    }

    fn refill(&mut self) {
        const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let mut working = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.buffer.iter_mut().zip(working.iter().zip(&state)) {
            *out = w.wrapping_add(s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

#[inline(always)]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn stream_is_balanced() {
        // Crude sanity check: bit frequency over 64 KiB of keystream.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u64;
        let samples = 8192;
        for _ in 0..samples {
            ones += rng.next_u64().count_ones() as u64;
        }
        let expected = samples * 32;
        let deviation = (ones as i64 - expected as i64).abs();
        assert!(deviation < 6000, "bit bias too large: {deviation}");
    }

    #[test]
    fn stream_state_round_trips_at_any_offset() {
        // Capture/restore at every word offset across a few blocks.
        for burn in 0..48usize {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            for _ in 0..burn {
                rng.next_u32();
            }
            let mut restored =
                ChaCha8Rng::from_stream_state(rng.stream_state()).expect("valid state");
            let expect: Vec<u32> = (0..40).map(|_| rng.next_u32()).collect();
            let got: Vec<u32> = (0..40).map(|_| restored.next_u32()).collect();
            assert_eq!(expect, got, "divergence after burning {burn} words");
        }
    }

    #[test]
    fn stream_state_rejects_bad_index() {
        let rng = ChaCha8Rng::seed_from_u64(1);
        let mut state = rng.stream_state();
        state.index = 17;
        assert!(ChaCha8Rng::from_stream_state(state).is_none());
    }

    #[test]
    fn blocks_differ_with_counter() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
