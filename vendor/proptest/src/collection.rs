//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Admissible lengths for a generated collection, stored half-open.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            lo: len,
            hi: len + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        SizeRange {
            lo: range.start,
            hi: range.end.max(range.start),
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *range.start(),
            hi: range.end().saturating_add(1).max(*range.start()),
        }
    }
}

/// Strategy producing `Vec`s of a given element strategy; build with [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// The `proptest::collection::vec(element, size)` constructor.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn fixed_length() {
        let mut rng = TestRng::for_test("fixed_length");
        let v = vec(any::<bool>(), 49).sample(&mut rng);
        assert_eq!(v.len(), 49);
    }

    #[test]
    fn ranged_length() {
        let mut rng = TestRng::for_test("ranged_length");
        for _ in 0..100 {
            let v = vec(0.0f32..1.0, 4..50).sample(&mut rng);
            assert!((4..50).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }
}
