//! Deterministic RNG and failure type backing the `proptest!` macro.

use rand_chacha::ChaCha8Rng;

pub use rand::RngCore;
use rand::SeedableRng;

/// Per-test random source: ChaCha8 seeded from the test's name, so every run
/// of a given test sees the same case sequence.
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// Builds the RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name keeps seeds stable across runs/platforms.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: ChaCha8Rng::seed_from_u64(hash),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A failed property-test case (produced by `prop_assert!`-family macros).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_name_dependent() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        let va = a.next_u64();
        assert_eq!(va, b.next_u64());
        assert_ne!(va, c.next_u64());
    }
}
