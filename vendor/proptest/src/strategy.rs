//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// Generates values of `Self::Value` from the test RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_gen {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

arbitrary_via_gen!(bool, u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.gen::<u64>() as usize
    }
}

impl Arbitrary for isize {
    fn arbitrary(rng: &mut TestRng) -> isize {
        rng.gen::<i64>() as isize
    }
}

/// Strategy over a type's whole domain; build with [`any`].
pub struct Any<T> {
    marker: PhantomData<T>,
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges_respect_bounds");
        for _ in 0..200 {
            let v = (3i64..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f64..=0.75).sample(&mut rng);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::for_test("tuples_compose");
        let (x, b) = (0.0f64..=1.0, any::<bool>()).sample(&mut rng);
        assert!((0.0..=1.0).contains(&x));
        let _: bool = b;
    }
}
