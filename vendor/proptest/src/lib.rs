//! Offline stand-in for `proptest`.
//!
//! Keeps the surface the workspace tests use — `proptest! { #[test] fn f(x in
//! strategy) { ... } }`, `prop_assert!`/`prop_assert_eq!`, range strategies,
//! `any::<T>()`, `proptest::collection::vec`, and tuple strategies — backed by
//! a plain sampling loop instead of real proptest's shrinking machinery. Each
//! test draws [`num_cases`] inputs (default [`NUM_CASES`], overridable via
//! the `PROPTEST_CASES` environment variable) from a ChaCha8 stream seeded
//! from the test name, so failures are deterministic and reproducible, just
//! not minimised.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Everything tests import with `use proptest::prelude::*`.
    pub use crate::strategy::{any, Any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Default number of random cases each `proptest!` test runs.
pub const NUM_CASES: usize = 64;

/// Number of cases per test: `PROPTEST_CASES` when set to a positive
/// integer (matching real proptest's knob — slow interpreters like Miri set
/// it low in CI), else [`NUM_CASES`].
pub fn num_cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(NUM_CASES)
}

/// Declares property tests: each `fn` runs its body [`num_cases`] times with
/// inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat in $strategy:expr ),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let __cases = $crate::num_cases();
                for __case in 0..__cases {
                    $( let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut __rng); )+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__err) = __outcome {
                        panic!(
                            "proptest {} failed on case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __cases,
                            __err,
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current property-test case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::concat!("assertion failed: ", ::std::stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property-test case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{:?}` == `{:?}`",
            __left,
            __right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = &$left;
        let __right = &$right;
        $crate::prop_assert!(*__left == *__right, $($fmt)+);
    }};
}
