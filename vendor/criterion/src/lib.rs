//! Offline stand-in for `criterion`.
//!
//! Provides the structural API the workspace benches use (`criterion_group!`,
//! `criterion_main!`, `Criterion`, benchmark groups, `bench_with_input`) with
//! a simple timing loop: a short warm-up, then a fixed number of timed
//! batches whose mean and min per-iteration wall time are printed. No
//! statistics, plots, or baselines — enough to run `cargo bench` and compare
//! orders of magnitude offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (benches here use
/// `std::hint::black_box` directly, but the name is part of the API).
pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const SAMPLE_BATCHES: u64 = 10;

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { measurement: None };
        f(&mut bencher);
        report(name, &bencher);
        self
    }
}

/// A named collection of benchmarks; ids printed as `group/function/param`.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a single named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { measurement: None };
        f(&mut bencher);
        report(&format!("{}/{name}", self.name), &bencher);
        self
    }

    /// Runs one benchmark of the group against an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { measurement: None };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.label), &bencher);
        self
    }

    /// Finishes the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group by function name and parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id like `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

/// Timing measurements for one benchmark.
#[derive(Clone, Copy)]
struct Measurement {
    mean: Duration,
    min: Duration,
    iters: u64,
}

/// Runs and times the benchmark routine.
pub struct Bencher {
    measurement: Option<Measurement>,
}

impl Bencher {
    /// Times the routine: warm-up, then `SAMPLE_BATCHES` timed batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        // Pick a batch size so each batch is at least ~1ms or 1 iteration.
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let per_batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1) as u64;

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..SAMPLE_BATCHES {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            let batch = start.elapsed();
            let per_iter = batch / per_batch.max(1) as u32;
            total += batch;
            if per_iter < min {
                min = per_iter;
            }
        }
        let iters = per_batch * SAMPLE_BATCHES;
        self.measurement = Some(Measurement {
            mean: total / iters.max(1) as u32,
            min,
            iters,
        });
    }
}

fn report(name: &str, bencher: &Bencher) {
    match bencher.measurement {
        Some(m) => println!(
            "bench {name:<40} mean {:>12?} min {:>12?} ({} iters)",
            m.mean, m.min, m.iters
        ),
        None => println!("bench {name:<40} (no measurement)"),
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>());
        });
        group.bench_function("named", |b| b.iter(|| 2u32 * 2));
        group.finish();
        criterion.bench_function("plain", |b| b.iter(|| 1u32 + 1));
    }
}
