//! Structured telemetry for the PSHD pipeline: leveled events, RAII span
//! timers, process-wide metrics, and pluggable sinks.
//!
//! The crate deliberately has no external dependencies beyond the
//! workspace's serde layer. Everything hangs off one lazily-initialised
//! process-global:
//!
//! - **Events** ([`emit`], [`info`], [`warn`], …) carry a [`Level`], a dotted
//!   target such as `core.framework`, a message, and typed key–value fields.
//!   They fan out to every registered [`Sink`].
//! - **Sinks** ([`ConsoleSink`] honouring the `LITHOHD_LOG` filter,
//!   [`JsonlSink`] writing an append-only run journal, [`MemorySink`] for
//!   tests) are registered with [`add_sink`].
//! - **Metrics** ([`counter`], [`gauge`], [`histogram`]) are atomics shared
//!   process-wide; [`snapshot`] copies them and [`publish_snapshot`]
//!   broadcasts the copy to sinks (the journal's final record).
//! - **Spans** ([`span`]) time a scope on drop, aggregate into a
//!   hierarchical [`ProfileTree`] (rendered by [`profile_report`] for
//!   `--profile`), and emit a `profile` event so journals capture per-span
//!   durations.
//!
//! - **Traces** ([`trace::enable`], normally via `--trace out.json`) give
//!   spans process-unique ids and parent links — propagated across threads
//!   with [`trace::handoff`]/[`trace::adopt`] — and export as Chrome-trace
//!   JSON for Perfetto. Trace data never reaches a sink, so canonical
//!   journals are unaffected.
//!
//! With no sinks registered, events cost one atomic load and spans only
//! update the profile tree — instrumented library code stays cheap for
//! callers that never opt in.

#![forbid(unsafe_code)]

mod event;
mod export;
mod http;
mod level;
mod metrics;
pub mod names;
mod sink;
mod span;
pub mod trace;

pub use event::{Event, FieldValue};
pub use export::{prometheus_name, render_prometheus};
pub use http::{
    serve_http, serve_metrics, Handler, HttpOptions, HttpServer, MetricsServer, Request, Response,
};
pub use level::{EnvFilter, Level, ParseLevelError};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramState, HistogramSummary, MetricsRegistry, MetricsSnapshot,
    MetricsState,
};
pub use sink::{ConsoleSink, JournalPosition, JsonlSink, MemorySink, Sink};
pub use span::{ProfileTree, SpanStat, SpanTimer};
pub use trace::{TraceHandoff, TraceRecord};

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Process-global telemetry state.
pub(crate) struct Telemetry {
    sinks: RwLock<Vec<Arc<dyn Sink>>>,
    /// Cheap empty-check so uninstrumented runs skip field formatting.
    sink_count: AtomicUsize,
    metrics: MetricsRegistry,
    pub(crate) profile: ProfileTree,
    run_ids: AtomicU64,
}

static GLOBAL: OnceLock<Telemetry> = OnceLock::new();

/// Recovers the guard from a poisoned lock instead of propagating the
/// panic. Telemetry state is a monotone set of registries and buffers — a
/// thread that panicked mid-update (e.g. a chaos-injected shard worker)
/// leaves them structurally intact — and observability must never take the
/// process down with the thread it was observing.
pub(crate) fn recover<G>(result: Result<G, std::sync::PoisonError<G>>) -> G {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub(crate) fn global() -> &'static Telemetry {
    GLOBAL.get_or_init(|| Telemetry {
        sinks: RwLock::new(Vec::new()),
        sink_count: AtomicUsize::new(0),
        metrics: MetricsRegistry::default(),
        profile: ProfileTree::default(),
        run_ids: AtomicU64::new(0),
    })
}

/// Registers a sink; every subsequent event and snapshot reaches it.
pub fn add_sink(sink: Arc<dyn Sink>) {
    let state = global();
    let mut sinks = recover(state.sinks.write());
    sinks.push(sink);
    state.sink_count.store(sinks.len(), Ordering::Release);
}

/// Removes one previously registered sink (matched by `Arc` identity),
/// flushing it first. Lets a long-running process attach a journal for the
/// duration of one unit of work — a serving session step, say — and detach
/// it afterwards without disturbing other sinks.
pub fn remove_sink(sink: &Arc<dyn Sink>) {
    let state = global();
    let mut sinks = recover(state.sinks.write());
    sinks.retain(|registered| {
        if Arc::ptr_eq(registered, sink) {
            registered.flush();
            false
        } else {
            true
        }
    });
    state.sink_count.store(sinks.len(), Ordering::Release);
}

/// Removes every registered sink (flushing first). Mainly for tests and for
/// binaries that reconfigure logging after argument parsing.
pub fn clear_sinks() {
    let state = global();
    let mut sinks = recover(state.sinks.write());
    for sink in sinks.iter() {
        sink.flush();
    }
    sinks.clear();
    state.sink_count.store(0, Ordering::Release);
}

/// Whether any sink is registered (events are dropped early otherwise).
pub fn has_sinks() -> bool {
    global().sink_count.load(Ordering::Acquire) > 0
}

thread_local! {
    /// Per-thread mute flag; see [`silence_thread`].
    static SILENCED: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is silenced (see [`silence_thread`]).
pub fn thread_is_silenced() -> bool {
    SILENCED.with(Cell::get)
}

/// RAII guard returned by [`silence_thread`]; dropping it restores the
/// thread's previous silence state.
#[derive(Debug)]
pub struct SilenceGuard {
    previous: bool,
}

impl Drop for SilenceGuard {
    fn drop(&mut self) {
        SILENCED.with(|cell| cell.set(self.previous));
    }
}

/// Silences telemetry on the current thread until the returned guard drops:
/// events are discarded before reaching any sink, and [`counter`],
/// [`gauge`], and [`histogram`] hand out detached (unregistered) slots whose
/// updates never reach snapshots. Shard worker threads run under this guard
/// so the coordinator can replay their merged effects exactly once on the
/// main thread, keeping journals and billing worker-count invariant.
pub fn silence_thread() -> SilenceGuard {
    let previous = SILENCED.with(|cell| cell.replace(true));
    SilenceGuard { previous }
}

/// Sends a structured event to every sink.
pub fn emit(
    level: Level,
    target: &'static str,
    message: &str,
    fields: &[(&'static str, FieldValue)],
) {
    if !has_sinks() || thread_is_silenced() {
        return;
    }
    let event = Event {
        level,
        target,
        message: message.to_string(),
        fields: fields.to_vec(),
    };
    let sinks = recover(global().sinks.read());
    for sink in sinks.iter() {
        sink.on_event(&event);
    }
}

/// Emits at [`Level::Trace`].
pub fn trace(target: &'static str, message: &str, fields: &[(&'static str, FieldValue)]) {
    emit(Level::Trace, target, message, fields);
}

/// Emits at [`Level::Debug`].
pub fn debug(target: &'static str, message: &str, fields: &[(&'static str, FieldValue)]) {
    emit(Level::Debug, target, message, fields);
}

/// Emits at [`Level::Info`].
pub fn info(target: &'static str, message: &str, fields: &[(&'static str, FieldValue)]) {
    emit(Level::Info, target, message, fields);
}

/// Emits at [`Level::Warn`].
pub fn warn(target: &'static str, message: &str, fields: &[(&'static str, FieldValue)]) {
    emit(Level::Warn, target, message, fields);
}

/// Emits at [`Level::Error`].
pub fn error(target: &'static str, message: &str, fields: &[(&'static str, FieldValue)]) {
    emit(Level::Error, target, message, fields);
}

/// Resolves a process-wide counter by name. On a silenced thread (see
/// [`silence_thread`]) the handle is detached: updates are discarded.
pub fn counter(name: &str) -> Counter {
    if thread_is_silenced() {
        return Counter::detached();
    }
    global().metrics.counter(name)
}

/// Resolves a process-wide gauge by name (detached on a silenced thread).
pub fn gauge(name: &str) -> Gauge {
    if thread_is_silenced() {
        return Gauge::detached();
    }
    global().metrics.gauge(name)
}

/// Resolves a process-wide histogram by name (detached on a silenced
/// thread).
pub fn histogram(name: &str) -> Arc<Histogram> {
    if thread_is_silenced() {
        return Histogram::detached();
    }
    global().metrics.histogram(name)
}

/// Copies the current value of every metric.
pub fn snapshot() -> MetricsSnapshot {
    global().metrics.snapshot()
}

/// Snapshots all metrics, broadcasts the snapshot to every sink (journals
/// append it as their final record), flushes, and returns it.
pub fn publish_snapshot() -> MetricsSnapshot {
    let snap = snapshot();
    let sinks = recover(global().sinks.read());
    for sink in sinks.iter() {
        sink.on_snapshot(&snap);
        sink.flush();
    }
    snap
}

/// Opens a wall-clock span; time is recorded when the returned timer drops.
pub fn span(name: &'static str) -> SpanTimer {
    SpanTimer::open(name)
}

/// Renders the aggregated span-timing tree (the `--profile` output).
pub fn profile_report() -> String {
    global().profile.render()
}

/// Aggregated stats for one span path, if recorded.
pub fn span_stat(path: &str) -> Option<SpanStat> {
    global().profile.stat(path)
}

/// Flushes every sink.
pub fn flush() {
    let sinks = recover(global().sinks.read());
    for sink in sinks.iter() {
        sink.flush();
    }
}

/// Allocates a process-unique run id, letting concurrent runs (e.g. parallel
/// tests) tag and later disentangle their journal events.
pub fn next_run_id() -> u64 {
    global().run_ids.fetch_add(1, Ordering::Relaxed)
}

/// The next run id [`next_run_id`] would hand out, without consuming it.
/// Checkpoints persist this so a resumed process keeps allocating the same
/// ids an uninterrupted process would have.
pub fn run_id_watermark() -> u64 {
    global().run_ids.load(Ordering::Relaxed)
}

/// Overwrites the run-id allocator, pairing with [`run_id_watermark`] when
/// restoring a checkpoint in a fresh process.
pub fn set_run_id_watermark(next: u64) {
    global().run_ids.store(next, Ordering::Relaxed);
}

/// Captures the raw state of every registered metric (full histogram bucket
/// arrays, exact bit patterns) for checkpointing; see
/// [`MetricsRegistry::state`].
pub fn metrics_state() -> MetricsState {
    global().metrics.state()
}

/// Restores a [`metrics_state`] capture into the process-global registry;
/// see [`MetricsRegistry::restore_state`].
pub fn restore_metrics_state(state: &MetricsState) {
    global().metrics.restore_state(state);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_ids_are_unique() {
        let a = next_run_id();
        let b = next_run_id();
        assert_ne!(a, b);
    }

    #[test]
    fn counters_are_process_wide() {
        counter("test.lib.counter").add(2);
        counter("test.lib.counter").incr();
        assert!(counter("test.lib.counter").get() >= 3);
        assert!(snapshot().counter("test.lib.counter").unwrap() >= 3);
    }

    #[test]
    fn silenced_thread_drops_events_and_metric_updates() {
        let sink = Arc::new(MemorySink::default());
        add_sink(sink.clone());
        {
            let _guard = silence_thread();
            assert!(thread_is_silenced());
            info("test.silence", "muted", &[]);
            counter("test.silence.counter").add(10);
            gauge("test.silence.gauge").set(3.0);
            histogram("test.silence.histogram").record(1.0);
        }
        assert!(!thread_is_silenced());
        counter("test.silence.counter").incr();
        assert!(
            !sink.events().iter().any(|e| e.target == "test.silence"),
            "silenced events must not reach sinks"
        );
        let snap = snapshot();
        assert_eq!(snap.counter("test.silence.counter"), Some(1));
        assert_eq!(snap.gauge("test.silence.gauge"), None);
        assert!(!snap
            .histograms
            .iter()
            .any(|h| h.name == "test.silence.histogram"));
    }

    #[test]
    fn silence_guard_restores_nested_state() {
        let outer = silence_thread();
        {
            let inner = silence_thread();
            assert!(thread_is_silenced());
            drop(inner);
        }
        assert!(thread_is_silenced(), "outer guard still active");
        drop(outer);
        assert!(!thread_is_silenced());
    }

    #[test]
    fn silence_is_per_thread() {
        let _guard = silence_thread();
        let other = std::thread::spawn(thread_is_silenced)
            .join()
            .expect("probe thread");
        assert!(!other, "silence must not leak to other threads");
    }

    #[test]
    fn events_reach_registered_sinks() {
        let sink = Arc::new(MemorySink::default());
        add_sink(sink.clone());
        info("test.lib", "hello", &[("answer", FieldValue::U64(42))]);
        let seen = sink
            .events()
            .iter()
            .any(|e| e.target == "test.lib" && e.message == "hello");
        assert!(seen);
        let snap = publish_snapshot();
        assert!(!sink.snapshots().is_empty());
        assert!(snap.counters.iter().all(|(name, _)| !name.is_empty()));
    }
}
