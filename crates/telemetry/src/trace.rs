//! Performance tracing: span ids, parent links, per-thread trace buffers
//! with explicit cross-thread propagation, and a Chrome-trace-event
//! (Perfetto-compatible) JSON exporter.
//!
//! Tracing is opt-in ([`enable`], normally via `--trace out.json`) and
//! strictly separate from the journal: trace data never reaches any
//! [`crate::Sink`], so `--canonical-journal` byte-identity is untouched.
//! When disabled, the only cost a span pays is one relaxed atomic load.
//!
//! # Threading model
//!
//! Only threads holding a *trace buffer* record spans. [`enable`] installs
//! one on the calling thread (track 0, the coordinator). A worker thread —
//! even a telemetry-silenced one, which is the point: shard workers mute
//! their events but must still show up in the trace — receives a buffer by
//! [`adopt`]ing a [`TraceHandoff`] captured on the spawning thread. The
//! handoff carries the spawner's innermost open span id, so the worker's
//! root spans get correct cross-thread parent links. The worker [`harvest`]s
//! its records before finishing and hands them back to the coordinator,
//! which [`absorb`]s every shard's buffer in ascending shard order — the
//! merge is deterministic, and a panicked worker simply contributes nothing.
//!
//! # Determinism contract
//!
//! Span ids are allocated from one process-wide atomic, so their numeric
//! values (like every `ts`/`dur` timestamp) vary across runs. The exported
//! *structure* — event names, per-track event counts, and the parent/child
//! nesting shape — is a pure function of the seeded computation and is
//! asserted identical across same-seed runs by the determinism suite.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use serde_json::Value;

use crate::FieldValue;

/// One closed span captured by the tracer.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Span name (a `names::SPAN_*` constant).
    pub name: &'static str,
    /// Track (Chrome `tid`): 0 is the coordinator, `1 + shard` a worker.
    pub track: u64,
    /// Process-unique span id.
    pub id: u64,
    /// Id of the enclosing span (0 for a root), possibly on another track.
    pub parent: u64,
    /// Microseconds from the trace epoch to the span opening.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Fields attached to the span via [`crate::SpanTimer::with`].
    pub args: Vec<(&'static str, FieldValue)>,
}

/// The cross-thread propagation token: captures the spawning thread's
/// innermost open span so a worker's roots parent onto it. `Copy + Send`,
/// made to be moved into a `thread::spawn` closure.
#[derive(Debug, Clone, Copy)]
pub struct TraceHandoff {
    parent: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
/// 0 is reserved for "no parent"; ids start at 1.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();
/// Records absorbed from worker buffers (the exporting thread's own buffer
/// is drained directly at export time).
static ABSORBED: Mutex<Vec<TraceRecord>> = Mutex::new(Vec::new());

thread_local! {
    static BUFFER: RefCell<Option<ThreadTrace>> = const { RefCell::new(None) };
}

struct ThreadTrace {
    track: u64,
    root_parent: u64,
    /// Ids of the spans currently open on this thread, outermost first.
    stack: Vec<u64>,
    records: Vec<TraceRecord>,
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn epoch_us() -> u64 {
    epoch().elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// Turns tracing on process-wide and installs the coordinator buffer
/// (track 0) on the calling thread. Idempotent; the first call pins the
/// trace epoch all timestamps are relative to.
pub fn enable() {
    let _ = epoch();
    ENABLED.store(true, Ordering::Release);
    BUFFER.with(|buffer| {
        let mut buffer = buffer.borrow_mut();
        if buffer.is_none() {
            *buffer = Some(ThreadTrace {
                track: 0,
                root_parent: 0,
                stack: Vec::new(),
                records: Vec::new(),
            });
        }
    });
}

/// Whether tracing is on ([`enable`] was called and not undone by a test).
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Captures the current thread's innermost open span as the parent for a
/// worker thread's roots. `None` when tracing is off or this thread has no
/// buffer — pass it along anyway; [`adopt`] of `None` is a no-op guard.
pub fn handoff() -> Option<TraceHandoff> {
    if !is_enabled() {
        return None;
    }
    BUFFER.with(|buffer| {
        buffer.borrow().as_ref().map(|b| TraceHandoff {
            parent: b.stack.last().copied().unwrap_or(b.root_parent),
        })
    })
}

/// RAII guard for an adopted trace buffer; dropping it uninstalls the
/// buffer (discarding anything not [`harvest`]ed, e.g. on a panic path).
#[derive(Debug)]
pub struct AdoptGuard {
    installed: bool,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        if self.installed {
            BUFFER.with(|buffer| buffer.borrow_mut().take());
        }
    }
}

/// Installs a trace buffer for `track` on the current thread, parenting its
/// root spans onto the handoff's span. Tracing the thread ends when the
/// returned guard drops. Adopting `None` (tracing off) is a no-op.
pub fn adopt(handoff: Option<TraceHandoff>, track: u64) -> AdoptGuard {
    let Some(handoff) = handoff else {
        return AdoptGuard { installed: false };
    };
    BUFFER.with(|buffer| {
        *buffer.borrow_mut() = Some(ThreadTrace {
            track,
            root_parent: handoff.parent,
            stack: Vec::new(),
            records: Vec::new(),
        });
    });
    AdoptGuard { installed: true }
}

/// Takes every record the current thread buffered so far (the buffer stays
/// installed). Workers call this right before returning so the coordinator
/// can [`absorb`] the records deterministically.
pub fn harvest() -> Vec<TraceRecord> {
    BUFFER.with(|buffer| {
        buffer
            .borrow_mut()
            .as_mut()
            .map(|b| std::mem::take(&mut b.records))
            .unwrap_or_default()
    })
}

/// Merges harvested worker records into the process trace. Callers absorb
/// shards in ascending order, which keeps the export deterministic.
pub fn absorb(records: Vec<TraceRecord>) {
    if records.is_empty() {
        return;
    }
    crate::recover(ABSORBED.lock()).extend(records);
}

/// A span being traced: allocated at open, closed on timer drop.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OpenSpan {
    id: u64,
    parent: u64,
    start_us: u64,
}

/// Called by [`crate::SpanTimer::open`]. Returns `None` (one atomic load)
/// unless tracing is on *and* this thread holds a buffer.
pub(crate) fn on_span_open() -> Option<OpenSpan> {
    if !is_enabled() {
        return None;
    }
    BUFFER.with(|buffer| {
        let mut buffer = buffer.borrow_mut();
        let buffer = buffer.as_mut()?;
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let parent = buffer.stack.last().copied().unwrap_or(buffer.root_parent);
        buffer.stack.push(id);
        Some(OpenSpan {
            id,
            parent,
            start_us: epoch_us(),
        })
    })
}

/// Called by the span timer's drop. Pops exactly this span's frame (ids are
/// unique, so an out-of-order or mid-unwind drop cannot corrupt siblings)
/// and buffers the record. Never panics: a timer dropped on a thread that
/// lost or never had a buffer is simply not recorded.
pub(crate) fn on_span_close(
    open: OpenSpan,
    name: &'static str,
    elapsed: Duration,
    args: &[(&'static str, FieldValue)],
) {
    BUFFER.with(|buffer| {
        let mut buffer = buffer.borrow_mut();
        let Some(buffer) = buffer.as_mut() else {
            return;
        };
        if let Some(frame) = buffer.stack.iter().rposition(|&id| id == open.id) {
            buffer.stack.truncate(frame);
        }
        buffer.records.push(TraceRecord {
            name,
            track: buffer.track,
            id: open.id,
            parent: open.parent,
            start_us: open.start_us,
            dur_us: elapsed.as_micros().min(u128::from(u64::MAX)) as u64,
            args: args.to_vec(),
        });
    });
}

/// Drains every buffered record — the calling thread's own buffer plus
/// everything [`absorb`]ed from workers — sorted by track, then start time.
pub fn drain_records() -> Vec<TraceRecord> {
    let mut records = std::mem::take(&mut *crate::recover(ABSORBED.lock()));
    records.append(&mut harvest());
    records.sort_by_key(|r| (r.track, r.start_us, r.id));
    records
}

/// Human name for a track: `coordinator` for 0, `shard-<i>` for workers.
fn track_name(track: u64) -> String {
    if track == 0 {
        "coordinator".to_string()
    } else {
        format!("shard-{}", track - 1)
    }
}

/// Renders records as Chrome-trace-event JSON (the object form with a
/// `traceEvents` array), loadable by Perfetto and `chrome://tracing`. Spans
/// become `ph:"X"` complete events with `ts`/`dur` in microseconds; every
/// span carries its `span_id` and `parent_span_id` args, and each track
/// gets a `thread_name` metadata event.
pub fn render_chrome_trace(records: &[TraceRecord]) -> String {
    let mut events: Vec<Value> = Vec::with_capacity(records.len() + 4);
    let mut tracks: Vec<u64> = records.iter().map(|r| r.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    for &track in &tracks {
        events.push(Value::Map(vec![
            ("ph".to_string(), Value::Str("M".to_string())),
            ("pid".to_string(), Value::U64(1)),
            ("tid".to_string(), Value::U64(track)),
            ("name".to_string(), Value::Str("thread_name".to_string())),
            (
                "args".to_string(),
                Value::Map(vec![("name".to_string(), Value::Str(track_name(track)))]),
            ),
        ]));
    }
    for record in records {
        let mut args = vec![
            ("span_id".to_string(), Value::U64(record.id)),
            ("parent_span_id".to_string(), Value::U64(record.parent)),
        ];
        for (key, value) in &record.args {
            args.push((key.to_string(), value.to_json()));
        }
        events.push(Value::Map(vec![
            ("ph".to_string(), Value::Str("X".to_string())),
            ("pid".to_string(), Value::U64(1)),
            ("tid".to_string(), Value::U64(record.track)),
            ("name".to_string(), Value::Str(record.name.to_string())),
            ("cat".to_string(), Value::Str("span".to_string())),
            ("ts".to_string(), Value::U64(record.start_us)),
            ("dur".to_string(), Value::U64(record.dur_us)),
            ("args".to_string(), Value::Map(args)),
        ]));
    }
    let trace = Value::Map(vec![
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        ("traceEvents".to_string(), Value::Seq(events)),
    ]);
    let mut out = Vec::new();
    let _ = serde_json::to_writer(&mut out, &trace);
    String::from_utf8(out).unwrap_or_default()
}

/// Drains all buffered records and renders them; the convenience the
/// `--trace <path>` flag calls once at the end of a binary.
pub fn export_chrome_trace() -> String {
    render_chrome_trace(&drain_records())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing tests share one process-global tracer, so they run under one
    /// lock and each starts from a drained state.
    fn with_tracer(test: impl FnOnce()) {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = crate::recover(LOCK.lock());
        enable();
        let _ = drain_records();
        test();
        let _ = drain_records();
    }

    #[test]
    fn spans_record_with_parent_links() {
        with_tracer(|| {
            {
                let _outer = crate::span("tr_outer");
                let _inner = crate::span("tr_inner");
            }
            let records = drain_records();
            let outer = records.iter().find(|r| r.name == "tr_outer").unwrap();
            let inner = records.iter().find(|r| r.name == "tr_inner").unwrap();
            assert_eq!(outer.parent, 0);
            assert_eq!(inner.parent, outer.id);
            assert_ne!(inner.id, outer.id);
            assert_eq!(outer.track, 0);
        });
    }

    #[test]
    fn handoff_parents_worker_roots_across_threads() {
        with_tracer(|| {
            let outer = crate::span("tr_coord");
            let token = handoff();
            assert!(token.is_some());
            let worker_records = std::thread::spawn(move || {
                let _mute = crate::silence_thread();
                let _guard = adopt(token, 3);
                {
                    let _span = crate::span("tr_worker");
                }
                harvest()
            })
            .join()
            .unwrap();
            assert_eq!(worker_records.len(), 1);
            assert_eq!(worker_records[0].name, "tr_worker");
            assert_eq!(worker_records[0].track, 3);
            let coord_id = {
                // The worker root's parent is the coordinator span open at
                // handoff time.
                let records_parent = worker_records[0].parent;
                absorb(worker_records.clone());
                records_parent
            };
            drop(outer);
            let records = drain_records();
            let outer = records.iter().find(|r| r.name == "tr_coord").unwrap();
            assert_eq!(coord_id, outer.id);
            assert!(records.iter().any(|r| r.name == "tr_worker"));
        });
    }

    #[test]
    fn untraced_threads_record_nothing() {
        with_tracer(|| {
            let count = std::thread::spawn(|| {
                let _span = crate::span("tr_orphan");
                drop(_span);
                harvest().len()
            })
            .join()
            .unwrap();
            assert_eq!(count, 0, "no buffer, no records");
        });
    }

    #[test]
    fn chrome_export_is_loadable_shaped() {
        with_tracer(|| {
            {
                let _span = crate::span("tr_export").with("answer", 42u64);
            }
            let json = export_chrome_trace();
            let parsed: Value = serde_json::from_str(&json).unwrap();
            let events = match parsed.get("traceEvents") {
                Some(Value::Seq(events)) => events,
                other => panic!("traceEvents missing: {other:?}"),
            };
            let meta = &events[0];
            assert_eq!(meta.get("ph").unwrap().as_str(), Some("M"));
            let span = events
                .iter()
                .find(|e| e.get("name").and_then(Value::as_str) == Some("tr_export"))
                .unwrap();
            assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
            assert!(span.get("ts").unwrap().as_u64().is_some());
            assert!(span.get("dur").unwrap().as_u64().is_some());
            let args = span.get("args").unwrap();
            assert_eq!(args.get("answer").unwrap().as_u64(), Some(42));
            assert!(args.get("span_id").unwrap().as_u64().unwrap() > 0);
        });
    }

    #[test]
    fn out_of_order_close_cannot_corrupt_the_id_stack() {
        with_tracer(|| {
            let a = crate::span("tr_a");
            let b = crate::span("tr_b");
            drop(a);
            drop(b);
            {
                let _c = crate::span("tr_c");
            }
            let records = drain_records();
            let c = records.iter().find(|r| r.name == "tr_c").unwrap();
            assert_eq!(c.parent, 0, "stale frames must not become parents");
        });
    }

    #[test]
    fn track_names_label_coordinator_and_shards() {
        assert_eq!(track_name(0), "coordinator");
        assert_eq!(track_name(1), "shard-0");
        assert_eq!(track_name(4), "shard-3");
    }
}
