//! Prometheus text exposition of a [`MetricsSnapshot`].
//!
//! The mapping is mechanical so scrape configs can be written from the
//! `names` constants alone: every dotted metric name is sanitised to the
//! Prometheus grammar (`litho.oracle.calls` → `litho_oracle_calls`),
//! counters export as `counter`, gauges as `gauge`, and each histogram
//! expands into `_count` / `_sum` / `_min` / `_max` / `_mean` plus the
//! estimated `_p50` / `_p95` / `_p99` quantile series.

use std::fmt::Write as _;

use crate::MetricsSnapshot;

/// Sanitises a dotted metric name into the Prometheus identifier grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: every other character becomes `_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if matches!(out.chars().next(), None | Some('0'..='9')) {
        out.insert(0, '_');
    }
    out
}

/// Prometheus floats: finite values print in Rust's shortest round-trip
/// form, which the exposition grammar accepts; non-finite map to the
/// spec's `NaN` / `+Inf` / `-Inf` spellings.
fn prometheus_value(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value.is_infinite() {
        if value > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{value}")
    }
}

fn push_series(out: &mut String, name: &str, kind: &str, value: &str) {
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name} {value}");
}

/// Renders a snapshot in the Prometheus text exposition format
/// (`text/plain; version=0.0.4`), ending with a trailing newline.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        push_series(
            &mut out,
            &prometheus_name(name),
            "counter",
            &value.to_string(),
        );
    }
    for (name, value) in &snapshot.gauges {
        push_series(
            &mut out,
            &prometheus_name(name),
            "gauge",
            &prometheus_value(*value),
        );
    }
    for histogram in &snapshot.histograms {
        let base = prometheus_name(&histogram.name);
        push_series(
            &mut out,
            &format!("{base}_count"),
            "counter",
            &histogram.count.to_string(),
        );
        push_series(
            &mut out,
            &format!("{base}_sum"),
            "gauge",
            &prometheus_value(histogram.sum),
        );
        push_series(
            &mut out,
            &format!("{base}_mean"),
            "gauge",
            &prometheus_value(histogram.mean),
        );
        for (suffix, value) in [
            ("min", histogram.min),
            ("max", histogram.max),
            ("p50", histogram.p50),
            ("p95", histogram.p95),
            ("p99", histogram.p99),
        ] {
            if let Some(v) = value {
                push_series(
                    &mut out,
                    &format!("{base}_{suffix}"),
                    "gauge",
                    &prometheus_value(v),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistogramSummary;

    #[test]
    fn names_sanitise_to_the_prometheus_grammar() {
        assert_eq!(prometheus_name("litho.oracle.calls"), "litho_oracle_calls");
        assert_eq!(prometheus_name("span.nn.train-loss"), "span_nn_train_loss");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name("already_fine:ok"), "already_fine:ok");
    }

    #[test]
    fn snapshot_renders_counters_gauges_and_quantiles() {
        let snapshot = MetricsSnapshot {
            counters: vec![("litho.oracle.calls".to_string(), 42)],
            gauges: vec![("calibration.temperature".to_string(), 1.25)],
            histograms: vec![HistogramSummary {
                name: "nn.train.loss".to_string(),
                count: 3,
                sum: 1.5,
                mean: 0.5,
                min: Some(0.25),
                max: Some(1.0),
                p50: Some(0.5),
                p95: Some(0.9),
                p99: Some(1.0),
                buckets: vec![("2^-2".to_string(), 3)],
            }],
        };
        let text = render_prometheus(&snapshot);
        assert!(text.contains("# TYPE litho_oracle_calls counter\n"));
        assert!(text.contains("litho_oracle_calls 42\n"));
        assert!(text.contains("calibration_temperature 1.25\n"));
        assert!(text.contains("nn_train_loss_count 3\n"));
        assert!(text.contains("nn_train_loss_p99 1\n"));
        assert!(text.contains("nn_train_loss_p95 0.9\n"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn empty_quantiles_are_omitted() {
        let snapshot = MetricsSnapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![HistogramSummary {
                name: "empty".to_string(),
                count: 0,
                sum: 0.0,
                mean: 0.0,
                min: None,
                max: None,
                p50: None,
                p95: None,
                p99: None,
                buckets: vec![],
            }],
        };
        let text = render_prometheus(&snapshot);
        assert!(text.contains("empty_count 0\n"));
        assert!(!text.contains("empty_p99"));
    }

    #[test]
    fn non_finite_values_use_spec_spellings() {
        let snapshot = MetricsSnapshot {
            counters: vec![],
            gauges: vec![
                ("a".to_string(), f64::NAN),
                ("b".to_string(), f64::INFINITY),
            ],
            histograms: vec![],
        };
        let text = render_prometheus(&snapshot);
        assert!(text.contains("a NaN\n"));
        assert!(text.contains("b +Inf\n"));
    }
}
