//! RAII span timers feeding a hierarchical wall-clock profile.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::{FieldValue, Level};

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Aggregate timings for one span path (e.g. `run/iteration/gmm.fit`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// How many spans closed at this path.
    pub count: u64,
    /// Total wall-clock nanoseconds across those spans.
    pub total_ns: u128,
}

/// Process-wide profile: span path → aggregated count and duration.
#[derive(Debug, Default)]
pub struct ProfileTree {
    stats: Mutex<BTreeMap<String, SpanStat>>,
}

impl ProfileTree {
    /// Folds one closed span into the tree.
    pub fn record(&self, path: &str, elapsed: Duration) {
        let mut stats = crate::recover(self.stats.lock());
        let stat = stats.entry(path.to_string()).or_default();
        stat.count += 1;
        stat.total_ns += elapsed.as_nanos();
    }

    /// Aggregated stats for an exact path.
    pub fn stat(&self, path: &str) -> Option<SpanStat> {
        crate::recover(self.stats.lock()).get(path).copied()
    }

    /// Number of distinct recorded paths.
    pub fn len(&self) -> usize {
        crate::recover(self.stats.lock()).len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the tree as an indented table (for `--profile`).
    pub fn render(&self) -> String {
        let stats = crate::recover(self.stats.lock());
        if stats.is_empty() {
            return "profile: no spans recorded\n".to_string();
        }
        let mut out = format!(
            "{:<48} {:>8} {:>12} {:>12}\n",
            "span", "count", "total", "mean"
        );
        for (path, stat) in stats.iter() {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let label = format!("{}{}", "  ".repeat(depth), name);
            let total = Duration::from_nanos(stat.total_ns.min(u128::from(u64::MAX)) as u64);
            let mean = total / stat.count.max(1).min(u64::from(u32::MAX)) as u32;
            out.push_str(&format!(
                "{label:<48} {:>8} {:>12} {:>12}\n",
                stat.count,
                format!("{total:.2?}"),
                format!("{mean:.2?}"),
            ));
        }
        out
    }
}

/// RAII wall-clock timer: opens a span on creation, and on drop folds the
/// elapsed time into the global profile and emits a `profile` event carrying
/// the span path, duration, and any attached fields.
#[must_use = "a span timer measures until it is dropped"]
#[derive(Debug)]
pub struct SpanTimer {
    name: &'static str,
    depth: usize,
    start: Instant,
    fields: Vec<(&'static str, FieldValue)>,
    trace: Option<crate::trace::OpenSpan>,
}

impl SpanTimer {
    pub(crate) fn open(name: &'static str) -> Self {
        let depth = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            stack.len() - 1
        });
        SpanTimer {
            name,
            depth,
            start: Instant::now(),
            fields: Vec::new(),
            trace: crate::trace::on_span_open(),
        }
    }

    /// Attaches a field reported on the span-close event.
    pub fn with(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// The span's full path, `outer/inner/...`.
    pub fn path(&self) -> String {
        SPAN_STACK.with(|stack| {
            let stack = stack.borrow();
            if stack.is_empty() {
                self.name.to_string()
            } else {
                stack[..=self.depth.min(stack.len() - 1)].join("/")
            }
        })
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        if let Some(open) = self.trace.take() {
            crate::trace::on_span_close(open, self.name, elapsed, &self.fields);
        }
        // Rebuild the path, then unwind the stack to this span's depth. The
        // truncate (rather than a pop) keeps the stack sane even if an inner
        // span leaked past its parent, and the clamps keep an out-of-order or
        // mid-unwind drop — another timer on this thread may already have
        // truncated below us — from indexing past the live stack.
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = if stack.is_empty() {
                self.name.to_string()
            } else {
                stack[..=self.depth.min(stack.len() - 1)].join("/")
            };
            let keep = self.depth.min(stack.len());
            stack.truncate(keep);
            path
        });
        crate::global().profile.record(&path, elapsed);
        // Feed the per-span duration histogram so live scrapes (`/metrics`)
        // see tail latencies without waiting for journal post-processing.
        crate::global()
            .metrics
            .histogram(&crate::names::span_seconds(self.name))
            .record(elapsed.as_secs_f64());
        let mut fields = vec![
            ("span", FieldValue::Str(path)),
            (
                "duration_us",
                FieldValue::U64(elapsed.as_micros().min(u128::from(u64::MAX)) as u64),
            ),
        ];
        fields.append(&mut self.fields);
        crate::emit(Level::Debug, "profile", self.name, &fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_aggregates_repeated_paths() {
        let tree = ProfileTree::default();
        tree.record("run", Duration::from_millis(10));
        tree.record("run/iteration", Duration::from_millis(3));
        tree.record("run/iteration", Duration::from_millis(5));
        tree.record("run/iteration/gmm.fit", Duration::from_millis(1));

        let iteration = tree.stat("run/iteration").unwrap();
        assert_eq!(iteration.count, 2);
        assert_eq!(iteration.total_ns, 8_000_000);
        assert_eq!(tree.stat("run").unwrap().count, 1);
        assert_eq!(tree.len(), 3);
        assert!(tree.stat("missing").is_none());
    }

    #[test]
    fn render_indents_children_under_parents() {
        let tree = ProfileTree::default();
        tree.record("run", Duration::from_millis(2));
        tree.record("run/iteration", Duration::from_millis(1));
        let rendered = tree.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[1].starts_with("run"));
        assert!(lines[2].starts_with("  iteration"));
        assert!(rendered.contains("count"));
    }

    #[test]
    fn empty_tree_renders_placeholder() {
        let tree = ProfileTree::default();
        assert!(tree.is_empty());
        assert!(tree.render().contains("no spans"));
    }

    #[test]
    fn span_drop_records_a_duration_histogram() {
        {
            let _span = crate::span("st_histogram");
        }
        let histogram = crate::histogram(&crate::names::span_seconds("st_histogram"));
        assert!(histogram.count() >= 1);
        assert!(histogram.quantile(0.99).is_some());
    }

    #[test]
    fn out_of_order_drops_do_not_panic_or_corrupt_siblings() {
        let a = crate::span("st_ooo_a");
        let b = crate::span("st_ooo_b");
        drop(a); // closes the parent first, emptying this thread's stack
        drop(b); // must not underflow, and must record under its own name
        {
            let _c = crate::span("st_ooo_c");
        }
        assert!(crate::global().profile.stat("st_ooo_b").is_some());
        assert_eq!(crate::global().profile.stat("st_ooo_c").unwrap().count, 1);
    }

    #[test]
    fn span_timers_nest_and_record() {
        let _ = crate::global();
        let outer = crate::span("st_outer");
        let inner_path = {
            let inner = crate::span("st_inner");
            inner.path()
        };
        assert_eq!(inner_path, "st_outer/st_inner");
        drop(outer);
        let stat = crate::global().profile.stat("st_outer/st_inner").unwrap();
        assert_eq!(stat.count, 1);
        assert!(crate::global().profile.stat("st_outer").is_some());
    }
}
