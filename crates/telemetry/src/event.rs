//! Structured events: a level, a dotted target, a message, and typed fields.

use serde_json::Value;

use crate::Level;

/// A typed field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl FieldValue {
    /// The value as JSON content for journal sinks.
    pub fn to_json(&self) -> Value {
        match self {
            FieldValue::I64(v) => Value::I64(*v),
            FieldValue::U64(v) => Value::U64(*v),
            FieldValue::F64(v) => Value::F64(*v),
            FieldValue::Bool(v) => Value::Bool(*v),
            FieldValue::Str(v) => Value::Str(v.clone()),
        }
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:.6}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! field_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $conv)
            }
        }
    )*};
}

field_from! {
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64, isize => I64 as i64,
    f32 => F64 as f64, f64 => F64 as f64,
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured telemetry event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Severity.
    pub level: Level,
    /// Dotted origin, e.g. `core.framework` or `nn.train`.
    pub target: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Typed key–value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// The event as a JSON object (without the journal's `type` tag).
    pub fn to_json(&self) -> Value {
        let mut entries = vec![
            (
                "level".to_string(),
                Value::Str(self.level.as_str().to_string()),
            ),
            ("target".to_string(), Value::Str(self.target.to_string())),
            ("message".to_string(), Value::Str(self.message.clone())),
        ];
        for (key, value) in &self.fields {
            entries.push((key.to_string(), value.to_json()));
        }
        Value::Map(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_conversions_cover_common_types() {
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-2i32), FieldValue::I64(-2));
        assert_eq!(FieldValue::from(0.5f32), FieldValue::F64(0.5));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".to_string()));
    }

    #[test]
    fn event_serializes_fields() {
        let event = Event {
            level: Level::Info,
            target: "core.framework",
            message: "iteration complete".to_string(),
            fields: vec![("iteration", 2usize.into()), ("ece", 0.125f64.into())],
        };
        let json = event.to_json();
        assert_eq!(json.get("level").unwrap().as_str(), Some("info"));
        assert_eq!(json.get("iteration").unwrap().as_u64(), Some(2));
        assert_eq!(json.get("ece").unwrap().as_f64(), Some(0.125));
    }
}
