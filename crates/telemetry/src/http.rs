//! Minimal std-only HTTP endpoint exposing the live metrics registry.
//!
//! [`serve_metrics`] binds a TCP listener and answers two routes from a
//! background thread, so any bench binary or serving process can be scraped
//! mid-run by Prometheus (or plain `curl`):
//!
//! - `GET /metrics` — the current [`crate::snapshot`] rendered by
//!   [`crate::render_prometheus`] (`text/plain; version=0.0.4`);
//! - `GET /healthz` — `ok`, for liveness probes.
//!
//! The returned [`MetricsServer`] is a shutdown handle: dropping it (or
//! calling [`MetricsServer::shutdown`]) stops the accept loop and joins the
//! thread, so tests and `--metrics-addr` binaries exit cleanly.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::export::render_prometheus;

/// How long one request may take to arrive/drain before the connection is
/// dropped; keeps a stalled scraper from wedging the single accept loop.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// Handle to a running metrics endpoint (see [`serve_metrics`]).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address — useful with port `0`, where the OS picks one.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread. Idempotent;
    /// also invoked on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop only re-checks the flag per connection; poke it.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts the `/metrics` + `/healthz` endpoint on `addr` (e.g.
/// `127.0.0.1:9184`, or port `0` to let the OS choose) and serves it from a
/// background thread until the returned handle shuts down.
///
/// # Errors
///
/// Propagates the bind failure (address in use, permission denied, …).
pub fn serve_metrics(addr: &str) -> io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("lithohd-metrics".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if thread_stop.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => handle_connection(stream),
                    Err(_) => continue,
                }
            }
        })?;
    crate::info(
        "telemetry.http",
        "serving metrics",
        &[("addr", addr.to_string().into())],
    );
    Ok(MetricsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

/// Reads the request head (through the blank line) and answers one request;
/// every response closes the connection.
fn handle_connection(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&chunk[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                    break;
                }
            }
            Err(_) => return, // timeout or reset: drop without answering
        }
    }
    let request_line = String::from_utf8_lossy(&head);
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = route(method, path);
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

fn route(method: &str, path: &str) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        );
    }
    match path.split('?').next().unwrap_or("") {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            render_prometheus(&crate::snapshot()),
        ),
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: lithohd\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_metrics_health_and_404() {
        crate::counter("http.test.counter").add(5);
        crate::gauge("http.test.gauge").set(2.5);
        let mut server = serve_metrics("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"));
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("http_test_counter 5"));
        assert!(metrics.contains("http_test_gauge 2.5"));

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"));
        assert!(health.ends_with("ok\n"));

        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));

        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let server = serve_metrics("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"));
    }
}
