//! Minimal std-only HTTP request loop, plus the metrics endpoint built on
//! top of it.
//!
//! The core is [`serve_http`]: a multi-threaded accept loop that parses
//! requests (head + `Content-Length` body), honors `Connection: keep-alive`
//! with a per-read deadline, and hands every request to a router callback.
//! It exists so every long-running binary in the workspace — the metrics
//! scrape endpoint here, the scoring server in `hotspot-serve` — shares one
//! connection loop instead of growing private ones.
//!
//! [`serve_metrics`] is the original metrics endpoint, now a thin router
//! over the shared loop:
//!
//! - `GET /metrics` — the current [`crate::snapshot`] rendered by
//!   [`crate::render_prometheus`] (`text/plain; version=0.0.4`);
//! - `GET /healthz` — `ok`, for liveness probes.
//!
//! The returned handles stop the accept loops and join the serving threads
//! on shutdown (or drop), so tests and `--metrics-addr` binaries exit
//! cleanly.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::export::render_prometheus;

/// How long one read may stall before an idle keep-alive connection is
/// dropped; keeps a stalled client from wedging a worker forever.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// Head bytes (request line + headers) accepted before the request is
/// rejected as malformed.
const MAX_HEAD: usize = 16 * 1024;

/// A parsed HTTP request handed to the router callback.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request path with any query string still attached.
    pub path: String,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value under `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let wanted = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == wanted)
            .map(|(_, v)| v.as_str())
    }

    /// The path without its query string.
    pub fn route_path(&self) -> &str {
        self.path.split('?').next().unwrap_or("")
    }

    /// Whether the client asked for the connection to close after this
    /// response (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A response produced by the router callback.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Extra headers appended verbatim (e.g. `Retry-After`).
    pub headers: Vec<(String, String)>,
    /// Force `Connection: close` after this response.
    pub close: bool,
}

impl Response {
    /// Builds a response with an explicit content type.
    pub fn new(status: u16, content_type: impl Into<String>, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: content_type.into(),
            body: body.into(),
            headers: Vec::new(),
            close: false,
        }
    }

    /// Plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response::new(
            status,
            "text/plain; charset=utf-8",
            body.into().into_bytes(),
        )
    }

    /// JSON response (`application/json`).
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response::new(status, "application/json", body.into().into_bytes())
    }

    /// Appends one extra response header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }
}

/// Canonical reason phrase for the status codes this workspace emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Tuning knobs for [`serve_http`].
#[derive(Debug, Clone)]
pub struct HttpOptions {
    /// Worker threads sharing the accept loop.
    pub threads: usize,
    /// Per-read deadline; an idle keep-alive connection is dropped after
    /// one deadline without a new request.
    pub read_timeout: Duration,
    /// Largest accepted request body.
    pub max_body: usize,
    /// Requests served on one connection before it is closed.
    pub max_keep_alive: usize,
    /// Name prefix for the worker threads.
    pub thread_name: String,
}

impl Default for HttpOptions {
    fn default() -> Self {
        HttpOptions {
            threads: 1,
            read_timeout: IO_TIMEOUT,
            max_body: 4 * 1024 * 1024,
            max_keep_alive: 1024,
            thread_name: "lithohd-http".to_string(),
        }
    }
}

/// The router callback type: pure request → response.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Handle to a running HTTP request loop (see [`serve_http`]).
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// The bound address — useful with port `0`, where the OS picks one.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins every worker. Idempotent; also
    /// invoked on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Workers only re-check the flag per accepted connection; poke one
        // connection per worker to wake them all.
        for _ in 0..self.handles.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts a multi-threaded HTTP request loop on `addr` (e.g.
/// `127.0.0.1:9184`, or port `0` to let the OS choose) and routes every
/// request through `handler` until the returned handle shuts down.
///
/// # Errors
///
/// Propagates the bind failure (address in use, permission denied, …) and
/// worker-spawn failures.
pub fn serve_http(addr: &str, options: HttpOptions, handler: Handler) -> io::Result<HttpServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let threads = options.threads.max(1);
    let options = Arc::new(options);
    let mut handles = Vec::with_capacity(threads);
    for worker in 0..threads {
        let listener = listener.try_clone()?;
        let stop = Arc::clone(&stop);
        let options = Arc::clone(&options);
        let handler = Arc::clone(&handler);
        let handle = std::thread::Builder::new()
            .name(format!("{}-{worker}", options.thread_name))
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(stream) => handle_connection(stream, &options, &handler, &stop),
                        Err(_) => continue,
                    }
                }
            })?;
        handles.push(handle);
    }
    crate::info(
        "telemetry.http",
        "serving http",
        &[
            ("addr", addr.to_string().into()),
            ("threads", (threads as u64).into()),
        ],
    );
    Ok(HttpServer {
        addr,
        stop,
        handles,
    })
}

/// What one attempt to read a request produced.
enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// Clean end of stream or a read deadline on an idle connection.
    Closed,
    /// A syntactically broken head: answer 400 and close.
    Malformed,
    /// A body larger than the configured cap: answer 413 and close.
    TooLarge,
}

/// Serves requests on one connection until the client closes, asks to
/// close, a read deadline passes with no new request, or the keep-alive
/// budget is exhausted.
fn handle_connection(
    mut stream: TcpStream,
    options: &HttpOptions,
    handler: &Handler,
    stop: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(options.read_timeout));
    let _ = stream.set_write_timeout(Some(options.read_timeout));
    // Bytes read past the previous request's end (pipelined head start).
    let mut leftover: Vec<u8> = Vec::new();
    for served in 0..options.max_keep_alive {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let request = match read_request(&mut stream, &mut leftover, options.max_body) {
            ReadOutcome::Request(request) => request,
            ReadOutcome::Closed => break,
            ReadOutcome::Malformed => {
                let mut response = Response::text(400, "malformed request\n");
                response.close = true;
                let _ = write_response(&mut stream, &response);
                break;
            }
            ReadOutcome::TooLarge => {
                let mut response = Response::text(413, "request body too large\n");
                response.close = true;
                let _ = write_response(&mut stream, &response);
                break;
            }
        };
        let mut response = handler(&request);
        let last = served + 1 == options.max_keep_alive;
        response.close = response.close || request.wants_close() || last;
        let close = response.close;
        if write_response(&mut stream, &response).is_err() || close {
            break;
        }
    }
}

/// Reads one request: head through the blank line, then a `Content-Length`
/// body. `leftover` carries bytes already read past the previous request.
fn read_request(stream: &mut TcpStream, leftover: &mut Vec<u8>, max_body: usize) -> ReadOutcome {
    let mut buffer = std::mem::take(leftover);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(end) = find_head_end(&buffer) {
            break end;
        }
        if buffer.len() > MAX_HEAD {
            return ReadOutcome::Malformed;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => buffer.extend_from_slice(&chunk[..n]),
            // A timeout mid-head (some bytes already arrived) is a broken
            // request; a timeout on a fresh idle connection is a clean end.
            Err(_) if buffer.is_empty() => return ReadOutcome::Closed,
            Err(_) => return ReadOutcome::Malformed,
        }
    };
    let head = String::from_utf8_lossy(&buffer[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(method), Some(path)) if !method.is_empty() => (method.to_string(), path.to_string()),
        _ => return ReadOutcome::Malformed,
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return ReadOutcome::Malformed;
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > max_body {
        return ReadOutcome::TooLarge;
    }
    let mut body = buffer.split_off(head_end + 4);
    buffer.truncate(head_end);
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return ReadOutcome::Malformed,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(_) => return ReadOutcome::Malformed,
        }
    }
    *leftover = body.split_off(content_length);
    ReadOutcome::Request(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Byte offset of the `\r\n\r\n` head terminator, if complete.
fn find_head_end(buffer: &[u8]) -> Option<usize> {
    buffer.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let connection = if response.close {
        "close"
    } else {
        "keep-alive"
    };
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// Handle to a running metrics endpoint (see [`serve_metrics`]).
#[derive(Debug)]
pub struct MetricsServer {
    inner: HttpServer,
}

impl MetricsServer {
    /// The bound address — useful with port `0`, where the OS picks one.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// Stops the accept loop and joins the serving thread. Idempotent;
    /// also invoked on drop.
    pub fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

/// Starts the `/metrics` + `/healthz` endpoint on `addr` and serves it from
/// a background thread until the returned handle shuts down.
///
/// # Errors
///
/// Propagates the bind failure (address in use, permission denied, …).
pub fn serve_metrics(addr: &str) -> io::Result<MetricsServer> {
    let options = HttpOptions {
        thread_name: "lithohd-metrics".to_string(),
        ..HttpOptions::default()
    };
    let inner = serve_http(addr, options, Arc::new(metrics_route))?;
    Ok(MetricsServer { inner })
}

/// The metrics endpoint's router.
fn metrics_route(request: &Request) -> Response {
    if request.method != "GET" {
        return Response::text(405, "method not allowed\n");
    }
    match request.route_path() {
        "/metrics" => Response::new(
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            render_prometheus(&crate::snapshot()).into_bytes(),
        ),
        "/healthz" => Response::text(200, "ok\n"),
        _ => Response::text(404, "not found\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: lithohd\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_metrics_health_and_404() {
        crate::counter("http.test.counter").add(5);
        crate::gauge("http.test.gauge").set(2.5);
        let mut server = serve_metrics("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"));
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("http_test_counter 5"));
        assert!(metrics.contains("http_test_gauge 2.5"));

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"));
        assert!(health.ends_with("ok\n"));

        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));

        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let mut server = serve_metrics("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"));
        server.shutdown();
    }

    /// One read of everything currently buffered (a whole response for the
    /// small bodies these tests produce).
    fn read_response(stream: &mut TcpStream) -> String {
        let mut chunk = [0u8; 4096];
        let mut out = Vec::new();
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    out.extend_from_slice(&chunk[..n]);
                    let text = String::from_utf8_lossy(&out);
                    if let Some(head_end) = text.find("\r\n\r\n") {
                        let advertised: usize = text[..head_end]
                            .lines()
                            .find_map(|l| l.strip_prefix("Content-Length: "))
                            .and_then(|v| v.parse().ok())
                            .unwrap_or(0);
                        if out.len() >= head_end + 4 + advertised {
                            break;
                        }
                    }
                }
                Err(_) => break,
            }
        }
        String::from_utf8_lossy(&out).into_owned()
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let mut server = serve_metrics("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let first = read_response(&mut stream);
        assert!(first.starts_with("HTTP/1.1 200 OK"), "{first}");
        assert!(first.contains("Connection: keep-alive"), "{first}");

        // Same socket, second request: the connection must still be open.
        write!(
            stream,
            "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let second = read_response(&mut stream);
        assert!(second.starts_with("HTTP/1.1 200 OK"), "{second}");
        assert!(second.contains("Connection: close"), "{second}");
        server.shutdown();
    }

    #[test]
    fn post_bodies_are_read_by_content_length() {
        let echo: Handler = Arc::new(|request: &Request| {
            Response::text(
                200,
                format!(
                    "{} {} {}",
                    request.method,
                    request.route_path(),
                    String::from_utf8_lossy(&request.body)
                ),
            )
        });
        let mut server =
            serve_http("127.0.0.1:0", HttpOptions::default(), echo).expect("bind echo server");
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        let body = "{\"x\":1}";
        write!(
            stream,
            "POST /score?q=1 HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.ends_with("POST /score {\"x\":1}"), "{response}");
        server.shutdown();
    }

    #[test]
    fn malformed_heads_get_400() {
        let mut server = serve_metrics("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "NONSENSE\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        server.shutdown();
    }
}
