//! Pluggable event sinks: console (filtered), JSONL run journal, memory.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use serde_json::Value;

use crate::{EnvFilter, Event, MetricsSnapshot};

/// Receives every telemetry event and metrics snapshot.
pub trait Sink: Send + Sync {
    /// Handles one event.
    fn on_event(&self, event: &Event);

    /// Handles a metrics snapshot (journals record it; consoles may ignore).
    fn on_snapshot(&self, _snapshot: &MetricsSnapshot) {}

    /// Flushes buffered output.
    fn flush(&self) {}
}

/// Human-readable sink writing to stderr, honouring a [`EnvFilter`]
/// (normally built from `LITHOHD_LOG`).
pub struct ConsoleSink {
    filter: EnvFilter,
}

impl ConsoleSink {
    /// Console with an explicit filter.
    pub fn new(filter: EnvFilter) -> Self {
        ConsoleSink { filter }
    }

    /// Console filtered by the `LITHOHD_LOG` environment variable.
    pub fn from_env() -> Self {
        ConsoleSink {
            filter: EnvFilter::from_env(),
        }
    }
}

impl Sink for ConsoleSink {
    fn on_event(&self, event: &Event) {
        if !self.filter.enabled(event.level, event.target) {
            return;
        }
        let mut line = format!(
            "[{:5} {}] {}",
            event.level.as_str(),
            event.target,
            event.message
        );
        for (key, value) in &event.fields {
            line.push_str(&format!(" {key}={value}"));
        }
        eprintln!("{line}");
    }

    fn flush(&self) {
        let _ = io::stderr().flush();
    }
}

/// Append-only JSONL run journal: one JSON object per line, tagged
/// `"type":"event"` or `"type":"snapshot"`, each carrying the microseconds
/// elapsed since the journal was opened and a per-journal sequence number.
///
/// [`JsonlSink::create_canonical`] opens the journal in *canonical* mode:
/// every wall-clock measurement is withheld (the `elapsed_us` header,
/// `profile` span-close events, `elapsed_ms`/`duration_us` event fields,
/// and `.seconds` latency histograms in snapshots), so two runs of the same
/// binary with the same seed produce byte-identical journal files. The
/// determinism suite diffs exactly that.
pub struct JsonlSink {
    writer: Mutex<JournalWriter>,
    opened: Instant,
    canonical: bool,
}

/// Exact byte offset and next sequence number of a journal, as used by
/// checkpoints: a resumed process truncates the journal to `bytes` and
/// continues writing records numbered from `seq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalPosition {
    /// File length in bytes after the last complete record.
    pub bytes: u64,
    /// Sequence number the next record will carry.
    pub seq: u64,
}

struct JournalWriter {
    out: BufWriter<File>,
    seq: u64,
    bytes: u64,
}

impl JsonlSink {
    /// Creates (truncating) the journal file.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::open(path, false, false)
    }

    /// Creates (truncating) the journal file in canonical mode: all
    /// wall-clock data is withheld so identically-seeded runs write
    /// byte-identical journals.
    pub fn create_canonical(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::open(path, true, false)
    }

    /// Opens the journal for appending (creating it when absent), so a
    /// resumed run continues the file its interrupted predecessor left
    /// behind. Sequence numbers continue from the existing line count.
    pub fn append(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::open(path, false, true)
    }

    /// [`Self::append`] in canonical mode; with the journal first truncated
    /// to the checkpoint's [`JournalPosition`], the continuation is
    /// byte-identical to an uninterrupted run's journal.
    pub fn create_canonical_append(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::open(path, true, true)
    }

    fn open(path: impl AsRef<Path>, canonical: bool, append: bool) -> io::Result<Self> {
        let (file, seq, bytes) = if append {
            // Initialise the position from the surviving file: one record
            // per line, so the next sequence number is the line count.
            let existing = match std::fs::read(path.as_ref()) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
                Err(e) => return Err(e),
            };
            let seq = existing.iter().filter(|&&b| b == b'\n').count() as u64;
            let file = File::options().create(true).append(true).open(path)?;
            (file, seq, existing.len() as u64)
        } else {
            (File::create(path)?, 0, 0)
        };
        Ok(JsonlSink {
            writer: Mutex::new(JournalWriter {
                out: BufWriter::new(file),
                seq,
                bytes,
            }),
            opened: Instant::now(),
            canonical,
        })
    }

    /// Whether this journal withholds wall-clock and provenance data.
    pub fn is_canonical(&self) -> bool {
        self.canonical
    }

    /// The current end-of-journal position (all records are flushed before
    /// this returns, so the position is durable).
    pub fn position(&self) -> JournalPosition {
        let writer = crate::recover(self.writer.lock());
        JournalPosition {
            bytes: writer.bytes,
            seq: writer.seq,
        }
    }

    /// Writes the `resume` header record a resumed run opens with, carrying
    /// the restored iteration and checkpoint id. Withheld in canonical mode
    /// — an uninterrupted run has no such record, and checkpoint provenance
    /// must not break the byte-identity oracle.
    pub fn record_resume(&self, iteration: u64, checkpoint_id: u64) {
        if self.canonical {
            return;
        }
        self.write_record(
            "resume",
            vec![
                ("iteration".to_string(), Value::U64(iteration)),
                ("checkpoint".to_string(), Value::U64(checkpoint_id)),
            ],
        );
    }

    fn write_record(&self, kind: &str, mut body: Vec<(String, Value)>) {
        let mut writer = crate::recover(self.writer.lock());
        let mut entries = vec![
            ("type".to_string(), Value::Str(kind.to_string())),
            ("seq".to_string(), Value::U64(writer.seq)),
        ];
        if self.canonical {
            body.retain(|(key, _)| !crate::names::is_withheld_canonical_field(key));
        } else {
            entries.push((
                "elapsed_us".to_string(),
                Value::U64(self.opened.elapsed().as_micros().min(u128::from(u64::MAX)) as u64),
            ));
        }
        entries.append(&mut body);
        writer.seq += 1;
        // Journal output is best-effort: losing a line must not kill a run.
        let mut line = Vec::new();
        if serde_json::to_writer(&mut line, &Value::Map(entries)).is_ok() {
            line.push(b'\n');
            if writer.out.write_all(&line).is_ok() {
                writer.bytes += line.len() as u64;
            }
        }
        // Flush per record, not only on drop: a killed or scraped-mid-run
        // process must still leave a journal readable up to its last line
        // (at worst one truncated trailing line, which parsers skip).
        let _ = writer.out.flush();
    }
}

impl Sink for JsonlSink {
    fn on_event(&self, event: &Event) {
        // Span-close profile events are pure wall-clock measurements, and
        // checkpoint provenance differs between resumed and uninterrupted
        // runs; canonical journals withhold both.
        if self.canonical && crate::names::is_withheld_canonical_target(event.target) {
            return;
        }
        let body = match event.to_json() {
            Value::Map(entries) => entries,
            other => vec![("event".to_string(), other)],
        };
        self.write_record("event", body);
    }

    fn on_snapshot(&self, snapshot: &MetricsSnapshot) {
        let metrics = if self.canonical {
            let mut canonical = snapshot.clone();
            canonical
                .histograms
                .retain(|h| !crate::names::is_withheld_canonical_metric(&h.name));
            canonical
                .counters
                .retain(|(name, _)| !crate::names::is_withheld_canonical_metric(name));
            canonical.to_json()
        } else {
            snapshot.to_json()
        };
        self.write_record("snapshot", vec![("metrics".to_string(), metrics)]);
    }

    fn flush(&self) {
        let _ = crate::recover(self.writer.lock()).out.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        Sink::flush(self);
    }
}

/// Test-oriented sink retaining events and snapshots in memory.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
    snapshots: Mutex<Vec<MetricsSnapshot>>,
}

impl MemorySink {
    /// Copies of all events received so far.
    pub fn events(&self) -> Vec<Event> {
        crate::recover(self.events.lock()).clone()
    }

    /// Copies of all snapshots received so far.
    pub fn snapshots(&self) -> Vec<MetricsSnapshot> {
        crate::recover(self.snapshots.lock()).clone()
    }
}

impl Sink for MemorySink {
    fn on_event(&self, event: &Event) {
        crate::recover(self.events.lock()).push(event.clone());
    }

    fn on_snapshot(&self, snapshot: &MetricsSnapshot) {
        crate::recover(self.snapshots.lock()).push(snapshot.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FieldValue, Level};

    fn sample_event() -> Event {
        Event {
            level: Level::Info,
            target: "core.framework",
            message: "iteration complete".to_string(),
            fields: vec![
                ("iteration", FieldValue::U64(3)),
                ("temperature", FieldValue::F64(1.5)),
            ],
        }
    }

    #[test]
    fn jsonl_round_trips_events_and_snapshots() {
        let path =
            std::env::temp_dir().join(format!("lithohd-journal-test-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).unwrap();
        sink.on_event(&sample_event());
        let mut snapshot = MetricsSnapshot::default();
        snapshot
            .counters
            .push(("litho.oracle.calls".to_string(), 42));
        sink.on_snapshot(&snapshot);
        drop(sink); // flush

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);

        let event: Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(event.get("type").unwrap().as_str(), Some("event"));
        assert_eq!(event.get("seq").unwrap().as_u64(), Some(0));
        assert_eq!(event.get("iteration").unwrap().as_u64(), Some(3));
        assert_eq!(event.get("temperature").unwrap().as_f64(), Some(1.5));

        let snap: Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(snap.get("type").unwrap().as_str(), Some("snapshot"));
        assert_eq!(
            snap.get("metrics")
                .unwrap()
                .get("counters")
                .unwrap()
                .get("litho.oracle.calls")
                .unwrap()
                .as_u64(),
            Some(42)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_flushes_after_every_record() {
        let path = std::env::temp_dir().join(format!(
            "lithohd-journal-flush-test-{}.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::create(&path).unwrap();
        sink.on_event(&sample_event());
        // Without dropping (flushing) the sink, the record must already be
        // on disk — a killed process leaves a readable journal.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        let parsed: Value = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(parsed.get("type").unwrap().as_str(), Some("event"));
        drop(sink);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn canonical_journal_withholds_all_wall_clock_data() {
        let path = std::env::temp_dir().join(format!(
            "lithohd-journal-canonical-test-{}.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::create_canonical(&path).unwrap();
        // A profile event must be dropped entirely.
        sink.on_event(&Event {
            level: Level::Debug,
            target: "profile",
            message: "nn.train".to_string(),
            fields: vec![("duration_us", FieldValue::U64(1500))],
        });
        // A normal event keeps its fields except wall-clock durations.
        sink.on_event(&Event {
            level: Level::Info,
            target: "core.framework",
            message: "run complete".to_string(),
            fields: vec![
                ("run_id", FieldValue::U64(0)),
                ("elapsed_ms", FieldValue::U64(2500)),
            ],
        });
        // Latency histograms are withheld from snapshots; counters stay.
        let mut snapshot = MetricsSnapshot::default();
        snapshot
            .counters
            .push(("litho.oracle.calls".to_string(), 42));
        snapshot.histograms.push(crate::HistogramSummary {
            name: "litho.oracle.seconds".to_string(),
            ..Default::default()
        });
        sink.on_snapshot(&snapshot);
        drop(sink);

        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.contains("elapsed_us"), "{text}");
        assert!(!text.contains("elapsed_ms"), "{text}");
        assert!(!text.contains("duration_us"), "{text}");
        assert!(!text.contains(".seconds"), "{text}");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "profile event must be dropped: {text}");
        let event: Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(event.get("run_id").unwrap().as_u64(), Some(0));
        let snap: Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(
            snap.get("metrics")
                .unwrap()
                .get("counters")
                .unwrap()
                .get("litho.oracle.calls")
                .unwrap()
                .as_u64(),
            Some(42)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_continues_position_and_sequence() {
        let path = std::env::temp_dir().join(format!(
            "lithohd-journal-append-test-{}.jsonl",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let sink = JsonlSink::create_canonical(&path).unwrap();
        sink.on_event(&sample_event());
        sink.on_event(&sample_event());
        let position = sink.position();
        drop(sink);
        assert_eq!(position.seq, 2);
        assert_eq!(
            position.bytes,
            std::fs::metadata(&path).unwrap().len(),
            "tracked bytes must equal the file length"
        );

        // Simulate a resume: truncate to the recorded position (a no-op
        // here) and reopen for appending.
        let resumed = JsonlSink::create_canonical_append(&path).unwrap();
        assert_eq!(resumed.position(), position);
        resumed.on_event(&sample_event());
        drop(resumed);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let last: Value = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(last.get("seq").unwrap().as_u64(), Some(2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_record_written_plainly_but_withheld_canonically() {
        let dir = std::env::temp_dir();
        let plain_path = dir.join(format!(
            "lithohd-journal-resume-plain-{}.jsonl",
            std::process::id()
        ));
        let plain = JsonlSink::append(&plain_path).unwrap();
        plain.record_resume(7, 3);
        drop(plain);
        let text = std::fs::read_to_string(&plain_path).unwrap();
        let record: Value = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(record.get("type").unwrap().as_str(), Some("resume"));
        assert_eq!(record.get("iteration").unwrap().as_u64(), Some(7));
        assert_eq!(record.get("checkpoint").unwrap().as_u64(), Some(3));
        std::fs::remove_file(&plain_path).ok();

        let canonical_path = dir.join(format!(
            "lithohd-journal-resume-canon-{}.jsonl",
            std::process::id()
        ));
        let canonical = JsonlSink::create_canonical_append(&canonical_path).unwrap();
        canonical.record_resume(7, 3);
        drop(canonical);
        let text = std::fs::read_to_string(&canonical_path).unwrap();
        assert!(
            text.is_empty(),
            "canonical mode must withhold resume records"
        );
        std::fs::remove_file(&canonical_path).ok();
    }

    #[test]
    fn canonical_journal_withholds_checkpoint_provenance() {
        let path = std::env::temp_dir().join(format!(
            "lithohd-journal-ckpt-test-{}.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::create_canonical(&path).unwrap();
        sink.on_event(&Event {
            level: Level::Info,
            target: "store.checkpoint",
            message: "checkpoint saved".to_string(),
            fields: vec![("iteration", FieldValue::U64(4))],
        });
        let mut snapshot = MetricsSnapshot::default();
        snapshot.counters.push(("checkpoint.saves".to_string(), 4));
        snapshot
            .counters
            .push(("litho.oracle.calls".to_string(), 9));
        sink.on_snapshot(&snapshot);
        drop(sink);

        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.contains("checkpoint"), "{text}");
        assert!(text.contains("litho.oracle.calls"), "{text}");
        assert_eq!(text.lines().count(), 1, "event must be dropped: {text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn canonical_journal_withholds_shard_provenance() {
        let path = std::env::temp_dir().join(format!(
            "lithohd-journal-shard-test-{}.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::create_canonical(&path).unwrap();
        sink.on_event(&Event {
            level: Level::Debug,
            target: "shard.coordinator",
            message: "shard batch merged".to_string(),
            fields: vec![("workers", FieldValue::U64(4))],
        });
        let mut snapshot = MetricsSnapshot::default();
        snapshot.counters.push(("shard.batches".to_string(), 7));
        snapshot
            .counters
            .push(("litho.oracle.calls".to_string(), 9));
        sink.on_snapshot(&snapshot);
        drop(sink);

        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.contains("shard"), "{text}");
        assert!(text.contains("litho.oracle.calls"), "{text}");
        assert_eq!(text.lines().count(), 1, "event must be dropped: {text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn canonical_journal_withholds_kernel_counters() {
        let path = std::env::temp_dir().join(format!(
            "lithohd-journal-kernel-test-{}.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::create_canonical(&path).unwrap();
        let mut snapshot = MetricsSnapshot::default();
        snapshot
            .counters
            .push(("kernel.conv2d.flops".to_string(), 123));
        snapshot
            .counters
            .push(("litho.oracle.calls".to_string(), 9));
        sink.on_snapshot(&snapshot);
        drop(sink);

        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.contains("kernel."), "{text}");
        assert!(text.contains("litho.oracle.calls"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn memory_sink_retains_in_order() {
        let sink = MemorySink::default();
        sink.on_event(&sample_event());
        sink.on_event(&sample_event());
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.events()[0].target, "core.framework");
    }
}
