//! Process-wide counters, gauges, and histograms backed by atomics.
//!
//! Handles are cheap `Arc` clones of registry slots; recording is lock-free
//! (locks are only taken when first resolving a name or when snapshotting).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde_json::Value;

/// A monotonically increasing counter (e.g. `litho.oracle.calls`).
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// A counter backed by a fresh, unregistered cell: increments go
    /// nowhere observable. Handed out to silenced threads (see
    /// [`crate::silence_thread`]) so instrumented code stays oblivious.
    pub(crate) fn detached() -> Counter {
        Counter {
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge (e.g. current temperature).
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Stores a new value.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// A gauge backed by a fresh, unregistered cell; see
    /// [`Counter::detached`].
    pub(crate) fn detached() -> Gauge {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

/// Power-of-two bucket layout shared by all histograms: bucket `i` counts
/// values in `[2^(i-OFFSET), 2^(i-OFFSET+1))`, covering 2⁻²⁰ up to 2²⁰ with
/// dedicated under/overflow buckets and a bucket for exact zeros.
const BUCKET_OFFSET: i32 = 20;
const BUCKET_COUNT: usize = 43; // zero + underflow + 40 spans + overflow

fn bucket_index(value: f64) -> usize {
    if value <= 0.0 {
        return 0; // zero and negative values
    }
    let exponent = value.log2().floor() as i64;
    let shifted = exponent + i64::from(BUCKET_OFFSET);
    if shifted < 0 {
        1 // underflow: (0, 2^-20)
    } else if shifted >= 40 {
        BUCKET_COUNT - 1 // overflow: [2^20, inf)
    } else {
        (shifted + 2) as usize
    }
}

/// Human-readable lower bound of a bucket, used in snapshots.
fn bucket_label(index: usize) -> String {
    match index {
        0 => "<=0".to_string(),
        1 => "<2^-20".to_string(),
        i if i == BUCKET_COUNT - 1 => ">=2^20".to_string(),
        i => format!("2^{}", i as i32 - 2 - BUCKET_OFFSET),
    }
}

/// `[lower, upper)` value range of a bucket. The zero bucket is the
/// degenerate `[0, 0]`, the overflow bucket is unbounded above.
fn bucket_bounds(index: usize) -> (f64, f64) {
    match index {
        0 => (0.0, 0.0),
        1 => (0.0, (-BUCKET_OFFSET as f64).exp2()),
        i if i == BUCKET_COUNT - 1 => ((f64::from(BUCKET_OFFSET)).exp2(), f64::INFINITY),
        i => {
            let exp = i as i32 - 2 - BUCKET_OFFSET;
            (f64::from(exp).exp2(), f64::from(exp + 1).exp2())
        }
    }
}

/// Estimates the `q`-quantile (`0 ≤ q ≤ 1`) from fixed power-of-two bucket
/// counts by linear interpolation inside the covering bucket, clamped into
/// the observed `[min, max]` range. Returns `None` on an empty histogram.
fn quantile_from_buckets(counts: &[u64], q: f64, min: f64, max: f64) -> Option<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 || !q.is_finite() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let target = (q * total as f64).ceil().max(1.0);
    let mut cumulative = 0.0;
    for (index, &n) in counts.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let next = cumulative + n as f64;
        if next >= target {
            let (lo, hi) = bucket_bounds(index);
            let estimate = if hi.is_finite() {
                lo + (hi - lo) * (target - cumulative) / n as f64
            } else {
                // Overflow bucket: the tracked maximum is the best bound.
                max
            };
            return Some(estimate.clamp(min, max));
        }
        cumulative = next;
    }
    Some(max)
}

/// A lock-free histogram over positive reals (e.g. per-iteration train loss).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    /// Sum of recorded values, stored as f64 bits updated via CAS.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    /// A histogram backed by a fresh, unregistered slot; see
    /// [`Counter::detached`].
    pub(crate) fn detached() -> Arc<Histogram> {
        Arc::new(Histogram::new())
    }

    fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + value).to_bits())
            });
        let _ = self
            .min_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (value < f64::from_bits(bits)).then(|| value.to_bits())
            });
        let _ = self
            .max_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (value > f64::from_bits(bits)).then(|| value.to_bits())
            });
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile of the recorded distribution from the
    /// fixed power-of-two buckets (`None` when nothing was recorded). The
    /// estimate interpolates linearly inside the covering bucket, so its
    /// relative error is bounded by the bucket width (a factor of two).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        quantile_from_buckets(&counts, q, min, max)
    }

    fn state(&self, name: &str) -> HistogramState {
        HistogramState {
            name: name.to_string(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_bits: self.sum_bits.load(Ordering::Relaxed),
            min_bits: self.min_bits.load(Ordering::Relaxed),
            max_bits: self.max_bits.load(Ordering::Relaxed),
        }
    }

    fn restore(&self, state: &HistogramState) {
        for (bucket, &n) in self.buckets.iter().zip(&state.buckets) {
            bucket.store(n, Ordering::Relaxed);
        }
        self.count.store(state.count, Ordering::Relaxed);
        self.sum_bits.store(state.sum_bits, Ordering::Relaxed);
        self.min_bits.store(state.min_bits, Ordering::Relaxed);
        self.max_bits.store(state.max_bits, Ordering::Relaxed);
    }

    fn summary(&self, name: &str) -> HistogramSummary {
        let count = self.count();
        let sum = f64::from_bits(self.sum_bits.load(Ordering::Relaxed));
        HistogramSummary {
            name: name.to_string(),
            count,
            sum,
            mean: if count > 0 { sum / count as f64 } else { 0.0 },
            min: (count > 0).then(|| f64::from_bits(self.min_bits.load(Ordering::Relaxed))),
            max: (count > 0).then(|| f64::from_bits(self.max_bits.load(Ordering::Relaxed))),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then(|| (bucket_label(i), n))
                })
                .collect(),
        }
    }
}

/// Aggregate view of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSummary {
    /// Histogram name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Mean observation (0 when empty).
    pub mean: f64,
    /// Smallest observation, when any.
    pub min: Option<f64>,
    /// Largest observation, when any.
    pub max: Option<f64>,
    /// Estimated median, when any observations were recorded.
    pub p50: Option<f64>,
    /// Estimated 95th percentile, when any observations were recorded.
    pub p95: Option<f64>,
    /// Estimated 99th percentile, when any observations were recorded.
    pub p99: Option<f64>,
    /// Non-empty buckets as (lower-bound label, count).
    pub buckets: Vec<(String, u64)>,
}

/// Point-in-time copy of every registered metric.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries by name.
    pub histograms: Vec<HistogramSummary>,
}

impl MetricsSnapshot {
    /// Value of a named counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of a named gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The snapshot as a JSON object (without the journal's `type` tag).
    pub fn to_json(&self) -> Value {
        let counters = Value::Map(
            self.counters
                .iter()
                .map(|(name, v)| (name.clone(), Value::U64(*v)))
                .collect(),
        );
        let gauges = Value::Map(
            self.gauges
                .iter()
                .map(|(name, v)| (name.clone(), Value::F64(*v)))
                .collect(),
        );
        let histograms = Value::Map(
            self.histograms
                .iter()
                .map(|h| {
                    let mut entries = vec![
                        ("count".to_string(), Value::U64(h.count)),
                        ("sum".to_string(), Value::F64(h.sum)),
                        ("mean".to_string(), Value::F64(h.mean)),
                    ];
                    if let Some(min) = h.min {
                        entries.push(("min".to_string(), Value::F64(min)));
                    }
                    if let Some(max) = h.max {
                        entries.push(("max".to_string(), Value::F64(max)));
                    }
                    for (key, quantile) in [("p50", h.p50), ("p95", h.p95), ("p99", h.p99)] {
                        if let Some(v) = quantile {
                            entries.push((key.to_string(), Value::F64(v)));
                        }
                    }
                    entries.push((
                        "buckets".to_string(),
                        Value::Map(
                            h.buckets
                                .iter()
                                .map(|(label, n)| (label.clone(), Value::U64(*n)))
                                .collect(),
                        ),
                    ));
                    (h.name.clone(), Value::Map(entries))
                })
                .collect(),
        );
        Value::Map(vec![
            ("counters".to_string(), counters),
            ("gauges".to_string(), gauges),
            ("histograms".to_string(), histograms),
        ])
    }
}

/// Raw, lossless capture of one histogram's internals (full bucket array
/// plus exact `f64` bit patterns), unlike the human-oriented
/// [`HistogramSummary`] which drops empty buckets and derives quantiles.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramState {
    /// Histogram name.
    pub name: String,
    /// Every bucket count, including empty buckets.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations as raw `f64` bits.
    pub sum_bits: u64,
    /// Smallest observation as raw `f64` bits (`+inf` when empty).
    pub min_bits: u64,
    /// Largest observation as raw `f64` bits (`-inf` when empty).
    pub max_bits: u64,
}

/// Raw capture of every registered metric, suitable for checkpointing:
/// restoring a state into a fresh registry reproduces the exact values —
/// bit for bit — that a continuing process would have carried.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsState {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name as raw `f64` bits.
    pub gauges: Vec<(String, u64)>,
    /// Raw histogram states by name.
    pub histograms: Vec<HistogramState>,
}

/// Name-to-slot registry; one per process (held by the global telemetry).
///
/// Keys are owned strings so dynamically composed names (e.g. per-span
/// duration histograms) register as easily as the `names` constants.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// Resolves (registering on first use) a counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = crate::recover(self.counters.lock());
        Counter {
            cell: Arc::clone(map.entry(name.to_string()).or_default()),
        }
    }

    /// Resolves (registering on first use) a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = crate::recover(self.gauges.lock());
        Gauge {
            bits: Arc::clone(
                map.entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits()))),
            ),
        }
    }

    /// Resolves (registering on first use) a histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = crate::recover(self.histograms.lock());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Captures the raw state of every registered metric for a checkpoint.
    pub fn state(&self) -> MetricsState {
        let counters = crate::recover(self.counters.lock())
            .iter()
            .map(|(name, cell)| (name.to_string(), cell.load(Ordering::Relaxed)))
            .collect();
        let gauges = crate::recover(self.gauges.lock())
            .iter()
            .map(|(name, bits)| (name.to_string(), bits.load(Ordering::Relaxed)))
            .collect();
        let histograms = crate::recover(self.histograms.lock())
            .iter()
            .map(|(name, histogram)| histogram.state(name))
            .collect();
        MetricsState {
            counters,
            gauges,
            histograms,
        }
    }

    /// Restores a [`MetricsState`] capture, overwriting (and registering if
    /// needed) every metric named in it. Metrics the state does not mention
    /// are left untouched — a restore is expected to happen at process
    /// start, before anything but the restored run has recorded data.
    pub fn restore_state(&self, state: &MetricsState) {
        for (name, value) in &state.counters {
            let mut map = crate::recover(self.counters.lock());
            map.entry(name.clone())
                .or_default()
                .store(*value, Ordering::Relaxed);
        }
        for (name, bits) in &state.gauges {
            let mut map = crate::recover(self.gauges.lock());
            map.entry(name.clone())
                .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits())))
                .store(*bits, Ordering::Relaxed);
        }
        for histogram_state in &state.histograms {
            let histogram = self.histogram(&histogram_state.name);
            histogram.restore(histogram_state);
        }
    }

    /// Copies every metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = crate::recover(self.counters.lock())
            .iter()
            .map(|(name, cell)| (name.to_string(), cell.load(Ordering::Relaxed)))
            .collect();
        let gauges = crate::recover(self.gauges.lock())
            .iter()
            .map(|(name, bits)| {
                (
                    name.to_string(),
                    f64::from_bits(bits.load(Ordering::Relaxed)),
                )
            })
            .collect();
        let histograms = crate::recover(self.histograms.lock())
            .iter()
            .map(|(name, histogram)| histogram.summary(name))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_name() {
        let registry = MetricsRegistry::default();
        registry.counter("a").add(3);
        registry.counter("a").incr();
        registry.counter("b").incr();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("a"), Some(4));
        assert_eq!(snap.counter("b"), Some(1));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn gauges_keep_last_value() {
        let registry = MetricsRegistry::default();
        let gauge = registry.gauge("temp");
        gauge.set(1.5);
        gauge.set(2.25);
        assert_eq!(registry.snapshot().gauge("temp"), Some(2.25));
    }

    #[test]
    fn histogram_bucketing_is_power_of_two() {
        // Exact powers of two land at the lower edge of their bucket and
        // values just below land one bucket down.
        assert_eq!(bucket_index(1.0), bucket_index(1.5));
        assert_ne!(bucket_index(1.0), bucket_index(0.99));
        assert_eq!(bucket_index(2.0), bucket_index(3.999));
        assert_ne!(bucket_index(2.0), bucket_index(4.0));
        // Extremes route to the sentinel buckets.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(1e-12), 1);
        assert_eq!(bucket_index(1e12), BUCKET_COUNT - 1);
    }

    #[test]
    fn histogram_summary_statistics() {
        let registry = MetricsRegistry::default();
        let histogram = registry.histogram("loss");
        for v in [0.5, 0.25, 1.0, 4.0] {
            histogram.record(v);
        }
        histogram.record(f64::NAN); // ignored
        let snap = registry.snapshot();
        let summary = &snap.histograms[0];
        assert_eq!(summary.count, 4);
        assert!((summary.sum - 5.75).abs() < 1e-12);
        assert_eq!(summary.min, Some(0.25));
        assert_eq!(summary.max, Some(4.0));
        let total: u64 = summary.buckets.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn quantiles_track_a_uniform_distribution() {
        let registry = MetricsRegistry::default();
        let histogram = registry.histogram("latency");
        for v in 1..=1000 {
            histogram.record(f64::from(v));
        }
        // Linear interpolation inside power-of-two buckets keeps the
        // estimate well within one bucket width of the true quantile.
        let p50 = histogram.quantile(0.50).unwrap();
        let p95 = histogram.quantile(0.95).unwrap();
        let p99 = histogram.quantile(0.99).unwrap();
        assert!((p50 - 500.0).abs() < 60.0, "p50 estimate {p50}");
        assert!((p95 - 950.0).abs() < 80.0, "p95 estimate {p95}");
        assert!((p99 - 990.0).abs() < 80.0, "p99 estimate {p99}");
        assert!(p50 <= p95 && p95 <= p99, "quantiles must be monotone");
        assert!(p99 <= 1000.0, "estimates clamp to the observed maximum");
        let summary = &registry.snapshot().histograms[0];
        assert_eq!(summary.p50, Some(p50));
        assert_eq!(summary.p99, Some(p99));
    }

    #[test]
    fn quantiles_of_a_constant_distribution_are_exact() {
        let registry = MetricsRegistry::default();
        let histogram = registry.histogram("constant");
        for _ in 0..100 {
            histogram.record(7.0);
        }
        // All mass in one bucket; clamping to [min, max] pins the estimate.
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(histogram.quantile(q), Some(7.0));
        }
    }

    #[test]
    fn quantiles_of_a_heavy_tail_reach_the_tail_bucket() {
        let registry = MetricsRegistry::default();
        let histogram = registry.histogram("tail");
        for _ in 0..99 {
            histogram.record(1.0);
        }
        histogram.record(1024.0);
        let p50 = histogram.quantile(0.5).unwrap();
        let p99 = histogram.quantile(0.99).unwrap();
        assert!(p50 < 2.0, "median stays in the body, got {p50}");
        assert!(
            histogram.quantile(1.0).unwrap() >= 1024.0,
            "max quantile reaches the outlier"
        );
        assert!(p99 <= 1024.0);
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let registry = MetricsRegistry::default();
        let histogram = registry.histogram("empty");
        assert_eq!(histogram.quantile(0.5), None);
        let summary = &registry.snapshot().histograms[0];
        assert_eq!(summary.p50, None);
        assert_eq!(summary.p99, None);
    }

    #[test]
    fn state_restore_is_lossless_across_registries() {
        let source = MetricsRegistry::default();
        source.counter("calls").add(41);
        source.gauge("temp").set(2.5);
        let h = source.histogram("loss");
        for v in [0.25, 0.5, 1.0, 1e-30, 1e30] {
            h.record(v);
        }
        let state = source.state();

        let target = MetricsRegistry::default();
        target.counter("calls").add(999); // overwritten by restore
        target.restore_state(&state);
        assert_eq!(target.state(), state, "restore must be bit-exact");
        // The restored histogram keeps producing identical statistics.
        assert_eq!(target.snapshot(), source.snapshot());
        target.histogram("loss").record(0.75);
        source.histogram("loss").record(0.75);
        assert_eq!(target.snapshot(), source.snapshot());
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let registry = MetricsRegistry::default();
        registry.counter("litho.oracle.calls").add(17);
        registry.gauge("temperature").set(1.75);
        registry.histogram("loss").record(0.125);
        let json = registry.snapshot().to_json();
        let text = serde_json::to_string(&json).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(
            back.get("counters")
                .unwrap()
                .get("litho.oracle.calls")
                .unwrap()
                .as_u64(),
            Some(17)
        );
        assert_eq!(
            back.get("gauges")
                .unwrap()
                .get("temperature")
                .unwrap()
                .as_f64(),
            Some(1.75)
        );
        assert_eq!(
            back.get("histograms")
                .unwrap()
                .get("loss")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }
}
