//! Well-known metric names shared across the workspace.
//!
//! Counters are resolved by `&'static str` name ([`crate::counter`]); these
//! constants keep the producers (litho oracle wrappers, framework) and the
//! consumers (journal assertions, experiment binaries) agreeing on spelling.

/// Billable lithography simulations: cache-miss oracle queries plus
/// cache-bypassing re-simulations (quorum votes, false-alarm verification).
/// A journal snapshot of this counter is the paper's `Litho#` (Eq. 2).
pub const ORACLE_CALLS: &str = "litho.oracle.calls";

/// Failed oracle attempts that were retried (transient/timeout/corruption
/// faults absorbed by a retry policy). Not billable: a failed simulation
/// job returns no label.
pub const ORACLE_RETRIES: &str = "litho.oracle.retries";

/// Queries abandoned after exhausting the retry budget or hitting a
/// permanent fault; the framework returns such clips to the unlabeled pool.
pub const ORACLE_GIVEUPS: &str = "litho.oracle.giveups";

/// Labels cast as quorum votes when re-simulation voting is enabled.
pub const ORACLE_QUORUM_VOTES: &str = "litho.oracle.quorum_votes";

/// Faults injected by a `FaultyOracle` (tests and robustness experiments).
pub const ORACLE_FAULTS_INJECTED: &str = "litho.oracle.faults_injected";

/// Histogram of wall-clock seconds per billable lithography simulation
/// (cache misses and re-simulations); its p50/p95/p99 are the oracle's
/// tail-latency series in `/metrics` and `lithohd-report`.
pub const ORACLE_SECONDS: &str = "litho.oracle.seconds";

/// Histogram name for one span's wall-clock seconds: `span.<name>.seconds`
/// (e.g. `span.nn.train.seconds`). Every closed [`crate::span`] records
/// into it, so `/metrics` exposes per-stage tail latencies as
/// `span_<name>_seconds_p99` without journal post-processing.
pub fn span_seconds(span: &str) -> String {
    format!("span.{span}.seconds")
}
