//! Well-known metric names shared across the workspace.
//!
//! Counters are resolved by `&'static str` name ([`crate::counter`]); these
//! constants keep the producers (litho oracle wrappers, framework) and the
//! consumers (journal assertions, experiment binaries) agreeing on spelling.

/// Billable lithography simulations: cache-miss oracle queries plus
/// cache-bypassing re-simulations (quorum votes, false-alarm verification).
/// A journal snapshot of this counter is the paper's `Litho#` (Eq. 2).
pub const ORACLE_CALLS: &str = "litho.oracle.calls";

/// Failed oracle attempts that were retried (transient/timeout/corruption
/// faults absorbed by a retry policy). Not billable: a failed simulation
/// job returns no label.
pub const ORACLE_RETRIES: &str = "litho.oracle.retries";

/// Queries abandoned after exhausting the retry budget or hitting a
/// permanent fault; the framework returns such clips to the unlabeled pool.
pub const ORACLE_GIVEUPS: &str = "litho.oracle.giveups";

/// Labels cast as quorum votes when re-simulation voting is enabled.
pub const ORACLE_QUORUM_VOTES: &str = "litho.oracle.quorum_votes";

/// Faults injected by a `FaultyOracle` (tests and robustness experiments).
pub const ORACLE_FAULTS_INJECTED: &str = "litho.oracle.faults_injected";

/// Histogram of wall-clock seconds per billable lithography simulation
/// (cache misses and re-simulations); its p50/p95/p99 are the oracle's
/// tail-latency series in `/metrics` and `lithohd-report`.
pub const ORACLE_SECONDS: &str = "litho.oracle.seconds";

/// Span over one full active-sampling run (`PSHDFramework::run`).
pub const SPAN_RUN: &str = "run";

/// Span over one sampling iteration inside a run.
pub const SPAN_ITERATION: &str = "iteration";

/// Span over one selector query (scoring + batch selection).
pub const SPAN_SELECT: &str = "select";

/// Span over the final full-pool detection pass.
pub const SPAN_DETECT: &str = "detect";

/// Span over one benchmark-layout generation (`GeneratedBenchmark`).
pub const SPAN_GENERATE: &str = "generate";

/// Span over one neural-network training session.
pub const SPAN_NN_TRAIN: &str = "nn.train";

/// Epochs completed across all training sessions in the process.
pub const NN_TRAIN_EPOCHS: &str = "nn.train.epochs";

/// Histogram of per-epoch mean training loss.
pub const NN_TRAIN_LOSS: &str = "nn.train.loss";

/// Span over one pattern-matching baseline run.
pub const SPAN_PM_RUN: &str = "pm.run";

/// Span over one temperature-calibration fit (Eq. 5).
pub const SPAN_CALIBRATE: &str = "calibrate";

/// The fitted softmax temperature `T` after the latest calibration.
pub const CALIBRATION_TEMPERATURE: &str = "calibration.temperature";

/// Unlabeled clips scored across all selector queries.
pub const SELECTOR_QUERY_SIZE: &str = "selector.query.size";

/// Selector batches drawn (one per sampling iteration).
pub const SELECTOR_BATCHES: &str = "selector.batches";

/// Span over one Gaussian-mixture fit (model-count sweep included).
pub const SPAN_GMM_FIT: &str = "gmm.fit";

/// EM iterations executed across all GMM fits.
pub const GMM_EM_ITERATIONS: &str = "gmm.em.iterations";

/// Checkpoints committed by a `CheckpointStore` (atomic rename completed).
pub const CHECKPOINT_SAVES: &str = "checkpoint.saves";

/// Total bytes of committed checkpoint payloads.
pub const CHECKPOINT_BYTES: &str = "checkpoint.bytes";

/// Runs restored from a checkpoint (`--resume`).
pub const CHECKPOINT_RESUMES: &str = "checkpoint.resumes";

/// Torn or corrupt checkpoints skipped while falling back to the newest
/// valid one during recovery.
pub const CHECKPOINT_CORRUPT_SKIPPED: &str = "checkpoint.corrupt_skipped";

/// Labelling batches fanned out across shard workers by the coordinator.
pub const SHARD_BATCHES: &str = "shard.batches";

/// Clips labelled through shard workers (merged outcomes, before any
/// salvage double-counting is collapsed).
pub const SHARD_CLIPS: &str = "shard.clips";

/// Shard workers whose thread died (panicked) before finishing its
/// sub-batch; the coordinator salvages their committed outcomes.
pub const SHARD_WORKERS_DEAD: &str = "shard.workers_dead";

/// Shard workers that exceeded the coordinator's per-shard deadline and
/// were abandoned (their thread is detached; committed outcomes salvage).
pub const SHARD_WORKERS_HUNG: &str = "shard.workers_hung";

/// Clip outcomes recovered from a dead or hung worker's on-disk
/// checkpoint commits instead of being recomputed.
pub const SHARD_OUTCOMES_SALVAGED: &str = "shard.outcomes_salvaged";

/// Orphaned clips reassigned from a dead or hung worker to a recovery
/// round on surviving workers.
pub const SHARD_CLIPS_REASSIGNED: &str = "shard.clips_reassigned";

/// Histogram of wall-clock seconds per sharded labelling batch (fan-out
/// through merge), the shard-scaling latency series.
pub const SHARD_BATCH_SECONDS: &str = "shard.batch.seconds";

/// Span over one shard worker's whole sub-batch, recorded on the worker
/// thread into its per-shard trace buffer (workers are telemetry-silenced,
/// so this span reaches traces but not journals).
pub const SPAN_SHARD_WORKER: &str = "shard.worker";

/// Invocations of the conv2d forward kernel (`hotspot-nn`), the inner MAC
/// nest of ROADMAP item 1. Like every `kernel.*` counter it is withheld
/// from canonical journals: call counts vary with sharding and recovery.
pub const KERNEL_CONV2D_CALLS: &str = "kernel.conv2d.calls";

/// Output elements produced by the conv2d forward kernel.
pub const KERNEL_CONV2D_ELEMENTS: &str = "kernel.conv2d.elements";

/// Floating-point operations (multiply + add counted separately) executed
/// by the conv2d forward kernel.
pub const KERNEL_CONV2D_FLOPS: &str = "kernel.conv2d.flops";

/// Bytes of input, weight, and output traffic through the conv2d kernel.
pub const KERNEL_CONV2D_BYTES: &str = "kernel.conv2d.bytes";

/// Invocations of the block-DCT kernel (`hotspot-features`), one per
/// transformed block.
pub const KERNEL_DCT_CALLS: &str = "kernel.dct.calls";

/// Coefficients produced by the block-DCT kernel (n² per block).
pub const KERNEL_DCT_ELEMENTS: &str = "kernel.dct.elements";

/// Floating-point operations executed by the block-DCT kernel (two n³
/// matrix passes per block).
pub const KERNEL_DCT_FLOPS: &str = "kernel.dct.flops";

/// Bytes moved through the block-DCT kernel.
pub const KERNEL_DCT_BYTES: &str = "kernel.dct.bytes";

/// GMM EM iterations counted as kernel calls (`hotspot-gmm`).
pub const KERNEL_GMM_EM_CALLS: &str = "kernel.gmm_em.calls";

/// Responsibility-matrix entries evaluated by GMM EM
/// (iterations × samples × components).
pub const KERNEL_GMM_EM_ELEMENTS: &str = "kernel.gmm_em.elements";

/// Floating-point operations executed by the GMM EM kernel.
pub const KERNEL_GMM_EM_FLOPS: &str = "kernel.gmm_em.flops";

/// Bytes moved through the GMM EM kernel.
pub const KERNEL_GMM_EM_BYTES: &str = "kernel.gmm_em.bytes";

/// Invocations of the pairwise-cosine diversity kernel (`hotspot-core`).
pub const KERNEL_DIVERSITY_CALLS: &str = "kernel.diversity.calls";

/// Embedding pairs scored by the diversity kernel (n·(n−1)/2 per call).
pub const KERNEL_DIVERSITY_ELEMENTS: &str = "kernel.diversity.elements";

/// Floating-point operations executed by the diversity kernel.
pub const KERNEL_DIVERSITY_FLOPS: &str = "kernel.diversity.flops";

/// Bytes moved through the diversity kernel.
pub const KERNEL_DIVERSITY_BYTES: &str = "kernel.diversity.bytes";

/// Invocations of the separable aerial-image convolution (`hotspot-litho`).
pub const KERNEL_AERIAL_CALLS: &str = "kernel.aerial.calls";

/// Pixels produced by the aerial convolution kernel per pass pair.
pub const KERNEL_AERIAL_ELEMENTS: &str = "kernel.aerial.elements";

/// Floating-point operations executed by the aerial convolution kernel.
pub const KERNEL_AERIAL_FLOPS: &str = "kernel.aerial.flops";

/// Bytes moved through the aerial convolution kernel.
pub const KERNEL_AERIAL_BYTES: &str = "kernel.aerial.bytes";

/// Requests accepted by the `hotspot-serve` HTTP loop (every route).
/// `serve.*` metrics live in the serving process's own registry and are
/// operational telemetry, never canonical run output — the whole prefix is
/// withheld from canonical journals.
pub const SERVE_HTTP_REQUESTS: &str = "serve.http.requests";

/// Error responses (4xx/5xx) produced by the serving routes.
pub const SERVE_HTTP_ERRORS: &str = "serve.http.errors";

/// Scoring requests admitted into the micro-batch queue.
pub const SERVE_SCORE_REQUESTS: &str = "serve.score.requests";

/// Clips scored through the micro-batcher (rows, not requests).
pub const SERVE_SCORE_CLIPS: &str = "serve.score.clips";

/// Histogram of wall-clock seconds per scoring request (admission through
/// response), the serving latency series behind `/metrics` p50/p95/p99.
pub const SERVE_SCORE_SECONDS: &str = "serve.score.seconds";

/// Micro-batch flushes executed (one NN forward pass each).
pub const SERVE_BATCH_FLUSHES: &str = "serve.batch.flushes";

/// Clips coalesced into flushed micro-batches.
pub const SERVE_BATCH_CLIPS: &str = "serve.batch.clips";

/// Rows in the most recent flushed micro-batch (batch-fill gauge).
pub const SERVE_BATCH_FILL: &str = "serve.batch.fill";

/// Scoring requests rejected with `429` because the bounded batch queue was
/// full (backpressure).
pub const SERVE_BACKPRESSURE_REJECTED: &str = "serve.backpressure.rejected";

/// Scoring requests shed with `503` because the in-flight cap was exceeded
/// (load-shedding, before the queue is even tried).
pub const SERVE_LOAD_SHED: &str = "serve.load.shed";

/// Labelling-campaign sessions created via `POST /session`.
pub const SERVE_SESSIONS_CREATED: &str = "serve.session.created";

/// Campaign iterations advanced via `POST /session/<id>/step`.
pub const SERVE_SESSION_STEPS: &str = "serve.session.steps";

/// Session steps that restored state from a `CheckpointStore` commit (every
/// step after the first, by construction — including steps on a restarted
/// server process).
pub const SERVE_SESSION_RESUMES: &str = "serve.session.resumes";

/// Requests issued by the `lithohd-loadgen` load generator.
pub const LOADGEN_REQUESTS: &str = "loadgen.requests";

/// Load-generator requests that failed (connect error, non-2xx status).
pub const LOADGEN_ERRORS: &str = "loadgen.errors";

/// Histogram of wall-clock seconds per load-generator request.
pub const LOADGEN_LATENCY_SECONDS: &str = "loadgen.latency.seconds";

/// Journal event message for one completed sampling iteration. Carries the
/// per-iteration trajectory fields (accuracy, ECE, temperature, train loss)
/// consumed by `lithohd-report`.
pub const EVENT_ITERATION_COMPLETE: &str = "iteration complete";

/// Journal event message for one finished active-sampling run (final
/// metrics snapshot).
pub const EVENT_RUN_COMPLETE: &str = "run complete";

/// Journal event message emitted once per clip picked by the selector in a
/// sampling iteration, carrying the clip id with its uncertainty and
/// diversity scores so selection maps can be rendered offline.
pub const EVENT_CLIP_SELECTED: &str = "clip selected";

/// Journal event message emitted once per occupied reliability-diagram bin
/// at each calibration measurement (before/during/after a run), carrying
/// per-bin confidence, accuracy, and count.
pub const EVENT_CALIBRATION_BIN: &str = "calibration bin";

/// Journal event message emitted when a benchmark layout is generated,
/// carrying the spec (tech, counts, rates) and seed so clip geometry can be
/// re-synthesized deterministically by offline renderers.
pub const EVENT_BENCHMARK_READY: &str = "benchmark ready";

/// Journal event message for one sharded labelling batch merged back into
/// the master oracle (worker count, clip count, failure count). Emitted on
/// the `shard.coordinator` target, which canonical journals withhold so the
/// bytes stay worker-count invariant.
pub const EVENT_SHARD_BATCH_MERGED: &str = "shard batch merged";

/// Journal event message for a dead or hung shard worker detected by the
/// coordinator (shard id, salvaged/orphaned counts).
pub const EVENT_SHARD_WORKER_LOST: &str = "shard worker lost";

/// Journal event message for orphaned clips reassigned to a recovery round
/// after a worker loss.
pub const EVENT_SHARD_REASSIGNED: &str = "shard clips reassigned";

/// Every registered name, for registry-integrity tests and tooling.
pub const ALL: &[&str] = &[
    ORACLE_CALLS,
    ORACLE_RETRIES,
    ORACLE_GIVEUPS,
    ORACLE_QUORUM_VOTES,
    ORACLE_FAULTS_INJECTED,
    ORACLE_SECONDS,
    SPAN_RUN,
    SPAN_ITERATION,
    SPAN_SELECT,
    SPAN_DETECT,
    SPAN_GENERATE,
    SPAN_NN_TRAIN,
    NN_TRAIN_EPOCHS,
    NN_TRAIN_LOSS,
    SPAN_PM_RUN,
    SPAN_CALIBRATE,
    CALIBRATION_TEMPERATURE,
    SELECTOR_QUERY_SIZE,
    SELECTOR_BATCHES,
    SPAN_GMM_FIT,
    GMM_EM_ITERATIONS,
    CHECKPOINT_SAVES,
    CHECKPOINT_BYTES,
    CHECKPOINT_RESUMES,
    CHECKPOINT_CORRUPT_SKIPPED,
    SHARD_BATCHES,
    SHARD_CLIPS,
    SHARD_WORKERS_DEAD,
    SHARD_WORKERS_HUNG,
    SHARD_OUTCOMES_SALVAGED,
    SHARD_CLIPS_REASSIGNED,
    SHARD_BATCH_SECONDS,
    SPAN_SHARD_WORKER,
    KERNEL_CONV2D_CALLS,
    KERNEL_CONV2D_ELEMENTS,
    KERNEL_CONV2D_FLOPS,
    KERNEL_CONV2D_BYTES,
    KERNEL_DCT_CALLS,
    KERNEL_DCT_ELEMENTS,
    KERNEL_DCT_FLOPS,
    KERNEL_DCT_BYTES,
    KERNEL_GMM_EM_CALLS,
    KERNEL_GMM_EM_ELEMENTS,
    KERNEL_GMM_EM_FLOPS,
    KERNEL_GMM_EM_BYTES,
    KERNEL_DIVERSITY_CALLS,
    KERNEL_DIVERSITY_ELEMENTS,
    KERNEL_DIVERSITY_FLOPS,
    KERNEL_DIVERSITY_BYTES,
    KERNEL_AERIAL_CALLS,
    KERNEL_AERIAL_ELEMENTS,
    KERNEL_AERIAL_FLOPS,
    KERNEL_AERIAL_BYTES,
    SERVE_HTTP_REQUESTS,
    SERVE_HTTP_ERRORS,
    SERVE_SCORE_REQUESTS,
    SERVE_SCORE_CLIPS,
    SERVE_SCORE_SECONDS,
    SERVE_BATCH_FLUSHES,
    SERVE_BATCH_CLIPS,
    SERVE_BATCH_FILL,
    SERVE_BACKPRESSURE_REJECTED,
    SERVE_LOAD_SHED,
    SERVE_SESSIONS_CREATED,
    SERVE_SESSION_STEPS,
    SERVE_SESSION_RESUMES,
    LOADGEN_REQUESTS,
    LOADGEN_ERRORS,
    LOADGEN_LATENCY_SECONDS,
    EVENT_ITERATION_COMPLETE,
    EVENT_RUN_COMPLETE,
    EVENT_CLIP_SELECTED,
    EVENT_CALIBRATION_BIN,
    EVENT_BENCHMARK_READY,
    EVENT_SHARD_BATCH_MERGED,
    EVENT_SHARD_WORKER_LOST,
    EVENT_SHARD_REASSIGNED,
];

/// Histogram name for one span's wall-clock seconds: `span.<name>.seconds`
/// (e.g. `span.nn.train.seconds`). Every closed [`crate::span`] records
/// into it, so `/metrics` exposes per-stage tail latencies as
/// `span_<name>_seconds_p99` without journal post-processing.
pub fn span_seconds(span: &str) -> String {
    format!("span.{span}.seconds")
}

// ---------------------------------------------------------------------------
// Canonical-mode withhold registry.
//
// `--canonical-journal` promises byte-identical journals for identically
// seeded runs under any worker count. Everything that could differ — wall
// clocks, checkpoint/shard provenance, kernel call counts — must be withheld
// from canonical journals. The lists below are the single machine-readable
// source of truth: the `JsonlSink` enforces them dynamically, and the
// `canonical-purity` rule of `lithohd-lint` parses this file to verify
// statically that every wall-clock-shaped name is covered.
// ---------------------------------------------------------------------------

/// Event fields withheld in canonical mode: wall-clock durations measured
/// by instrumented code, never derived from the seeded computation. Any
/// event field key starting `elapsed_` or `duration_` must appear here.
pub const CANONICAL_WITHHELD_FIELDS: &[&str] = &["elapsed_us", "elapsed_ms", "duration_us"];

/// Event targets withheld entirely in canonical mode: `profile` events are
/// pure wall-clock measurements, `store.checkpoint` events are operational
/// provenance (saves, resumes, corruption fallbacks) that differs between
/// an interrupted-and-resumed run and an uninterrupted one without changing
/// the run's semantics, and `shard.coordinator` events carry worker-count
/// and fault-recovery provenance that must not break the byte-identity
/// oracle across different `--workers` values or chaos injections.
pub const CANONICAL_WITHHELD_TARGETS: &[&str] =
    &["profile", "store.checkpoint", "shard.coordinator"];

/// Metric-name prefixes withheld from canonical snapshots for the same
/// reason as the withheld targets: checkpoint save/resume, shard
/// coordination, per-kernel performance counters, and serving/load-test
/// traffic are provenance, not run output (kernel call counts vary with
/// sharding and fault recovery; serve/loadgen counters vary with request
/// traffic, which must never perturb a session's canonical journal).
pub const CANONICAL_WITHHELD_METRIC_PREFIXES: &[&str] =
    &["checkpoint.", "shard.", "kernel.", "serve.", "loadgen."];

/// Metric-name suffixes withheld from canonical snapshots: every latency
/// histogram ends in `.seconds` (see [`span_seconds`]), and wall-clock
/// seconds never survive into a canonical journal.
pub const CANONICAL_WITHHELD_METRIC_SUFFIXES: &[&str] = &[".seconds"];

/// Whether a metric name is withheld from canonical journal snapshots.
/// This is the exact predicate `JsonlSink` applies in canonical mode; the
/// static `canonical-purity` lint must agree with it on every registered
/// name.
pub fn is_withheld_canonical_metric(name: &str) -> bool {
    CANONICAL_WITHHELD_METRIC_PREFIXES
        .iter()
        .any(|prefix| name.starts_with(prefix))
        || CANONICAL_WITHHELD_METRIC_SUFFIXES
            .iter()
            .any(|suffix| name.ends_with(suffix))
}

/// Whether an event field key is withheld from canonical journal records.
pub fn is_withheld_canonical_field(key: &str) -> bool {
    CANONICAL_WITHHELD_FIELDS.contains(&key)
}

/// Whether an event target is withheld entirely from canonical journals.
pub fn is_withheld_canonical_target(target: &str) -> bool {
    CANONICAL_WITHHELD_TARGETS.contains(&target)
}

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn registered_names_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for name in ALL {
            assert!(seen.insert(*name), "duplicate telemetry name: {name}");
        }
        assert_eq!(seen.len(), ALL.len());
    }
}
