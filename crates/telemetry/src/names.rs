//! Well-known metric names shared across the workspace.
//!
//! Counters are resolved by `&'static str` name ([`crate::counter`]); these
//! constants keep the producers (litho oracle wrappers, framework) and the
//! consumers (journal assertions, experiment binaries) agreeing on spelling.

/// Billable lithography simulations: cache-miss oracle queries plus
/// cache-bypassing re-simulations (quorum votes, false-alarm verification).
/// A journal snapshot of this counter is the paper's `Litho#` (Eq. 2).
pub const ORACLE_CALLS: &str = "litho.oracle.calls";

/// Failed oracle attempts that were retried (transient/timeout/corruption
/// faults absorbed by a retry policy). Not billable: a failed simulation
/// job returns no label.
pub const ORACLE_RETRIES: &str = "litho.oracle.retries";

/// Queries abandoned after exhausting the retry budget or hitting a
/// permanent fault; the framework returns such clips to the unlabeled pool.
pub const ORACLE_GIVEUPS: &str = "litho.oracle.giveups";

/// Labels cast as quorum votes when re-simulation voting is enabled.
pub const ORACLE_QUORUM_VOTES: &str = "litho.oracle.quorum_votes";

/// Faults injected by a `FaultyOracle` (tests and robustness experiments).
pub const ORACLE_FAULTS_INJECTED: &str = "litho.oracle.faults_injected";
