//! Event severity levels and the `LITHOHD_LOG` environment filter.

use std::fmt;
use std::str::FromStr;

/// Severity of a telemetry event, ordered from most to least verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Fine-grained tracing (per-sample, per-EM-step detail).
    Trace,
    /// Diagnostic detail (per-epoch losses, selector internals).
    Debug,
    /// Normal progress reporting (per-iteration summaries).
    Info,
    /// Suspicious but recoverable conditions (accounting drift, fallbacks).
    Warn,
    /// Failures the run can surface but not repair.
    Error,
}

impl Level {
    /// Lower-case name, as used in `LITHOHD_LOG` and journal lines.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when a level name is not recognised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLevelError(pub String);

impl fmt::Display for ParseLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown log level `{}`", self.0)
    }
}

impl std::error::Error for ParseLevelError {}

impl FromStr for Level {
    type Err = ParseLevelError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        match text.trim().to_ascii_lowercase().as_str() {
            "trace" => Ok(Level::Trace),
            "debug" => Ok(Level::Debug),
            "info" => Ok(Level::Info),
            "warn" | "warning" => Ok(Level::Warn),
            "error" => Ok(Level::Error),
            "off" | "none" => Ok(Level::Error), // treated as "errors only"
            other => Err(ParseLevelError(other.to_string())),
        }
    }
}

/// One `target=level` directive of an [`EnvFilter`].
#[derive(Debug, Clone, PartialEq, Eq)]
struct Directive {
    /// Target prefix the directive applies to (`gmm`, `core.framework`, …).
    prefix: String,
    level: Level,
}

/// Filter in the style of `env_logger`/`tracing`'s `EnvFilter`, parsed from
/// `LITHOHD_LOG`: a comma-separated list of `level` (the default) and
/// `target=level` directives, e.g. `info,gmm=trace,nn.train=debug`.
/// The most specific (longest) matching prefix wins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvFilter {
    default: Level,
    directives: Vec<Directive>,
}

impl Default for EnvFilter {
    fn default() -> Self {
        EnvFilter {
            default: Level::Info,
            directives: Vec::new(),
        }
    }
}

impl EnvFilter {
    /// A filter passing events at `level` and above for every target.
    pub fn at(level: Level) -> Self {
        EnvFilter {
            default: level,
            directives: Vec::new(),
        }
    }

    /// Parses a filter string; unknown directives are reported as errors.
    pub fn parse(text: &str) -> Result<Self, ParseLevelError> {
        let mut filter = EnvFilter::default();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                None => filter.default = part.parse()?,
                Some((target, level)) => filter.directives.push(Directive {
                    prefix: target.trim().to_string(),
                    level: level.parse()?,
                }),
            }
        }
        // Longest prefixes first so the first match is the most specific.
        filter
            .directives
            .sort_by_key(|d| std::cmp::Reverse(d.prefix.len()));
        Ok(filter)
    }

    /// Builds the filter from the `LITHOHD_LOG` environment variable,
    /// falling back to `info` on absence and to `warn`-everything on a
    /// malformed value (a broken filter should not kill a run).
    pub fn from_env() -> Self {
        match std::env::var("LITHOHD_LOG") {
            Ok(value) => EnvFilter::parse(&value).unwrap_or_else(|_| EnvFilter::at(Level::Warn)),
            Err(_) => EnvFilter::default(),
        }
    }

    /// Whether an event at `level` for `target` passes the filter.
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        for directive in &self.directives {
            if target.starts_with(directive.prefix.as_str()) {
                return level >= directive.level;
            }
        }
        level >= self.default
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!("trace".parse::<Level>().unwrap(), Level::Trace);
        assert_eq!("WARN".parse::<Level>().unwrap(), Level::Warn);
        assert_eq!(" Error ".parse::<Level>().unwrap(), Level::Error);
        assert!("loud".parse::<Level>().is_err());
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Info < Level::Error);
    }

    #[test]
    fn bare_level_sets_default() {
        let filter = EnvFilter::parse("debug").unwrap();
        assert!(filter.enabled(Level::Debug, "anything"));
        assert!(!filter.enabled(Level::Trace, "anything"));
    }

    #[test]
    fn directives_override_default_per_target() {
        let filter = EnvFilter::parse("warn,gmm=trace,core.framework=info").unwrap();
        assert!(filter.enabled(Level::Trace, "gmm.em"));
        assert!(filter.enabled(Level::Info, "core.framework"));
        assert!(!filter.enabled(Level::Info, "core.selector"));
        assert!(filter.enabled(Level::Warn, "core.selector"));
    }

    #[test]
    fn longest_prefix_wins() {
        let filter = EnvFilter::parse("nn=warn,nn.train=trace").unwrap();
        assert!(filter.enabled(Level::Trace, "nn.train.epoch"));
        assert!(!filter.enabled(Level::Info, "nn.infer"));
    }

    #[test]
    fn empty_and_spaced_input() {
        let filter = EnvFilter::parse("").unwrap();
        assert_eq!(filter, EnvFilter::default());
        let filter = EnvFilter::parse(" info , gmm = debug ").unwrap();
        assert!(filter.enabled(Level::Debug, "gmm"));
        assert!(filter.enabled(Level::Info, "other"));
    }

    #[test]
    fn malformed_parse_is_an_error() {
        assert!(EnvFilter::parse("gmm=verbose").is_err());
        assert!(EnvFilter::parse("blah").is_err());
    }
}
