//! The loaded model + calibration behind `/score`.
//!
//! A [`Scorer`] owns everything a scoring request needs: the trained
//! classifier, the fitted temperature, the DCT feature extractor, and the
//! training-time standardisation statistics (serving-time inputs must be
//! shifted and scaled by the *training* column stats, or the model sees a
//! different distribution than it learned on).
//!
//! Scoring is batch-invariant by construction: every dense layer is a
//! row-independent affine map and standardisation/softmax/uncertainty are
//! per-row, so scoring a coalesced batch is bit-identical to scoring each
//! row alone (pinned by `hotspot_nn`'s
//! `batched_inference_is_bit_identical_to_single_rows` and this crate's
//! `tests/batching.rs`). That property is what makes the micro-batcher in
//! [`crate::batcher`] transparent to clients.

use hotspot_active::{uncertainty_scores, HotspotModel, SamplingConfig};
use hotspot_calibration::Temperature;
use hotspot_features::{run_length_histogram, FeatureExtractor, DEFAULT_RUN_BINS};
use hotspot_geom::{Raster, Rect};
use hotspot_layout::{BenchmarkSpec, GeneratedBenchmark};
use hotspot_nn::Matrix;

use crate::api::ClipScore;
use crate::ServeError;

/// Training parameters for [`Scorer::bootstrap`]; defaults are sized so a
/// CI boot stays in the low seconds.
#[derive(Debug, Clone)]
pub struct BootstrapConfig {
    /// Benchmark name (`iccad12`, `iccad16_1` … `iccad16_4`).
    pub benchmark: String,
    /// Population scale factor.
    pub scale: f64,
    /// Seed for generation, initialisation, and the shuffle schedule.
    pub seed: u64,
    /// Training epochs over the labelled set.
    pub epochs: usize,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        BootstrapConfig {
            benchmark: "iccad12".to_string(),
            scale: 0.004,
            seed: 7,
            epochs: 40,
        }
    }
}

/// Maps a CLI-style lowercase benchmark name to its Table I spec.
///
/// # Errors
///
/// Returns [`ServeError::BadInput`] for an unknown name.
pub(crate) fn spec_by_name(name: &str) -> Result<BenchmarkSpec, ServeError> {
    match name {
        "iccad12" => Ok(BenchmarkSpec::iccad12()),
        "iccad16_1" => Ok(BenchmarkSpec::iccad16_1()),
        "iccad16_2" => Ok(BenchmarkSpec::iccad16_2()),
        "iccad16_3" => Ok(BenchmarkSpec::iccad16_3()),
        "iccad16_4" => Ok(BenchmarkSpec::iccad16_4()),
        other => Err(ServeError::BadInput(format!(
            "unknown benchmark {other:?}; expected iccad12 or iccad16_1..iccad16_4"
        ))),
    }
}

/// A trained, calibrated scoring model. See the module docs.
#[derive(Debug)]
pub struct Scorer {
    model: HotspotModel,
    temperature: Temperature,
    extractor: FeatureExtractor,
    mean: Vec<f32>,
    std: Vec<f32>,
    boundary_h: f32,
    model_version: String,
    calibration_version: String,
}

impl Scorer {
    /// Trains a scorer from scratch on a generated benchmark: standardises
    /// the DCT features with training-set column stats, fits the classifier
    /// on an interleaved 80 % split, and calibrates the temperature on the
    /// held-out 20 %.
    ///
    /// # Errors
    ///
    /// Propagates benchmark-generation, training, and calibration failures.
    pub fn bootstrap(config: &BootstrapConfig) -> Result<Scorer, ServeError> {
        if !(config.scale.is_finite() && config.scale > 0.0) {
            return Err(ServeError::BadInput(format!(
                "scale must be positive and finite, got {}",
                config.scale
            )));
        }
        let spec = spec_by_name(&config.benchmark)?.scaled(config.scale);
        let bench = GeneratedBenchmark::generate(&spec, config.seed)
            .map_err(|e| ServeError::Internal(format!("benchmark generation failed: {e}")))?;
        Scorer::from_benchmark(&bench, config.seed, config.epochs)
    }

    /// [`Scorer::bootstrap`] over an already generated benchmark.
    ///
    /// # Errors
    ///
    /// Propagates training and calibration failures.
    pub fn from_benchmark(
        bench: &GeneratedBenchmark,
        seed: u64,
        epochs: usize,
    ) -> Result<Scorer, ServeError> {
        let dct = bench.dct_features();
        let (mean, std) = dct.column_stats();
        let standardized = dct.standardized(&mean, &std);
        let features = Matrix::from_flat(dct.rows(), dct.dim(), standardized.as_slice().to_vec());
        let labels: Vec<usize> = bench
            .labels()
            .iter()
            .map(|label| label.class_index())
            .collect();
        // Interleaved split: every fifth clip calibrates, the rest train.
        // Stride keeps both classes on both sides for any generation order.
        let val_rows: Vec<usize> = (0..features.rows()).filter(|i| i % 5 == 0).collect();
        let train_rows: Vec<usize> = (0..features.rows()).filter(|i| i % 5 != 0).collect();
        if train_rows.is_empty() || val_rows.is_empty() {
            return Err(ServeError::BadInput(format!(
                "benchmark of {} clips is too small to bootstrap a scorer",
                features.rows()
            )));
        }
        let train_x = features.gather_rows(&train_rows);
        let train_y: Vec<usize> = train_rows.iter().map(|&i| labels[i]).collect();
        let val_x = features.gather_rows(&val_rows);
        let val_y: Vec<usize> = val_rows.iter().map(|&i| labels[i]).collect();

        let defaults = SamplingConfig::for_benchmark(bench.len());
        let mut model = HotspotModel::new(
            dct.dim(),
            seed ^ 0x5e5e_0001,
            defaults.init_sigma,
            defaults.learning_rate,
            defaults.train_batch,
        );
        model
            .train(&train_x, &train_y, epochs, seed ^ 0x5e5e_0002)
            .map_err(ServeError::Active)?;
        let (val_logits, _) = model.predict(&val_x);
        let temperature = Temperature::fit(val_logits.as_slice(), 2, &val_y)
            .map_err(|e| ServeError::Internal(format!("temperature fit failed: {e}")))?;

        let model_version = format!("{}-s{}-e{}-d{}", bench.spec().name, seed, epochs, dct.dim());
        let calibration_version = format!("T{:.6}", temperature.value());
        Ok(Scorer {
            model,
            temperature,
            extractor: FeatureExtractor::standard(),
            mean,
            std,
            boundary_h: defaults.boundary_h,
            model_version,
            calibration_version,
        })
    }

    /// Expected feature-row width.
    pub fn input_dim(&self) -> usize {
        self.model.input_dim()
    }

    /// Identifies the trained weights.
    pub fn model_version(&self) -> &str {
        &self.model_version
    }

    /// Identifies the fitted temperature.
    pub fn calibration_version(&self) -> &str {
        &self.calibration_version
    }

    /// The fitted temperature.
    pub fn temperature(&self) -> Temperature {
        self.temperature
    }

    /// Extracts a raw feature row from a client-submitted raster.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadInput`] for empty, oversized, or
    /// shape-mismatched pixel grids.
    pub fn raster_features(
        &self,
        width: usize,
        height: usize,
        pixels: &[f32],
    ) -> Result<Vec<f32>, ServeError> {
        const MAX_EDGE: usize = 4096;
        if width == 0 || height == 0 || width > MAX_EDGE || height > MAX_EDGE {
            return Err(ServeError::BadInput(format!(
                "raster must be between 1x1 and {MAX_EDGE}x{MAX_EDGE}, got {width}x{height}"
            )));
        }
        if pixels.len() != width * height {
            return Err(ServeError::BadInput(format!(
                "raster of {width}x{height} needs {} pixels, got {}",
                width * height,
                pixels.len()
            )));
        }
        let region = Rect::new(0, 0, width as i64, height as i64)
            .map_err(|e| ServeError::BadInput(format!("bad raster region: {e}")))?;
        let mut raster = Raster::zeros(region, 1)
            .map_err(|e| ServeError::BadInput(format!("bad raster shape: {e}")))?;
        raster.pixels_mut().copy_from_slice(pixels);
        // Mirror the benchmark's feature recipe (DCT spectrum + censored
        // run-length histograms); the submitted raster is treated as the
        // clip core, already cropped by the client.
        let mut features = self.extractor.extract(&raster);
        features.extend(run_length_histogram(&raster, 0.5, &DEFAULT_RUN_BINS));
        Ok(features)
    }

    /// Scores a batch of raw feature rows: standardise, one forward pass,
    /// then per-row calibrated probabilities and uncertainties.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadInput`] when any row has the wrong width.
    pub fn score_rows(&self, rows: &[Vec<f32>]) -> Result<Vec<ClipScore>, ServeError> {
        let dim = self.input_dim();
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        let mut data = Vec::with_capacity(rows.len() * dim);
        for (index, row) in rows.iter().enumerate() {
            if row.len() != dim {
                return Err(ServeError::BadInput(format!(
                    "feature row {index} has {} entries, expected {dim}",
                    row.len()
                )));
            }
            for ((&v, &m), &s) in row.iter().zip(&self.mean).zip(&self.std) {
                data.push((v - m) / s);
            }
        }
        let batch = Matrix::from_flat(rows.len(), dim, data);
        let (logits, _) = self.model.predict(&batch);
        let mut probabilities = Vec::with_capacity(rows.len() * 2);
        for i in 0..rows.len() {
            probabilities.extend(self.temperature.probabilities(logits.row(i)));
        }
        let bvsb = hotspot_active::bvsb_scores(&probabilities);
        let uncertainty = uncertainty_scores(&probabilities, self.boundary_h);
        let scores = (0..rows.len())
            .map(|i| {
                let raw = logits.row(i);
                ClipScore {
                    probability: probabilities[i * 2 + 1],
                    logits: raw.to_vec(),
                    scaled_logits: self.temperature.scaled_logits(raw),
                    bvsb: bvsb[i],
                    uncertainty: uncertainty[i],
                }
            })
            .collect();
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scorer() -> Scorer {
        let config = BootstrapConfig {
            benchmark: "iccad16_2".to_string(),
            scale: 0.25,
            seed: 11,
            epochs: 8,
        };
        Scorer::bootstrap(&config).expect("bootstrap")
    }

    #[test]
    fn bootstrap_produces_probabilities_in_range() {
        let scorer = tiny_scorer();
        let rows = vec![
            vec![0.25f32; scorer.input_dim()],
            vec![0.75f32; scorer.input_dim()],
        ];
        let scores = scorer.score_rows(&rows).expect("score");
        assert_eq!(scores.len(), 2);
        for score in &scores {
            assert!((0.0..=1.0).contains(&score.probability), "{score:?}");
            assert!((0.0..=1.0).contains(&score.bvsb), "{score:?}");
            assert_eq!(score.logits.len(), 2);
            assert_eq!(score.scaled_logits.len(), 2);
        }
    }

    #[test]
    fn batched_scores_are_bit_identical_to_single_rows() {
        let scorer = tiny_scorer();
        let dim = scorer.input_dim();
        let rows: Vec<Vec<f32>> = (0..9)
            .map(|r| {
                (0..dim)
                    .map(|c| ((r * dim + c) as f32 * 0.037).sin())
                    .collect()
            })
            .collect();
        let batched = scorer.score_rows(&rows).expect("batch");
        for (i, row) in rows.iter().enumerate() {
            let single = scorer
                .score_rows(std::slice::from_ref(row))
                .expect("single");
            assert_eq!(
                batched[i].probability.to_bits(),
                single[0].probability.to_bits(),
                "probability diverges at row {i}"
            );
            let batch_logits: Vec<u32> = batched[i].logits.iter().map(|v| v.to_bits()).collect();
            let single_logits: Vec<u32> = single[0].logits.iter().map(|v| v.to_bits()).collect();
            assert_eq!(batch_logits, single_logits, "logits diverge at row {i}");
            assert_eq!(batched[i].bvsb.to_bits(), single[0].bvsb.to_bits());
            assert_eq!(
                batched[i].uncertainty.to_bits(),
                single[0].uncertainty.to_bits()
            );
        }
    }

    #[test]
    fn raster_features_validate_shape() {
        let scorer = tiny_scorer();
        assert!(scorer.raster_features(2, 2, &[0.0; 3]).is_err());
        assert!(scorer.raster_features(0, 2, &[]).is_err());
        let features = scorer
            .raster_features(16, 16, &[0.5; 256])
            .expect("extract");
        assert_eq!(features.len(), scorer.input_dim());
    }

    #[test]
    fn wrong_feature_width_is_rejected() {
        let scorer = tiny_scorer();
        assert!(matches!(
            scorer.score_rows(&[vec![0.0; 3]]),
            Err(ServeError::BadInput(_))
        ));
    }
}
