//! The adaptive micro-batcher behind `/score`.
//!
//! Requests enter a bounded queue; a single batcher thread coalesces them
//! into one forward pass per flush. A flush fires when either the batch
//! holds [`BatchOptions::max_batch`] clips or the oldest queued request has
//! waited [`BatchOptions::max_delay`] (measured on the injectable
//! [`Clock`], so the deadline math is testable without sleeps).
//!
//! Three admission-control layers, outermost first:
//!
//! 1. **Load shedding** — more than [`BatchOptions::max_inflight`] requests
//!    inside the batcher means the server is past its concurrency budget;
//!    new work is refused immediately ([`SubmitError::Overloaded`] → 503).
//! 2. **Backpressure** — the bounded queue is full; the client should back
//!    off and retry ([`SubmitError::QueueFull`] → 429 + `Retry-After`).
//! 3. **Coalescing** — admitted requests wait at most `max_delay` before
//!    a flush, trading a bounded latency increase for per-batch
//!    amortisation of the forward pass.
//!
//! Ordering and identity guarantees: the queue is a single MPSC channel, so
//! jobs flush in arrival order and each job's rows stay contiguous; scoring
//! is batch-invariant (see [`crate::scorer`]), so a coalesced response is
//! bit-identical to batch-size-1.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use hotspot_telemetry::{names, MetricsRegistry};

use crate::api::ClipScore;
use crate::clock::Clock;
use crate::scorer::Scorer;

/// Micro-batcher tuning knobs.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Bounded queue depth in *jobs*; a full queue triggers backpressure.
    pub queue_depth: usize,
    /// Flush once this many clips have coalesced.
    pub max_batch: usize,
    /// Flush once the oldest queued job has waited this long.
    pub max_delay: Duration,
    /// Load-shed beyond this many requests inside the batcher at once.
    pub max_inflight: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            queue_depth: 256,
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            max_inflight: 512,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Queue full — back off and retry (HTTP 429).
    QueueFull,
    /// In-flight cap exceeded — shed (HTTP 503).
    Overloaded,
    /// The batcher thread is gone (HTTP 500).
    WorkerGone,
}

struct ScoreJob {
    rows: Vec<Vec<f32>>,
    reply: SyncSender<Result<Vec<ClipScore>, String>>,
}

/// Handle to the batcher thread. See the module docs.
#[derive(Debug)]
pub struct MicroBatcher {
    tx: SyncSender<ScoreJob>,
    options: BatchOptions,
    inflight: Arc<AtomicUsize>,
    running: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

/// How often the idle batcher thread re-checks its stop flag.
const IDLE_POLL: Duration = Duration::from_millis(50);

impl MicroBatcher {
    /// Spawns the batcher thread.
    pub fn start(
        scorer: Arc<Scorer>,
        clock: Arc<dyn Clock>,
        options: BatchOptions,
        registry: Arc<MetricsRegistry>,
    ) -> MicroBatcher {
        let (tx, rx) = mpsc::sync_channel(options.queue_depth.max(1));
        let running = Arc::new(AtomicBool::new(true));
        let stop = Arc::new(AtomicBool::new(false));
        let worker_running = Arc::clone(&running);
        let worker_stop = Arc::clone(&stop);
        let worker_options = options.clone();
        let handle = std::thread::Builder::new()
            .name("serve-batcher".to_string())
            .spawn(move || {
                // Scoring emits kernel-level telemetry (DCT, matmul); the
                // batcher must not leak it into whatever journal a session
                // step has attached to the global dispatcher.
                let _silence = hotspot_telemetry::silence_thread();
                batcher_loop(
                    &rx,
                    &scorer,
                    &*clock,
                    &worker_options,
                    &worker_stop,
                    &registry,
                );
                worker_running.store(false, Ordering::Release);
            })
            // lithohd-lint: allow(panic-safety) — failing to spawn the one batcher thread at boot is unrecoverable
            .expect("spawn batcher thread");
        MicroBatcher {
            tx,
            options,
            inflight: Arc::new(AtomicUsize::new(0)),
            running,
            stop,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// Whether the batcher thread is alive.
    pub fn running(&self) -> bool {
        self.running.load(Ordering::Acquire)
    }

    /// Scores `rows` through the batcher, blocking until the flush that
    /// contains them completes.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] on admission-control refusal or a dead batcher;
    /// scoring failures come back as `Ok(Err(...))` from the scorer and are
    /// surfaced as [`SubmitError::WorkerGone`] only when the thread died.
    pub fn score(
        &self,
        rows: Vec<Vec<f32>>,
    ) -> Result<Result<Vec<ClipScore>, String>, SubmitError> {
        if !self.running() {
            return Err(SubmitError::WorkerGone);
        }
        let admitted = self.inflight.fetch_add(1, Ordering::AcqRel);
        if admitted >= self.options.max_inflight {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            return Err(SubmitError::Overloaded);
        }
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        let job = ScoreJob {
            rows,
            reply: reply_tx,
        };
        let submitted = match self.tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(SubmitError::QueueFull),
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::WorkerGone),
        };
        if let Err(refusal) = submitted {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            return Err(refusal);
        }
        let outcome = reply_rx.recv().map_err(|_| SubmitError::WorkerGone);
        self.inflight.fetch_sub(1, Ordering::AcqRel);
        outcome
    }

    /// Stops the batcher thread and waits for it to exit. Queued jobs are
    /// drained (their clients get a reply) before the thread parks.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        let handle = crate::recover(self.handle.lock()).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn batcher_loop(
    rx: &Receiver<ScoreJob>,
    scorer: &Scorer,
    clock: &dyn Clock,
    options: &BatchOptions,
    stop: &AtomicBool,
    registry: &MetricsRegistry,
) {
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        // lithohd-lint: allow(unordered-merge) — single MPSC queue drained FIFO; job order is the reply order by contract
        let first = match rx.recv_timeout(IDLE_POLL) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let mut jobs = vec![first];
        let mut clip_count = jobs[0].rows.len();
        let deadline = clock.elapsed() + options.max_delay;
        while clip_count < options.max_batch {
            let now = clock.elapsed();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => {
                    clip_count += job.rows.len();
                    jobs.push(job);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        flush(scorer, jobs, clip_count, registry);
    }
}

/// One forward pass over every coalesced job, then FIFO reply split.
fn flush(scorer: &Scorer, jobs: Vec<ScoreJob>, clip_count: usize, registry: &MetricsRegistry) {
    registry.counter(names::SERVE_BATCH_FLUSHES).incr();
    registry
        .counter(names::SERVE_BATCH_CLIPS)
        .add(clip_count as u64);
    registry
        .gauge(names::SERVE_BATCH_FILL)
        .set(clip_count as f64);
    let mut all_rows = Vec::with_capacity(clip_count);
    let mut splits = Vec::with_capacity(jobs.len());
    let mut replies = Vec::with_capacity(jobs.len());
    for job in jobs {
        splits.push(job.rows.len());
        all_rows.extend(job.rows);
        replies.push(job.reply);
    }
    match scorer.score_rows(&all_rows) {
        Ok(mut scores) => {
            // Split back in arrival order; each job's rows were contiguous.
            for (reply, take) in replies.iter().zip(&splits) {
                let rest = scores.split_off(*take);
                let own = std::mem::replace(&mut scores, rest);
                // A client that timed out and hung up is not an error.
                let _ = reply.try_send(Ok(own));
            }
        }
        Err(error) => {
            let message = error.to_string();
            for reply in &replies {
                let _ = reply.try_send(Err(message.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::scorer::BootstrapConfig;

    fn tiny_scorer() -> Arc<Scorer> {
        let config = BootstrapConfig {
            benchmark: "iccad16_2".to_string(),
            scale: 0.25,
            seed: 11,
            epochs: 8,
        };
        Arc::new(Scorer::bootstrap(&config).expect("bootstrap"))
    }

    fn row(scorer: &Scorer, tag: usize) -> Vec<f32> {
        (0..scorer.input_dim())
            .map(|c| ((tag * 131 + c) as f32 * 0.013).sin())
            .collect()
    }

    #[test]
    fn scores_round_trip_through_the_batcher() {
        let scorer = tiny_scorer();
        let batcher = MicroBatcher::start(
            Arc::clone(&scorer),
            Arc::new(ManualClock::new()),
            BatchOptions::default(),
            Arc::new(MetricsRegistry::default()),
        );
        let rows = vec![row(&scorer, 1), row(&scorer, 2)];
        let scores = batcher.score(rows.clone()).expect("submit").expect("score");
        let direct = scorer.score_rows(&rows).expect("direct");
        assert_eq!(scores, direct);
        batcher.shutdown();
        assert!(!batcher.running());
        assert_eq!(batcher.score(rows).unwrap_err(), SubmitError::WorkerGone);
    }

    #[test]
    fn inflight_cap_sheds_load() {
        let scorer = tiny_scorer();
        let batcher = MicroBatcher::start(
            scorer,
            Arc::new(ManualClock::new()),
            BatchOptions {
                max_inflight: 0,
                ..BatchOptions::default()
            },
            Arc::new(MetricsRegistry::default()),
        );
        assert_eq!(
            batcher.score(vec![vec![0.0; 4]]).unwrap_err(),
            SubmitError::Overloaded
        );
    }

    #[test]
    fn deadline_flush_fires_without_a_full_batch() {
        // A manual clock never advances, so the deadline never expires on
        // its own; the recv_timeout below still wakes on real time, which
        // pins that a lone sub-max_batch job does get flushed.
        let scorer = tiny_scorer();
        let registry = Arc::new(MetricsRegistry::default());
        let batcher = MicroBatcher::start(
            Arc::clone(&scorer),
            Arc::new(ManualClock::new()),
            BatchOptions {
                max_batch: 64,
                max_delay: Duration::from_millis(1),
                ..BatchOptions::default()
            },
            Arc::clone(&registry),
        );
        let scores = batcher
            .score(vec![row(&scorer, 3)])
            .expect("submit")
            .expect("score");
        assert_eq!(scores.len(), 1);
        assert_eq!(
            registry.snapshot().counter(names::SERVE_BATCH_FLUSHES),
            Some(1)
        );
        batcher.shutdown();
    }
}
