//! Hotspot-scoring-as-a-service.
//!
//! This crate turns the offline active-entropy pipeline into a long-running
//! server. It is built entirely on the workspace's own layers — the HTTP
//! request loop is [`hotspot_telemetry::serve_http`], the model is
//! [`hotspot_active::HotspotModel`], calibration is
//! [`hotspot_calibration::Temperature`], labelling fans out through
//! [`hotspot_shard::ShardedOracle`], and durability is
//! [`hotspot_store::CheckpointStore`] — no new dependencies.
//!
//! # Surface
//!
//! | Route | Behaviour |
//! |---|---|
//! | `POST /score` | Features or rasters in, calibrated probability + temperature-scaled logits + BvSB / hotspot-aware uncertainty out. |
//! | `POST /session` | Starts a resumable active-learning campaign. |
//! | `POST /session/<id>/step` | Advances the campaign one sampling iteration through the sharded oracle. |
//! | `GET /session/<id>` | Campaign status. |
//! | `GET /healthz` | Liveness (process up). |
//! | `GET /readyz` | Readiness (model + calibration loaded, batcher running). |
//! | `GET /metrics` | Prometheus text: process-wide and `serve.*` series. |
//!
//! # Guarantees
//!
//! - **Batching is invisible**: the [`batcher::MicroBatcher`] coalesces
//!   concurrent requests into one forward pass, yet responses are
//!   bit-identical to batch-size-1 and arrive in per-request order.
//! - **Backpressure is explicit**: a full queue answers `429` with
//!   `Retry-After`; past the in-flight cap the server sheds with `503`.
//! - **Sessions survive the server**: every step commits a
//!   [`hotspot_store::CheckpointBundle`]; a killed and restarted server
//!   resumes the campaign with a byte-identical canonical journal and
//!   identical final metrics (pinned by `tests/session_chaos.rs`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod api;
pub mod batcher;
pub mod client;
pub mod clock;
pub mod scorer;
pub mod server;
pub mod session;

pub use api::{
    ClipScore, ErrorBody, RasterInput, ReadyResponse, ScoreRequest, ScoreResponse, SessionInfo,
    SessionRequest,
};
pub use batcher::{BatchOptions, MicroBatcher, SubmitError};
pub use client::HttpClient;
pub use clock::{Clock, ManualClock, SystemClock};
pub use scorer::{BootstrapConfig, Scorer};
pub use server::{ServeApp, ServeOptions};
pub use session::{SessionManager, SessionSpec};

use std::fmt;

/// Crate-wide error: every failure a route can surface.
#[derive(Debug)]
pub enum ServeError {
    /// The request was malformed (HTTP 400).
    BadInput(String),
    /// The referenced session does not exist (HTTP 404).
    NotFound(String),
    /// The request conflicts with session state, e.g. stepping a finished
    /// campaign (HTTP 409).
    Conflict(String),
    /// The active-learning substrate failed (HTTP 500).
    Active(hotspot_active::ActiveError),
    /// Anything else server-side (HTTP 500).
    Internal(String),
}

impl ServeError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadInput(_) => 400,
            ServeError::NotFound(_) => 404,
            ServeError::Conflict(_) => 409,
            ServeError::Active(_) | ServeError::Internal(_) => 500,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadInput(detail) => write!(f, "bad input: {detail}"),
            ServeError::NotFound(detail) => write!(f, "not found: {detail}"),
            ServeError::Conflict(detail) => write!(f, "conflict: {detail}"),
            ServeError::Active(e) => write!(f, "active-learning error: {e}"),
            ServeError::Internal(detail) => write!(f, "internal error: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Active(e) => Some(e),
            _ => None,
        }
    }
}

/// Recovers the guarded value from a poisoned lock: the serving data
/// structures hold no invariants a panicked holder could have broken
/// half-way (every critical section is a single read or write).
pub(crate) fn recover<T>(result: Result<T, std::sync::PoisonError<T>>) -> T {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_map_to_statuses() {
        assert_eq!(ServeError::BadInput(String::new()).status(), 400);
        assert_eq!(ServeError::NotFound(String::new()).status(), 404);
        assert_eq!(ServeError::Conflict(String::new()).status(), 409);
        assert_eq!(ServeError::Internal(String::new()).status(), 500);
    }
}
