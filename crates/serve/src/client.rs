//! A minimal blocking HTTP/1.1 client over one keep-alive connection.
//!
//! Just enough for the things this workspace points at its own server: the
//! integration tests, the CI session kill/resume check, and
//! `lithohd-loadgen` (whose closed-loop workers each hold one persistent
//! connection, exercising the keep-alive request loop the way a real
//! sidecar would). Not a general client: no chunked encoding, no TLS, no
//! redirects — the server speaks none of those either.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One persistent connection to an HTTP server.
#[derive(Debug)]
pub struct HttpClient {
    reader: BufReader<TcpStream>,
}

/// A parsed response: status code, lowercased headers, body.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header `name: value` pairs, names lowercased, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Response body (Content-Length delimited).
    pub body: String,
}

impl HttpResponse {
    /// First value of `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let wanted = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(key, _)| *key == wanted)
            .map(|(_, value)| value.as_str())
    }
}

impl HttpClient {
    /// Connects with a read timeout so a wedged server fails the caller
    /// instead of hanging it.
    ///
    /// # Errors
    ///
    /// Propagates connection and socket-option failures.
    pub fn connect(addr: &str, read_timeout: Duration) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            reader: BufReader::new(stream),
        })
    }

    /// `GET path` on the persistent connection.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; a malformed response is `InvalidData`.
    pub fn get(&mut self, path: &str) -> io::Result<HttpResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body on the persistent connection.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; a malformed response is `InvalidData`.
    pub fn post_json(&mut self, path: &str, body: &str) -> io::Result<HttpResponse> {
        self.request("POST", path, Some(body))
    }

    /// Sends one request and reads one Content-Length-delimited response,
    /// leaving the connection open for the next call.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; a malformed response is `InvalidData`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResponse> {
        let payload = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: lithohd\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            payload.len()
        );
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(payload.as_bytes())?;
        stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<HttpResponse> {
        let malformed =
            |detail: &str| io::Error::new(io::ErrorKind::InvalidData, detail.to_string());
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(malformed("connection closed before status line"));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| malformed("unparseable status line"))?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(malformed("connection closed inside headers"));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| malformed("bad content-length"))?;
                }
                headers.push((name, value));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| malformed("response body is not UTF-8"))?;
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }
}
