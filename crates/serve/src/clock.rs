//! Injectable monotonic time for the micro-batcher.
//!
//! The batcher's only time dependence is "how long has the oldest queued
//! request been waiting" — a single monotonic elapsed reading. Hiding it
//! behind [`Clock`] keeps the coalescing deadline logic deterministic under
//! test: [`ManualClock`] advances only when told to, so deadline-expiry
//! paths are exercised without real sleeps or wall-clock flakiness.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Monotonic elapsed time since an arbitrary fixed origin.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Time elapsed since the clock's origin. Must be monotonic.
    fn elapsed(&self) -> Duration;
}

/// The production clock: elapsed real time since construction.
#[derive(Debug)]
pub struct SystemClock {
    start: Instant,
}

impl SystemClock {
    /// Captures the origin.
    pub fn new() -> Self {
        SystemClock {
            // lithohd-lint: allow(determinism-clock) — this is the one real-time source behind the Clock seam; nothing canonical derives from it
            start: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// A clock that advances only when told to — drives deadline-expiry tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: Mutex<Duration>,
}

impl ManualClock {
    /// Starts at zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advances the clock by `delta`.
    pub fn advance(&self, delta: Duration) {
        let mut now = crate::recover(self.now.lock());
        *now += delta;
    }
}

impl Clock for ManualClock {
    fn elapsed(&self) -> Duration {
        *crate::recover(self.now.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let a = clock.elapsed();
        let b = clock.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances_only_on_demand() {
        let clock = ManualClock::new();
        assert_eq!(clock.elapsed(), Duration::ZERO);
        clock.advance(Duration::from_millis(7));
        clock.advance(Duration::from_millis(5));
        assert_eq!(clock.elapsed(), Duration::from_millis(12));
    }
}
