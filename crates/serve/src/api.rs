//! Wire types of the scoring and session APIs.
//!
//! Everything here is plain data with `serde` derives; the route handlers
//! in [`crate::server`] parse requests into these types and serialise the
//! responses back out. Optional request fields deserialise to `None` when
//! absent, so clients can send the minimal JSON for their use case.

use serde::{Deserialize, Serialize};

/// One rasterised clip submitted for scoring: a `width × height` pixel grid
/// in row-major order with intensities in `[0, 1]`. The server resamples to
/// the extractor's native edge, so any resolution is accepted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RasterInput {
    /// Pixels per row.
    pub width: usize,
    /// Rows.
    pub height: usize,
    /// Row-major pixel intensities; must hold `width * height` entries.
    pub pixels: Vec<f32>,
}

/// `POST /score` request body. At least one of `features` / `rasters` must
/// be present and non-empty; when both are given, feature rows are scored
/// first, then rasters, and the response preserves that order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreRequest {
    /// Client-chosen id echoed in the response and in error bodies.
    pub request_id: Option<String>,
    /// Raw (un-standardised) DCT feature rows, one per clip.
    pub features: Option<Vec<Vec<f32>>>,
    /// Rasterised clips; the server extracts features itself.
    pub rasters: Option<Vec<RasterInput>>,
}

/// Calibrated scores of one clip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClipScore {
    /// Calibrated hotspot probability (temperature-scaled softmax, Eq. 5).
    pub probability: f32,
    /// Raw model logits `[non-hotspot, hotspot]`.
    pub logits: Vec<f32>,
    /// Logits divided by the fitted temperature; softmax at `T = 1`
    /// recovers `probability`.
    pub scaled_logits: Vec<f32>,
    /// Best-versus-second-best uncertainty `1 − |p₀ − p₁|`.
    pub bvsb: f32,
    /// Hotspot-aware uncertainty (Eq. 6) at the configured boundary `h`.
    pub uncertainty: f32,
}

/// `POST /score` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreResponse {
    /// Echo of the request id (`"-"` when the client sent none).
    pub request_id: String,
    /// Identifies the trained model weights.
    pub model_version: String,
    /// Identifies the fitted temperature.
    pub calibration_version: String,
    /// One entry per submitted clip, in submission order.
    pub scores: Vec<ClipScore>,
}

/// JSON error body of every non-2xx response on the scoring routes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// HTTP status code, repeated in the body for log scraping.
    pub status: u16,
    /// Human-readable cause.
    pub error: String,
    /// Echo of the request id (`"-"` when unknown).
    pub request_id: String,
}

/// `POST /session` request body: parameters of a new labelling campaign.
/// Every field is optional; server defaults are small enough for CI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionRequest {
    /// Benchmark name (`iccad12`, `iccad16_1` … `iccad16_4`).
    pub benchmark: Option<String>,
    /// Population scale factor applied to the benchmark spec.
    pub scale: Option<f64>,
    /// Campaign seed; drives generation, sampling, and sharding.
    pub seed: Option<u64>,
    /// Active-learning method (`ours`, `ts`, `qp`, `random`).
    pub method: Option<String>,
    /// Sharded-oracle worker threads.
    pub workers: Option<usize>,
    /// Sampling iterations; one `/step` advances exactly one.
    pub iterations: Option<usize>,
}

/// Session state as reported by `POST /session`, `POST /session/<id>/step`,
/// and `GET /session/<id>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionInfo {
    /// Server-assigned session id.
    pub session: String,
    /// Benchmark name the campaign runs on.
    pub benchmark: String,
    /// Campaign seed.
    pub seed: u64,
    /// Iterations completed so far.
    pub iteration: usize,
    /// Total iterations the campaign will run.
    pub iterations: usize,
    /// Whether the campaign has finished (detection pass done).
    pub done: bool,
    /// Final detection accuracy, present once `done`.
    pub accuracy: Option<f64>,
    /// Final litho overhead (Eq. 2), present once `done`.
    pub litho: Option<u64>,
}

/// `GET /readyz` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadyResponse {
    /// True once the model and calibration are loaded and the batcher runs.
    pub ready: bool,
    /// Identifies the trained model weights.
    pub model_version: String,
    /// Identifies the fitted temperature.
    pub calibration_version: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_request_optionals_default_to_none() {
        let req: ScoreRequest =
            serde_json::from_str(r#"{"features": [[1.0, 2.0]]}"#).expect("parse");
        assert_eq!(req.request_id, None);
        assert_eq!(req.features, Some(vec![vec![1.0, 2.0]]));
        assert_eq!(req.rasters, None);
    }

    #[test]
    fn session_request_round_trips() {
        let req = SessionRequest {
            benchmark: Some("iccad12".to_string()),
            scale: Some(0.004),
            seed: Some(7),
            method: Some("ours".to_string()),
            workers: Some(2),
            iterations: Some(4),
        };
        let json = serde_json::to_string(&req).expect("serialise");
        let back: SessionRequest = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, req);
    }

    #[test]
    fn raster_input_nested_in_request_parses() {
        let json =
            r#"{"request_id": "r1", "rasters": [{"width": 2, "height": 1, "pixels": [0.5, 1.0]}]}"#;
        let req: ScoreRequest = serde_json::from_str(json).expect("parse");
        let rasters = req.rasters.expect("rasters");
        assert_eq!(rasters[0].pixels, vec![0.5, 1.0]);
    }
}
