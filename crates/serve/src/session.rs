//! Resumable active-learning campaigns ("sessions").
//!
//! A session is a directory under the manager's root:
//!
//! ```text
//! <root>/<id>/spec.json       campaign parameters (immutable after create)
//! <root>/<id>/ckpt/           CheckpointStore of per-iteration bundles
//! <root>/<id>/journal.jsonl   canonical run journal
//! <root>/<id>/shards/step-N/  per-step shard commit stores
//! <root>/<id>/done.json       final metrics, written when the campaign ends
//! ```
//!
//! Every `step` is a full resume: load the latest
//! [`hotspot_store::CheckpointBundle`], restore cumulative telemetry and the
//! run-id watermark, truncate the journal to the bundle's durable position,
//! and drive [`hotspot_active::SamplingFramework`] through a hook that saves
//! after the next iteration and then *aborts the run on purpose* (the
//! documented save-error contract) — advancing the campaign exactly one
//! iteration. The final step lets the run finish its detection pass and
//! records `done.json`. Because a step never relies on in-process state
//! beyond the benchmark cache, a killed and restarted server resumes
//! byte-identically (pinned by `tests/session_chaos.rs`).
//!
//! All session work is serialised on one runner thread: steps of different
//! sessions never interleave, so the globally-attached journal sink only
//! ever sees the stepping session's events (scoring runs on silenced
//! threads; see [`crate::batcher`]).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use hotspot_active::{
    ActiveError, BatchSelector, CheckpointHook, EntropySelector, RandomSelector, RunCheckpoint,
    SamplingConfig, SamplingFramework, UncertaintySelector,
};
use hotspot_baselines::QpSelector;
use hotspot_layout::GeneratedBenchmark;
use hotspot_shard::{ShardConfig, ShardedOracle};
use hotspot_store::{CheckpointBundle, CheckpointStore};
use hotspot_telemetry::{self as telemetry, names, JsonlSink, MetricsRegistry};
use serde::{Deserialize, Serialize};

use crate::api::{SessionInfo, SessionRequest};
use crate::ServeError;

/// The sentinel `save` error a [`StepHook`] raises to stop the framework
/// after exactly one iteration; never surfaced to clients.
const STEP_BREAK: &str = "serve.session.step-boundary";

/// How often the idle runner thread re-checks its stop flag.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// Persisted campaign parameters (`spec.json`). Unlike
/// [`SessionRequest`], every field is concrete: defaults are applied once
/// at create time so a restarted server sees identical parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Benchmark name.
    pub benchmark: String,
    /// Population scale factor.
    pub scale: f64,
    /// Campaign seed.
    pub seed: u64,
    /// Active-learning method.
    pub method: String,
    /// Sharded-oracle worker threads.
    pub workers: usize,
    /// Total sampling iterations.
    pub iterations: usize,
}

/// Final campaign metrics (`done.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DoneRecord {
    accuracy: f64,
    litho: u64,
    iteration: usize,
}

enum Command {
    Create(SessionRequest, SyncSender<Result<SessionInfo, ServeError>>),
    Step(String, SyncSender<Result<SessionInfo, ServeError>>),
    Status(String, SyncSender<Result<SessionInfo, ServeError>>),
}

/// Owns the runner thread; cheap handle for route handlers.
#[derive(Debug)]
pub struct SessionManager {
    tx: SyncSender<Command>,
    stop: Arc<AtomicBool>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl SessionManager {
    /// Spawns the runner thread over `root` (created if missing).
    ///
    /// # Errors
    ///
    /// Propagates root-directory creation failures.
    pub fn start(
        root: impl Into<PathBuf>,
        registry: Arc<MetricsRegistry>,
    ) -> std::io::Result<SessionManager> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let (tx, rx) = mpsc::sync_channel(64);
        let stop = Arc::new(AtomicBool::new(false));
        let runner_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("serve-sessions".to_string())
            .spawn(move || {
                let mut runner = Runner {
                    root,
                    registry,
                    specs: BTreeMap::new(),
                    benchmarks: BTreeMap::new(),
                };
                runner_loop(&rx, &runner_stop, &mut runner);
            })?;
        Ok(SessionManager {
            tx,
            stop,
            handle: Mutex::new(Some(handle)),
        })
    }

    /// Creates a campaign under a fresh deterministic ordinal id.
    ///
    /// # Errors
    ///
    /// Validation failures as [`ServeError::BadInput`]; a dead runner as
    /// [`ServeError::Internal`].
    pub fn create(&self, request: SessionRequest) -> Result<SessionInfo, ServeError> {
        self.call(|reply| Command::Create(request, reply))
    }

    /// Advances a campaign exactly one iteration via checkpoint resume.
    ///
    /// # Errors
    ///
    /// Unknown session as [`ServeError::NotFound`]; a finished campaign as
    /// [`ServeError::Conflict`]; substrate failures as
    /// [`ServeError::Active`] / [`ServeError::Internal`].
    pub fn step(&self, session: &str) -> Result<SessionInfo, ServeError> {
        self.call(|reply| Command::Step(session.to_string(), reply))
    }

    /// Reports campaign state without advancing it.
    ///
    /// # Errors
    ///
    /// Unknown session as [`ServeError::NotFound`].
    pub fn status(&self, session: &str) -> Result<SessionInfo, ServeError> {
        self.call(|reply| Command::Status(session.to_string(), reply))
    }

    fn call(
        &self,
        command: impl FnOnce(SyncSender<Result<SessionInfo, ServeError>>) -> Command,
    ) -> Result<SessionInfo, ServeError> {
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        self.tx
            .send(command(reply_tx))
            .map_err(|_| ServeError::Internal("session runner is gone".to_string()))?;
        reply_rx
            .recv()
            .map_err(|_| ServeError::Internal("session runner died mid-request".to_string()))?
    }

    /// Stops the runner thread after the in-flight command finishes.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        let handle = crate::recover(self.handle.lock()).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for SessionManager {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn runner_loop(rx: &Receiver<Command>, stop: &AtomicBool, runner: &mut Runner) {
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match rx.recv_timeout(IDLE_POLL) {
            Ok(Command::Create(request, reply)) => {
                let _ = reply.try_send(runner.create(&request));
            }
            Ok(Command::Step(session, reply)) => {
                let _ = reply.try_send(runner.step(&session));
            }
            Ok(Command::Status(session, reply)) => {
                let _ = reply.try_send(runner.status(&session));
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

struct Runner {
    root: PathBuf,
    registry: Arc<MetricsRegistry>,
    specs: BTreeMap<String, SessionSpec>,
    benchmarks: BTreeMap<String, Arc<GeneratedBenchmark>>,
}

impl Runner {
    fn create(&mut self, request: &SessionRequest) -> Result<SessionInfo, ServeError> {
        let spec = SessionSpec {
            benchmark: request
                .benchmark
                .clone()
                .unwrap_or_else(|| "iccad12".to_string()),
            scale: request.scale.unwrap_or(0.004),
            seed: request.seed.unwrap_or(7),
            method: request.method.clone().unwrap_or_else(|| "ours".to_string()),
            workers: request.workers.unwrap_or(2),
            iterations: request.iterations.unwrap_or(4),
        };
        // Fail fast on everything a later step would choke on.
        selector_for(&spec.method)?;
        if !(spec.scale.is_finite() && spec.scale > 0.0) {
            return Err(ServeError::BadInput(format!(
                "scale must be positive and finite, got {}",
                spec.scale
            )));
        }
        if spec.iterations == 0 {
            return Err(ServeError::BadInput("iterations must be >= 1".to_string()));
        }
        if spec.workers == 0 {
            return Err(ServeError::BadInput("workers must be >= 1".to_string()));
        }
        let bench_spec = crate::scorer::spec_by_name(&spec.benchmark)?.scaled(spec.scale);
        bench_spec
            .validate()
            .map_err(|e| ServeError::BadInput(format!("bad benchmark spec: {e}")))?;

        let id = self.next_id()?;
        let dir = self.root.join(&id);
        std::fs::create_dir_all(&dir)
            .map_err(|e| ServeError::Internal(format!("cannot create session dir: {e}")))?;
        let encoded = serde_json::to_string(&spec)
            .map_err(|e| ServeError::Internal(format!("cannot encode spec: {e}")))?;
        std::fs::write(dir.join("spec.json"), encoded)
            .map_err(|e| ServeError::Internal(format!("cannot persist spec: {e}")))?;
        self.registry.counter(names::SERVE_SESSIONS_CREATED).incr();
        let info = SessionInfo {
            session: id.clone(),
            benchmark: spec.benchmark.clone(),
            seed: spec.seed,
            iteration: 0,
            iterations: spec.iterations,
            done: false,
            accuracy: None,
            litho: None,
        };
        self.specs.insert(id, spec);
        Ok(info)
    }

    /// Smallest `sNNNN` id not on disk — survives restarts, where the
    /// in-memory map starts empty but session dirs persist.
    fn next_id(&self) -> Result<String, ServeError> {
        let entries = std::fs::read_dir(&self.root)
            .map_err(|e| ServeError::Internal(format!("cannot scan session root: {e}")))?;
        let mut highest = 0u64;
        for entry in entries.flatten() {
            let name = entry.file_name();
            if let Some(index) = name
                .to_str()
                .and_then(|n| n.strip_prefix('s'))
                .and_then(|n| n.parse::<u64>().ok())
            {
                highest = highest.max(index);
            }
        }
        Ok(format!("s{:04}", highest + 1))
    }

    fn load_spec(&mut self, session: &str) -> Result<SessionSpec, ServeError> {
        if let Some(spec) = self.specs.get(session) {
            return Ok(spec.clone());
        }
        let path = self.root.join(session).join("spec.json");
        let raw = std::fs::read_to_string(&path)
            .map_err(|_| ServeError::NotFound(format!("no session {session}")))?;
        let spec: SessionSpec = serde_json::from_str(&raw)
            .map_err(|e| ServeError::Internal(format!("corrupt spec for {session}: {e}")))?;
        self.specs.insert(session.to_string(), spec.clone());
        Ok(spec)
    }

    fn benchmark(&mut self, spec: &SessionSpec) -> Result<Arc<GeneratedBenchmark>, ServeError> {
        let key = format!("{}|{}|{}", spec.benchmark, spec.scale, spec.seed);
        if let Some(bench) = self.benchmarks.get(&key) {
            return Ok(Arc::clone(bench));
        }
        if !(spec.scale.is_finite() && spec.scale > 0.0) {
            return Err(ServeError::BadInput(format!(
                "scale must be positive and finite, got {}",
                spec.scale
            )));
        }
        let bench_spec = crate::scorer::spec_by_name(&spec.benchmark)?.scaled(spec.scale);
        // Generation is a pure function of (spec, seed); silencing keeps its
        // kernel telemetry out of whatever the process has accumulated, so
        // a step's restored metrics are the only global state that matters.
        let bench = {
            let _silence = telemetry::silence_thread();
            GeneratedBenchmark::generate(&bench_spec, spec.seed)
                .map_err(|e| ServeError::Internal(format!("benchmark generation failed: {e}")))?
        };
        let bench = Arc::new(bench);
        self.benchmarks.insert(key, Arc::clone(&bench));
        Ok(bench)
    }

    fn status(&mut self, session: &str) -> Result<SessionInfo, ServeError> {
        let spec = self.load_spec(session)?;
        let dir = self.root.join(session);
        if let Some(done) = read_done(&dir)? {
            return Ok(info_done(session, &spec, &done));
        }
        let iteration = match CheckpointStore::open(dir.join("ckpt")) {
            Ok(store) => store
                .load_latest_bundle()
                .map_err(|e| ServeError::Internal(format!("cannot read checkpoints: {e}")))?
                .map_or(0, |(_, bundle)| bundle.run.iteration),
            Err(_) => 0,
        };
        Ok(SessionInfo {
            session: session.to_string(),
            benchmark: spec.benchmark.clone(),
            seed: spec.seed,
            iteration,
            iterations: spec.iterations,
            done: false,
            accuracy: None,
            litho: None,
        })
    }

    fn step(&mut self, session: &str) -> Result<SessionInfo, ServeError> {
        let spec = self.load_spec(session)?;
        let dir = self.root.join(session);
        if read_done(&dir)?.is_some() {
            return Err(ServeError::Conflict(format!(
                "session {session} already finished"
            )));
        }
        let bench = self.benchmark(&spec)?;
        let mut config = SamplingConfig::for_benchmark(bench.len());
        config.iterations = spec.iterations;

        let mut store = CheckpointStore::open(dir.join("ckpt"))
            .map_err(|e| ServeError::Internal(format!("cannot open checkpoint store: {e}")))?;
        let latest = store
            .load_latest_bundle()
            .map_err(|e| ServeError::Internal(format!("cannot load checkpoint: {e}")))?;
        let journal_path = dir.join("journal.jsonl");

        // Restore-or-init exactly as the bench harness does: cumulative
        // telemetry and the run-id allocator continue from the checkpoint,
        // and the journal is truncated to the durable position so records
        // written after the save never survive twice.
        let (sink, resume_cp, next_key) = match latest {
            Some((key, bundle)) => {
                telemetry::restore_metrics_state(&bundle.metrics);
                telemetry::set_run_id_watermark(bundle.run_id_watermark);
                self.registry.counter(names::SERVE_SESSION_RESUMES).incr();
                let bytes = bundle.journal.as_ref().map_or(0, |position| position.bytes);
                truncate_journal(&journal_path, bytes)?;
                let sink = JsonlSink::create_canonical_append(&journal_path)
                    .map_err(|e| ServeError::Internal(format!("cannot reopen journal: {e}")))?;
                sink.record_resume(bundle.run.iteration as u64, key);
                (Arc::new(sink), Some(bundle.run), key + 1)
            }
            None => {
                telemetry::set_run_id_watermark(0);
                let sink = JsonlSink::create_canonical(&journal_path)
                    .map_err(|e| ServeError::Internal(format!("cannot create journal: {e}")))?;
                (Arc::new(sink), None, 1)
            }
        };
        let next_iteration = resume_cp.as_ref().map_or(1, |cp| cp.iteration + 1);

        let sink_dyn: Arc<dyn telemetry::Sink> = Arc::clone(&sink) as Arc<dyn telemetry::Sink>;
        telemetry::add_sink(Arc::clone(&sink_dyn));
        let outcome = {
            let mut selector = selector_for(&spec.method)?;
            let bench_for_factory = Arc::clone(&bench);
            // Fresh shard dir per step: commit ordinals restart with every
            // ShardedOracle, and a stale same-ordinal commit from an earlier
            // step must never be salvageable.
            let shard_config = ShardConfig::new(spec.workers)
                .with_stream_seed(spec.seed ^ 0x5a4d_0001)
                .with_dir(dir.join("shards").join(format!("step-{next_iteration}")));
            let mut oracle = ShardedOracle::new(
                bench.oracle(),
                move |_shard, _jitter| bench_for_factory.oracle(),
                shard_config,
            );
            let mut hook = StepHook {
                store: &mut store,
                sink: &sink,
                resume: resume_cp,
                next_key,
                final_iteration: config.iterations,
                saved: None,
            };
            let framework = SamplingFramework::new(config);
            let result = framework.run_with_oracle_checkpointed(
                &bench,
                selector.as_mut(),
                spec.seed,
                &mut oracle,
                &mut hook,
            );
            (result, hook.saved)
        };
        telemetry::remove_sink(&sink_dyn);
        self.registry.counter(names::SERVE_SESSION_STEPS).incr();

        let (result, saved) = outcome;
        match result {
            Ok(run) => {
                let done = DoneRecord {
                    accuracy: run.metrics.accuracy,
                    litho: run.metrics.litho as u64,
                    iteration: saved.unwrap_or(spec.iterations),
                };
                let encoded = serde_json::to_string(&done)
                    .map_err(|e| ServeError::Internal(format!("cannot encode outcome: {e}")))?;
                std::fs::write(dir.join("done.json"), encoded)
                    .map_err(|e| ServeError::Internal(format!("cannot persist outcome: {e}")))?;
                Ok(info_done(session, &spec, &done))
            }
            Err(ActiveError::Checkpoint { detail }) if detail == STEP_BREAK => Ok(SessionInfo {
                session: session.to_string(),
                benchmark: spec.benchmark.clone(),
                seed: spec.seed,
                iteration: saved.unwrap_or(next_iteration),
                iterations: spec.iterations,
                done: false,
                accuracy: None,
                litho: None,
            }),
            Err(error) => Err(ServeError::Active(error)),
        }
    }
}

fn info_done(session: &str, spec: &SessionSpec, done: &DoneRecord) -> SessionInfo {
    SessionInfo {
        session: session.to_string(),
        benchmark: spec.benchmark.clone(),
        seed: spec.seed,
        iteration: done.iteration,
        iterations: spec.iterations,
        done: true,
        accuracy: Some(done.accuracy),
        litho: Some(done.litho),
    }
}

fn read_done(dir: &Path) -> Result<Option<DoneRecord>, ServeError> {
    match std::fs::read_to_string(dir.join("done.json")) {
        Ok(raw) => serde_json::from_str(&raw)
            .map(Some)
            .map_err(|e| ServeError::Internal(format!("corrupt done record: {e}"))),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(ServeError::Internal(format!(
            "cannot read done record: {e}"
        ))),
    }
}

fn truncate_journal(path: &Path, bytes: u64) -> Result<(), ServeError> {
    match std::fs::File::options().write(true).open(path) {
        Ok(file) => file
            .set_len(bytes)
            .map_err(|e| ServeError::Internal(format!("cannot truncate journal: {e}"))),
        // A checkpoint without a journal byte is only consistent with an
        // empty journal; create_canonical_append will create the file.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound && bytes == 0 => Ok(()),
        Err(e) => Err(ServeError::Internal(format!(
            "cannot reopen journal for truncation: {e}"
        ))),
    }
}

fn selector_for(method: &str) -> Result<Box<dyn BatchSelector>, ServeError> {
    match method {
        "ours" => Ok(Box::new(EntropySelector::new())),
        "ts" => Ok(Box::new(UncertaintySelector::new())),
        "qp" => Ok(Box::new(QpSelector::new())),
        "random" => Ok(Box::new(RandomSelector::new())),
        other => Err(ServeError::BadInput(format!(
            "unknown method {other:?}; expected ours, ts, qp, or random"
        ))),
    }
}

/// Saves after every iteration and aborts the run after the first save
/// below the final iteration — the one-iteration-per-step mechanism.
struct StepHook<'a> {
    store: &'a mut CheckpointStore,
    sink: &'a JsonlSink,
    resume: Option<RunCheckpoint>,
    next_key: u64,
    final_iteration: usize,
    saved: Option<usize>,
}

impl CheckpointHook for StepHook<'_> {
    fn resume(&mut self) -> Option<RunCheckpoint> {
        self.resume.take()
    }

    fn wants_save(&mut self, _iteration: usize) -> bool {
        true
    }

    fn save(&mut self, checkpoint: &RunCheckpoint) -> Result<(), ActiveError> {
        let bundle = CheckpointBundle {
            run: checkpoint.clone(),
            metrics: telemetry::metrics_state(),
            run_id_watermark: telemetry::run_id_watermark(),
            journal: Some(self.sink.position()),
            progress: Vec::new(),
        };
        self.store
            .save(self.next_key, &bundle.to_file())
            .map_err(|e| ActiveError::Checkpoint {
                detail: format!("session checkpoint save failed: {e}"),
            })?;
        self.next_key += 1;
        self.saved = Some(checkpoint.iteration);
        if checkpoint.iteration < self.final_iteration {
            // The documented abort contract: a save error stops the run.
            // This is not a failure — the step's work is durably committed
            // and the next step resumes from it.
            return Err(ActiveError::Checkpoint {
                detail: STEP_BREAK.to_string(),
            });
        }
        Ok(())
    }
}
