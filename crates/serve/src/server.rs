//! The HTTP application: routing, error bodies, and wiring.
//!
//! [`ServeApp::start`] bootstraps the [`crate::scorer::Scorer`], spawns the
//! [`crate::batcher::MicroBatcher`] and [`crate::session::SessionManager`],
//! and mounts the route table from the crate docs on
//! [`hotspot_telemetry::serve_http`]. Every non-2xx response on an API
//! route carries a JSON [`ErrorBody`] echoing the request id (the body's
//! `request_id`, else the `x-request-id` header, else `"-"`), so a client
//! can correlate refusals under load.
//!
//! Handler threads run silenced: request handling must never leak events
//! into the canonical journal a session step has attached to the global
//! dispatcher. Serving metrics go to an instance
//! [`MetricsRegistry`] instead, which `/metrics` renders alongside the
//! process-wide snapshot.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hotspot_telemetry::{
    self as telemetry, names, serve_http, Handler, HttpOptions, HttpServer, MetricsRegistry,
    Request, Response,
};

use crate::api::{ErrorBody, ReadyResponse, ScoreRequest, ScoreResponse};
use crate::batcher::{BatchOptions, MicroBatcher, SubmitError};
use crate::clock::{Clock, SystemClock};
use crate::scorer::{BootstrapConfig, Scorer};
use crate::session::SessionManager;
use crate::ServeError;

/// Everything [`ServeApp::start`] needs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; port `0` lets the OS choose (see
    /// [`ServeApp::local_addr`]).
    pub addr: String,
    /// HTTP worker threads.
    pub threads: usize,
    /// Per-read socket deadline.
    pub read_timeout: Duration,
    /// Micro-batcher tuning.
    pub batch: BatchOptions,
    /// Scorer training parameters.
    pub bootstrap: BootstrapConfig,
    /// Root directory for session state.
    pub sessions_dir: PathBuf,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            read_timeout: Duration::from_secs(5),
            batch: BatchOptions::default(),
            bootstrap: BootstrapConfig::default(),
            sessions_dir: PathBuf::from("serve-sessions"),
        }
    }
}

#[derive(Debug)]
struct AppState {
    scorer: Arc<Scorer>,
    batcher: MicroBatcher,
    sessions: SessionManager,
    registry: Arc<MetricsRegistry>,
    clock: Arc<dyn Clock>,
    ready: AtomicBool,
}

/// A running scoring server; shuts down on drop.
#[derive(Debug)]
pub struct ServeApp {
    server: HttpServer,
    state: Arc<AppState>,
}

impl ServeApp {
    /// Bootstraps the scorer, spawns the batcher and session runner, and
    /// binds the HTTP request loop.
    ///
    /// # Errors
    ///
    /// Propagates scorer-bootstrap failures and bind errors.
    pub fn start(options: ServeOptions) -> Result<ServeApp, ServeError> {
        let registry = Arc::new(MetricsRegistry::default());
        // Bootstrap training emits kernel telemetry; a server's boot must
        // not perturb the process-global metrics that session checkpoints
        // restore and re-save.
        let scorer = {
            let _silence = telemetry::silence_thread();
            Arc::new(Scorer::bootstrap(&options.bootstrap)?)
        };
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
        let batcher = MicroBatcher::start(
            Arc::clone(&scorer),
            Arc::clone(&clock),
            options.batch.clone(),
            Arc::clone(&registry),
        );
        let sessions = SessionManager::start(&options.sessions_dir, Arc::clone(&registry))
            .map_err(|e| ServeError::Internal(format!("cannot start session manager: {e}")))?;
        let state = Arc::new(AppState {
            scorer,
            batcher,
            sessions,
            registry,
            clock,
            ready: AtomicBool::new(true),
        });
        let handler_state = Arc::clone(&state);
        let handler: Handler = Arc::new(move |request| handle(&handler_state, request));
        let http_options = HttpOptions {
            threads: options.threads.max(1),
            read_timeout: options.read_timeout,
            thread_name: "hotspot-serve".to_string(),
            ..HttpOptions::default()
        };
        let server = serve_http(&options.addr, http_options, handler)
            .map_err(|e| ServeError::Internal(format!("cannot bind {}: {e}", options.addr)))?;
        Ok(ServeApp { server, state })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The served model — tests use this as the batch-size-1 reference.
    pub fn scorer(&self) -> Arc<Scorer> {
        Arc::clone(&self.state.scorer)
    }

    /// Stops the request loop, the batcher, and the session runner.
    pub fn shutdown(&mut self) {
        self.state.ready.store(false, Ordering::Release);
        self.server.shutdown();
        self.state.batcher.shutdown();
        self.state.sessions.shutdown();
    }
}

fn handle(state: &AppState, request: &Request) -> Response {
    // Feature extraction on handler threads emits kernel telemetry;
    // silence it for the request's duration (see the module docs).
    let _silence = telemetry::silence_thread();
    state.registry.counter(names::SERVE_HTTP_REQUESTS).incr();
    let response = route(state, request);
    if response.status >= 400 {
        state.registry.counter(names::SERVE_HTTP_ERRORS).incr();
    }
    response
}

fn route(state: &AppState, request: &Request) -> Response {
    let method = request.method.as_str();
    let path = request.route_path();
    match path {
        "/healthz" | "/readyz" | "/metrics" => {
            if method != "GET" {
                return method_not_allowed(request);
            }
            match path {
                "/healthz" => Response::text(200, "ok\n"),
                "/readyz" => readyz(state),
                _ => metrics(state),
            }
        }
        "/score" => {
            if method == "POST" {
                score(state, request)
            } else {
                method_not_allowed(request)
            }
        }
        "/session" => {
            if method == "POST" {
                create_session(state, request)
            } else {
                method_not_allowed(request)
            }
        }
        _ => {
            if let Some(rest) = path.strip_prefix("/session/") {
                let mut parts = rest.splitn(2, '/');
                let id = parts.next().unwrap_or("");
                let tail = parts.next();
                if !id.is_empty() {
                    return match (method, tail) {
                        ("GET", None) => session_reply(request, state.sessions.status(id)),
                        ("POST", Some("step")) => session_reply(request, state.sessions.step(id)),
                        ("POST", None) | ("GET", Some("step")) => method_not_allowed(request),
                        _ => not_found(request),
                    };
                }
            }
            not_found(request)
        }
    }
}

fn readyz(state: &AppState) -> Response {
    let ready = state.ready.load(Ordering::Acquire) && state.batcher.running();
    let body = ReadyResponse {
        ready,
        model_version: state.scorer.model_version().to_string(),
        calibration_version: state.scorer.calibration_version().to_string(),
    };
    let status = if ready { 200 } else { 503 };
    Response::json(status, serde_json::to_string(&body).unwrap_or_default())
}

fn metrics(state: &AppState) -> Response {
    let mut text = telemetry::render_prometheus(&telemetry::snapshot());
    text.push_str(&telemetry::render_prometheus(&state.registry.snapshot()));
    Response::text(200, text)
}

fn score(state: &AppState, request: &Request) -> Response {
    let started = state.clock.elapsed();
    let header_id = request.header("x-request-id").unwrap_or("-").to_string();
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => return error_response(400, "request body is not UTF-8", &header_id),
    };
    let parsed: ScoreRequest = match serde_json::from_str(body) {
        Ok(parsed) => parsed,
        Err(e) => return error_response(400, &format!("bad JSON: {e}"), &header_id),
    };
    let request_id = parsed.request_id.clone().unwrap_or(header_id);
    let mut rows = parsed.features.unwrap_or_default();
    for raster in parsed.rasters.unwrap_or_default() {
        match state
            .scorer
            .raster_features(raster.width, raster.height, &raster.pixels)
        {
            Ok(row) => rows.push(row),
            Err(e) => return error_response(e.status(), &e.to_string(), &request_id),
        }
    }
    if rows.is_empty() {
        return error_response(
            400,
            "at least one of features / rasters must be non-empty",
            &request_id,
        );
    }
    // Validate shape before admission control, so a malformed request is a
    // 400 even when the server would otherwise shed it.
    let dim = state.scorer.input_dim();
    for (index, row) in rows.iter().enumerate() {
        if row.len() != dim {
            return error_response(
                400,
                &format!(
                    "feature row {index} has {} entries, expected {dim}",
                    row.len()
                ),
                &request_id,
            );
        }
    }
    let clip_count = rows.len();
    match state.batcher.score(rows) {
        Ok(Ok(scores)) => {
            state.registry.counter(names::SERVE_SCORE_REQUESTS).incr();
            state
                .registry
                .counter(names::SERVE_SCORE_CLIPS)
                .add(clip_count as u64);
            let elapsed = state.clock.elapsed().saturating_sub(started);
            state
                .registry
                .histogram(names::SERVE_SCORE_SECONDS)
                .record(elapsed.as_secs_f64());
            let response = ScoreResponse {
                request_id,
                model_version: state.scorer.model_version().to_string(),
                calibration_version: state.scorer.calibration_version().to_string(),
                scores,
            };
            Response::json(200, serde_json::to_string(&response).unwrap_or_default())
        }
        // The scorer only refuses malformed rows; shape errors are the
        // client's fault even when detected inside a coalesced batch.
        Ok(Err(message)) => error_response(400, &message, &request_id),
        Err(SubmitError::QueueFull) => {
            state
                .registry
                .counter(names::SERVE_BACKPRESSURE_REJECTED)
                .incr();
            error_response(429, "scoring queue is full; retry shortly", &request_id)
                .with_header("Retry-After", "1")
        }
        Err(SubmitError::Overloaded) => {
            state.registry.counter(names::SERVE_LOAD_SHED).incr();
            error_response(503, "server is past its in-flight cap", &request_id)
                .with_header("Retry-After", "1")
        }
        Err(SubmitError::WorkerGone) => error_response(500, "scoring worker is gone", &request_id),
    }
}

fn create_session(state: &AppState, request: &Request) -> Response {
    let header_id = request.header("x-request-id").unwrap_or("-").to_string();
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) if body.trim().is_empty() => "{}",
        Ok(body) => body,
        Err(_) => return error_response(400, "request body is not UTF-8", &header_id),
    };
    let parsed = match serde_json::from_str(body) {
        Ok(parsed) => parsed,
        Err(e) => return error_response(400, &format!("bad JSON: {e}"), &header_id),
    };
    session_reply(request, state.sessions.create(parsed))
}

fn session_reply(
    request: &Request,
    outcome: Result<crate::api::SessionInfo, ServeError>,
) -> Response {
    let request_id = request.header("x-request-id").unwrap_or("-");
    match outcome {
        Ok(info) => Response::json(200, serde_json::to_string(&info).unwrap_or_default()),
        Err(e) => error_response(e.status(), &e.to_string(), request_id),
    }
}

fn method_not_allowed(request: &Request) -> Response {
    let request_id = request.header("x-request-id").unwrap_or("-");
    error_response(
        405,
        &format!("method {} not allowed here", request.method),
        request_id,
    )
}

fn not_found(request: &Request) -> Response {
    let request_id = request.header("x-request-id").unwrap_or("-");
    error_response(
        404,
        &format!("no route for {}", request.route_path()),
        request_id,
    )
}

fn error_response(status: u16, error: &str, request_id: &str) -> Response {
    let body = ErrorBody {
        status,
        error: error.to_string(),
        request_id: request_id.to_string(),
    };
    Response::json(status, serde_json::to_string(&body).unwrap_or_default())
}
