//! `lithohd-serve` — the hotspot scoring and labelling-session server.
//!
//! Boots a [`hotspot_serve::ServeApp`]: trains the scorer on a generated
//! benchmark, then serves `/score`, `/session`, `/healthz`, `/readyz`, and
//! `/metrics` until killed. Prints the bound address on stdout (one line,
//! `listening on <addr>`) so harnesses binding port 0 can discover it.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use hotspot_serve::{BatchOptions, BootstrapConfig, ServeApp, ServeOptions};
use hotspot_telemetry::{self as telemetry, ConsoleSink, EnvFilter};

const USAGE: &str = "usage: lithohd-serve [options]\n\
  --addr <host:port>      bind address (default 127.0.0.1:9185; port 0 = OS pick)\n\
  --threads <n>           HTTP worker threads (default 4)\n\
  --sessions <dir>        session state root (default serve-sessions)\n\
  --benchmark <name>      bootstrap benchmark (default iccad12)\n\
  --scale <f>             bootstrap population scale (default 0.004)\n\
  --seed <n>              bootstrap seed (default 7)\n\
  --epochs <n>            bootstrap training epochs (default 40)\n\
  --max-batch <n>         micro-batch clip cap (default 32)\n\
  --max-delay-ms <n>      micro-batch flush deadline (default 2)\n\
  --queue <n>             bounded queue depth in jobs (default 256)\n\
  --inflight <n>          load-shed beyond this many in-flight (default 512)";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("lithohd-serve: {message}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut options = ServeOptions {
        addr: "127.0.0.1:9185".to_string(),
        ..ServeOptions::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => options.addr = value()?,
            "--threads" => options.threads = parse(&flag, &value()?)?,
            "--sessions" => options.sessions_dir = value()?.into(),
            "--benchmark" => options.bootstrap.benchmark = value()?,
            "--scale" => options.bootstrap.scale = parse(&flag, &value()?)?,
            "--seed" => options.bootstrap.seed = parse(&flag, &value()?)?,
            "--epochs" => options.bootstrap.epochs = parse(&flag, &value()?)?,
            "--max-batch" => options.batch.max_batch = parse(&flag, &value()?)?,
            "--max-delay-ms" => {
                options.batch.max_delay = Duration::from_millis(parse(&flag, &value()?)?);
            }
            "--queue" => options.batch.queue_depth = parse(&flag, &value()?)?,
            "--inflight" => options.batch.max_inflight = parse(&flag, &value()?)?,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let batch_options: BatchOptions = options.batch.clone();
    let bootstrap: BootstrapConfig = options.bootstrap.clone();
    telemetry::add_sink(Arc::new(ConsoleSink::new(EnvFilter::from_env())));
    eprintln!(
        "training scorer on {} (scale {}, seed {}, {} epochs)…",
        bootstrap.benchmark, bootstrap.scale, bootstrap.seed, bootstrap.epochs
    );
    let app = ServeApp::start(options).map_err(|e| e.to_string())?;
    eprintln!(
        "micro-batching up to {} clips per {}ms flush",
        batch_options.max_batch,
        batch_options.max_delay.as_millis()
    );
    println!("listening on {}", app.local_addr());
    // Serve until killed; the request loop runs on its own threads.
    loop {
        std::thread::park();
    }
}

fn parse<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse()
        .map_err(|e| format!("bad value for {flag}: {e}"))
}
