//! Batching transparency over real sockets: 32 concurrent clients hammering
//! `/score` must each receive responses bit-identical to scoring their rows
//! alone, and the admission-control layers must speak proper HTTP (429/503
//! with `Retry-After`, JSON error bodies echoing the request id).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use hotspot_serve::{
    BatchOptions, BootstrapConfig, ErrorBody, HttpClient, MicroBatcher, ScoreResponse, ServeApp,
    ServeOptions, SubmitError, SystemClock,
};
use hotspot_telemetry::MetricsRegistry;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lithohd-serve-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn tiny_bootstrap() -> BootstrapConfig {
    BootstrapConfig {
        benchmark: "iccad16_2".to_string(),
        scale: 0.25,
        seed: 11,
        epochs: 2,
    }
}

/// Deterministic pseudo-random feature row for (client, request, row).
fn row(dim: usize, client: usize, request: usize, index: usize) -> Vec<f32> {
    (0..dim)
        .map(|c| (((client * 9973 + request * 131 + index * 17 + c) as f32) * 0.0137).sin())
        .collect()
}

fn score_body(request_id: &str, rows: &[Vec<f32>]) -> String {
    let features: Vec<String> = rows
        .iter()
        .map(|r| {
            let cells: Vec<String> = r.iter().map(|v| format!("{}", *v as f64)).collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    format!(
        r#"{{"request_id":"{request_id}","features":[{}]}}"#,
        features.join(",")
    )
}

#[test]
fn thirty_two_clients_get_bitwise_batch_size_one_responses() {
    let mut app = ServeApp::start(ServeOptions {
        threads: 8,
        batch: BatchOptions {
            max_batch: 16,
            max_delay: Duration::from_millis(3),
            ..BatchOptions::default()
        },
        bootstrap: tiny_bootstrap(),
        sessions_dir: scratch("batching-sessions"),
        ..ServeOptions::default()
    })
    .expect("start app");
    let addr = app.local_addr().to_string();
    let scorer = app.scorer();
    let dim = scorer.input_dim();

    const CLIENTS: usize = 32;
    const REQUESTS: usize = 3;
    let mut handles = Vec::with_capacity(CLIENTS);
    for client in 0..CLIENTS {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut http =
                HttpClient::connect(&addr, Duration::from_secs(30)).expect("connect client");
            let mut collected = Vec::new();
            for request in 0..REQUESTS {
                let rows: Vec<Vec<f32>> = (0..2).map(|i| row(dim, client, request, i)).collect();
                let request_id = format!("c{client}-r{request}");
                let response = http
                    .post_json("/score", &score_body(&request_id, &rows))
                    .expect("post /score");
                assert_eq!(response.status, 200, "body: {}", response.body);
                let parsed: ScoreResponse =
                    serde_json::from_str(&response.body).expect("parse score response");
                assert_eq!(parsed.request_id, request_id, "request id echo");
                assert_eq!(parsed.scores.len(), rows.len(), "per-request order/shape");
                collected.push((rows, parsed.scores));
            }
            collected
        }));
    }

    for handle in handles {
        for (rows, scores) in handle.join().expect("client thread") {
            for (row, got) in rows.iter().zip(&scores) {
                let reference = scorer
                    .score_rows(std::slice::from_ref(row))
                    .expect("reference scoring");
                let want = &reference[0];
                assert_eq!(
                    got.probability.to_bits(),
                    want.probability.to_bits(),
                    "coalesced probability differs from batch-size-1"
                );
                let got_logits: Vec<u32> = got.logits.iter().map(|v| v.to_bits()).collect();
                let want_logits: Vec<u32> = want.logits.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got_logits, want_logits, "logit bits differ");
                let got_scaled: Vec<u32> = got.scaled_logits.iter().map(|v| v.to_bits()).collect();
                let want_scaled: Vec<u32> =
                    want.scaled_logits.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got_scaled, want_scaled, "scaled-logit bits differ");
                assert_eq!(got.bvsb.to_bits(), want.bvsb.to_bits(), "bvsb bits differ");
                assert_eq!(
                    got.uncertainty.to_bits(),
                    want.uncertainty.to_bits(),
                    "uncertainty bits differ"
                );
            }
        }
    }

    // The serving metrics made it to /metrics in Prometheus shape.
    let mut http = HttpClient::connect(&addr, Duration::from_secs(10)).expect("connect metrics");
    let metrics = http.get("/metrics").expect("get /metrics");
    assert_eq!(metrics.status, 200);
    for series in [
        "serve_score_requests",
        "serve_batch_flushes",
        "serve_http_requests",
    ] {
        assert!(
            metrics.body.contains(series),
            "metrics output is missing {series}"
        );
    }

    app.shutdown();
}

#[test]
fn admission_control_and_error_bodies_speak_http() {
    let mut app = ServeApp::start(ServeOptions {
        threads: 2,
        batch: BatchOptions {
            max_inflight: 0, // every submission sheds deterministically
            ..BatchOptions::default()
        },
        bootstrap: tiny_bootstrap(),
        sessions_dir: scratch("admission-sessions"),
        ..ServeOptions::default()
    })
    .expect("start app");
    let addr = app.local_addr().to_string();
    let scorer = app.scorer();
    let dim = scorer.input_dim();
    let mut http = HttpClient::connect(&addr, Duration::from_secs(30)).expect("connect");

    // Past the in-flight cap: 503 + Retry-After, error body echoes the id.
    let response = http
        .post_json("/score", &score_body("rid-7", &[row(dim, 0, 0, 0)]))
        .expect("post /score");
    assert_eq!(response.status, 503);
    assert_eq!(response.header("retry-after"), Some("1"));
    let body: ErrorBody = serde_json::from_str(&response.body).expect("parse error body");
    assert_eq!(body.status, 503);
    assert_eq!(body.request_id, "rid-7");

    // Wrong method on a known path: 405 JSON, id taken from the header.
    let response = http.request("GET", "/score", None).expect("GET /score");
    assert_eq!(response.status, 405);
    let body: ErrorBody = serde_json::from_str(&response.body).expect("parse 405 body");
    assert_eq!(body.status, 405);

    // Unknown path: 404 JSON.
    let response = http.get("/no-such-route").expect("get unknown");
    assert_eq!(response.status, 404);
    let body: ErrorBody = serde_json::from_str(&response.body).expect("parse 404 body");
    assert_eq!(body.status, 404);

    // Malformed JSON: 400, id echoed from the x-request-id header.
    let stream_id = "hdr-3";
    let raw = format!(
        "POST /score HTTP/1.1\r\nHost: t\r\nx-request-id: {stream_id}\r\nConnection: close\r\nContent-Type: application/json\r\nContent-Length: 9\r\n\r\nnot json!"
    );
    let response = {
        use std::io::Write;
        let mut tcp = std::net::TcpStream::connect(&addr).expect("raw connect");
        tcp.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        tcp.write_all(raw.as_bytes()).expect("write raw");
        let mut buf = String::new();
        use std::io::Read;
        tcp.take(65536).read_to_string(&mut buf).ok();
        buf
    };
    assert!(response.starts_with("HTTP/1.1 400"), "got: {response}");
    assert!(
        response.contains(&format!(r#""request_id":"{stream_id}""#)),
        "400 body must echo x-request-id, got: {response}"
    );

    // Bad shape: wrong feature width is a 400 with the body's request id.
    let response = http
        .post_json("/score", r#"{"request_id":"rid-9","features":[[1.0,2.0]]}"#)
        .expect("post bad width");
    assert_eq!(response.status, 400);
    let body: ErrorBody = serde_json::from_str(&response.body).expect("parse width body");
    assert_eq!(body.request_id, "rid-9");

    // Queue backpressure, deterministically: a 1-slot queue behind a batcher
    // that is busy with a multi-second forward pass refuses the next job
    // with QueueFull (the HTTP layer maps this to 429 + Retry-After).
    let batcher = Arc::new(MicroBatcher::start(
        Arc::clone(&scorer),
        Arc::new(SystemClock::new()),
        BatchOptions {
            queue_depth: 1,
            max_batch: 1,
            max_delay: Duration::ZERO,
            max_inflight: 64,
        },
        Arc::new(MetricsRegistry::default()),
    ));
    let big: Vec<Vec<f32>> = (0..20_000).map(|i| row(dim, 9, 9, i)).collect();
    let busy = {
        let batcher = Arc::clone(&batcher);
        std::thread::spawn(move || batcher.score(big).expect("big job").expect("big scores"))
    };
    std::thread::sleep(Duration::from_millis(300)); // batcher picked the big job up
    let queued = {
        let batcher = Arc::clone(&batcher);
        let row = row(dim, 8, 8, 0);
        std::thread::spawn(move || batcher.score(vec![row]).expect("queued job"))
    };
    std::thread::sleep(Duration::from_millis(100)); // the 1-slot queue is now full
    assert_eq!(
        batcher.score(vec![row(dim, 7, 7, 0)]).unwrap_err(),
        SubmitError::QueueFull,
        "third submission must hit queue backpressure"
    );
    assert_eq!(busy.join().expect("big thread").len(), 20_000);
    assert!(queued.join().expect("queued thread").is_ok());
    batcher.shutdown();

    app.shutdown();
}
