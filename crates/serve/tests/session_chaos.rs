//! Kill/resume chaos for labelling sessions, cross-process: a campaign
//! stepped on one server, with the server SIGKILLed mid-campaign and a
//! fresh process resuming from the same session directory, must produce a
//! canonical journal byte-identical to an uninterrupted campaign — and the
//! same final accuracy and Litho#. Concurrent `/score` traffic during the
//! interrupted campaign must not perturb the journal (scoring runs on
//! silenced threads).

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use hotspot_serve::{HttpClient, ScoreResponse, SessionInfo};

/// A step runs benchmark generation plus a training iteration in a debug
/// build; be generous before declaring the server wedged.
const STEP_TIMEOUT: Duration = Duration::from_secs(600);

const SESSION_BODY: &str =
    r#"{"benchmark":"iccad12","scale":0.004,"seed":7,"method":"ours","workers":2,"iterations":3}"#;

struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn boot(sessions: &Path) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_lithohd-serve"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--threads",
                "2",
                "--benchmark",
                "iccad16_2",
                "--scale",
                "0.25",
                "--seed",
                "11",
                "--epochs",
                "2",
                "--sessions",
            ])
            .arg(sessions)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn lithohd-serve");
        let stdout = child.stdout.take().expect("child stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read listen line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected boot line: {line:?}"))
            .to_string();
        Server { child, addr }
    }

    fn client(&self) -> HttpClient {
        HttpClient::connect(&self.addr, STEP_TIMEOUT).expect("connect")
    }

    /// SIGKILL — no shutdown hooks run, exactly like a crashed box.
    fn kill(mut self) {
        self.child.kill().expect("kill server");
        self.child.wait().expect("reap server");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn step(http: &mut HttpClient, session: &str) -> SessionInfo {
    let response = http
        .post_json(&format!("/session/{session}/step"), "")
        .expect("post step");
    assert_eq!(response.status, 200, "step failed: {}", response.body);
    serde_json::from_str(&response.body).expect("parse step info")
}

fn create_session(http: &mut HttpClient) -> SessionInfo {
    let response = http.post_json("/session", SESSION_BODY).expect("create");
    assert_eq!(response.status, 200, "create failed: {}", response.body);
    serde_json::from_str(&response.body).expect("parse session info")
}

#[test]
fn killed_and_resumed_campaign_matches_uninterrupted_campaign_exactly() {
    let scratch =
        std::env::temp_dir().join(format!("lithohd-session-chaos-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    std::fs::create_dir_all(&scratch).expect("create scratch");
    let dir_a: PathBuf = scratch.join("sessions-a");
    let dir_b: PathBuf = scratch.join("sessions-b");

    // Uninterrupted reference: one server steps the campaign to completion.
    let server_a = Server::boot(&dir_a);
    let mut http = server_a.client();
    let created = create_session(&mut http);
    assert_eq!(created.iteration, 0);
    assert!(!created.done);
    let session = created.session.clone();
    let mut last = created;
    for expect_iteration in 1..=3usize {
        last = step(&mut http, &session);
        assert_eq!(last.iteration, expect_iteration);
        assert_eq!(last.done, expect_iteration == 3);
    }
    let reference_accuracy = last.accuracy.expect("final accuracy");
    let reference_litho = last.litho.expect("final litho");
    let journal_a =
        std::fs::read(dir_a.join(&session).join("journal.jsonl")).expect("read journal A");
    assert!(!journal_a.is_empty(), "canonical journal must not be empty");
    server_a.kill();

    // Interrupted campaign: step once with concurrent /score traffic, then
    // SIGKILL the server between steps.
    let server_b = Server::boot(&dir_b);
    let mut http = server_b.client();
    let created = create_session(&mut http);
    assert_eq!(created.session, session, "session ids are deterministic");
    let addr = server_b.addr.clone();
    let noise = std::thread::spawn(move || {
        let mut http = HttpClient::connect(&addr, STEP_TIMEOUT).expect("noise connect");
        // Raster scoring exercises feature extraction on handler threads
        // while the session step is journalling on the runner thread.
        let body = format!(
            r#"{{"request_id":"noise","rasters":[{{"width":8,"height":8,"pixels":[{}]}}]}}"#,
            vec!["0.5"; 64].join(",")
        );
        for _ in 0..5 {
            let response = http.post_json("/score", &body).expect("noise score");
            assert_eq!(response.status, 200, "noise body: {}", response.body);
            let parsed: ScoreResponse =
                serde_json::from_str(&response.body).expect("parse noise response");
            assert_eq!(parsed.scores.len(), 1);
        }
    });
    let info = step(&mut http, &session);
    assert_eq!(info.iteration, 1);
    noise.join().expect("noise thread");
    server_b.kill();

    // Fresh process, same session dir: resume and finish.
    let server_b2 = Server::boot(&dir_b);
    let mut http = server_b2.client();
    let status: SessionInfo = {
        let response = http
            .get(&format!("/session/{session}"))
            .expect("get status");
        assert_eq!(response.status, 200, "status body: {}", response.body);
        serde_json::from_str(&response.body).expect("parse status")
    };
    assert_eq!(status.iteration, 1, "resume sees the committed iteration");
    assert!(!status.done);
    let info = step(&mut http, &session);
    assert_eq!(info.iteration, 2);
    let info = step(&mut http, &session);
    assert!(info.done, "third step finishes the campaign");
    assert_eq!(info.accuracy.expect("resumed accuracy"), reference_accuracy);
    assert_eq!(info.litho.expect("resumed litho"), reference_litho);

    // Stepping a finished campaign is a conflict, not a rerun.
    let response = http
        .post_json(&format!("/session/{session}/step"), "")
        .expect("post extra step");
    assert_eq!(response.status, 409, "body: {}", response.body);
    server_b2.kill();

    // The stitched journal (killed prefix + resumed suffix) must equal the
    // uninterrupted journal byte for byte.
    let journal_b =
        std::fs::read(dir_b.join(&session).join("journal.jsonl")).expect("read journal B");
    assert_eq!(
        journal_a, journal_b,
        "resumed canonical journal differs from the uninterrupted campaign"
    );

    // Canonical journals stay free of serving, sharding, and checkpoint
    // provenance — and of resume markers.
    let text = String::from_utf8(journal_b).expect("journal is UTF-8");
    for banned in [
        "serve.",
        "loadgen.",
        "shard.",
        "checkpoint.",
        "\"type\":\"resume\"",
    ] {
        assert!(
            !text.contains(banned),
            "canonical journal leaked {banned:?}"
        );
    }

    std::fs::remove_dir_all(&scratch).ok();
}
