use crate::{kmeans_plus_plus, GmmError};
use serde::{Deserialize, Serialize};

/// Configuration of an EM fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GmmConfig {
    /// Number of mixture components.
    pub components: usize,
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the mean log-likelihood improvement.
    pub tol: f64,
    /// Seed for the k-means++ initialisation.
    pub seed: u64,
    /// Variance floor added to every dimension (regularisation).
    pub reg_covar: f64,
}

impl Default for GmmConfig {
    fn default() -> Self {
        GmmConfig {
            components: 2,
            max_iters: 100,
            tol: 1e-4,
            seed: 0,
            reg_covar: 1e-6,
        }
    }
}

/// A fitted diagonal-covariance Gaussian mixture.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianMixture {
    dim: usize,
    weights: Vec<f64>,
    means: Vec<f64>,     // k × dim
    variances: Vec<f64>, // k × dim
}

impl GaussianMixture {
    /// Fits a mixture to row-major `data` of feature width `dim` by EM.
    ///
    /// # Errors
    ///
    /// Returns [`GmmError::BadConfig`] for zero components/dim/iterations,
    /// [`GmmError::BadDataShape`] when `data.len()` is not a multiple of
    /// `dim`, and [`GmmError::TooFewSamples`] when there are fewer rows than
    /// components.
    pub fn fit(data: &[f32], dim: usize, config: &GmmConfig) -> Result<Self, GmmError> {
        if config.components == 0 {
            return Err(GmmError::BadConfig {
                detail: "component count must be positive",
            });
        }
        if dim == 0 {
            return Err(GmmError::BadConfig {
                detail: "dimension must be positive",
            });
        }
        if config.max_iters == 0 {
            return Err(GmmError::BadConfig {
                detail: "iteration count must be positive",
            });
        }
        if data.is_empty() || !data.len().is_multiple_of(dim) {
            return Err(GmmError::BadDataShape {
                len: data.len(),
                dim,
            });
        }
        let n = data.len() / dim;
        let k = config.components;
        if n < k {
            return Err(GmmError::TooFewSamples {
                samples: n,
                components: k,
            });
        }

        // Initialise means via k-means++, variances from the global spread.
        let means_init = kmeans_plus_plus(data, dim, k, config.seed);
        let mut means: Vec<f64> = means_init.iter().map(|&v| v as f64).collect();
        let mut global_var = vec![0.0f64; dim];
        let mut global_mean = vec![0.0f64; dim];
        for row in data.chunks_exact(dim) {
            for (m, &v) in global_mean.iter_mut().zip(row) {
                *m += v as f64;
            }
        }
        for m in &mut global_mean {
            *m /= n as f64;
        }
        for row in data.chunks_exact(dim) {
            for ((s, &v), m) in global_var.iter_mut().zip(row).zip(&global_mean) {
                *s += (v as f64 - m).powi(2);
            }
        }
        for s in &mut global_var {
            *s = (*s / n as f64).max(config.reg_covar) + config.reg_covar;
        }
        let mut variances: Vec<f64> = (0..k).flat_map(|_| global_var.iter().copied()).collect();
        let mut weights = vec![1.0 / k as f64; k];

        let _fit_span = hotspot_telemetry::span(hotspot_telemetry::names::SPAN_GMM_FIT)
            .with("samples", n as u64)
            .with("components", k as u64);
        let mut resp = vec![0.0f64; n * k];
        let mut previous_ll = f64::NEG_INFINITY;
        let mut em_iterations = 0u64;
        for _ in 0..config.max_iters {
            em_iterations += 1;
            // E-step: responsibilities and data log-likelihood.
            let mut total_ll = 0.0f64;
            for (i, row) in data.chunks_exact(dim).enumerate() {
                let r = &mut resp[i * k..(i + 1) * k];
                let mut max_log = f64::NEG_INFINITY;
                for c in 0..k {
                    let lp = weights[c].max(1e-300).ln()
                        + log_gaussian_diag(
                            row,
                            &means[c * dim..(c + 1) * dim],
                            &variances[c * dim..(c + 1) * dim],
                        );
                    r[c] = lp;
                    max_log = max_log.max(lp);
                }
                let mut sum = 0.0f64;
                for rc in r.iter_mut() {
                    *rc = (*rc - max_log).exp();
                    sum += *rc;
                }
                for rc in r.iter_mut() {
                    *rc /= sum;
                }
                total_ll += max_log + sum.ln();
            }
            let mean_ll = total_ll / n as f64;

            // M-step.
            for c in 0..k {
                let nk: f64 = (0..n).map(|i| resp[i * k + c]).sum();
                weights[c] = (nk / n as f64).max(1e-12);
                let mean_c = &mut means[c * dim..(c + 1) * dim];
                mean_c.iter_mut().for_each(|m| *m = 0.0);
                for (i, row) in data.chunks_exact(dim).enumerate() {
                    let w = resp[i * k + c];
                    for (m, &v) in mean_c.iter_mut().zip(row) {
                        *m += w * v as f64;
                    }
                }
                let denom = nk.max(1e-12);
                for m in mean_c.iter_mut() {
                    *m /= denom;
                }
                let mean_snapshot: Vec<f64> = means[c * dim..(c + 1) * dim].to_vec();
                let var_c = &mut variances[c * dim..(c + 1) * dim];
                var_c.iter_mut().for_each(|v| *v = 0.0);
                for (i, row) in data.chunks_exact(dim).enumerate() {
                    let w = resp[i * k + c];
                    for ((s, &v), m) in var_c.iter_mut().zip(row).zip(&mean_snapshot) {
                        *s += w * (v as f64 - m).powi(2);
                    }
                }
                for s in var_c.iter_mut() {
                    *s = (*s / denom).max(1e-12) + config.reg_covar;
                }
            }
            // Renormalise weights.
            let wsum: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= wsum;
            }

            if (mean_ll - previous_ll).abs() < config.tol {
                break;
            }
            previous_ll = mean_ll;
        }
        hotspot_telemetry::counter(hotspot_telemetry::names::GMM_EM_ITERATIONS).add(em_iterations);
        record_gmm_em_kernel(em_iterations, n, k, dim);
        hotspot_telemetry::debug(
            "gmm.model",
            "EM converged",
            &[
                ("em_iterations", em_iterations.into()),
                ("mean_log_likelihood", previous_ll.into()),
            ],
        );

        Ok(GaussianMixture {
            dim,
            weights,
            means,
            variances,
        })
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of components.
    pub fn components(&self) -> usize {
        self.weights.len()
    }

    /// Mixture weights (sum to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Component means, row-major `k × dim`.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-component diagonal variances, row-major `k × dim`.
    pub fn variances(&self) -> &[f64] {
        &self.variances
    }

    /// Rebuilds a fitted mixture from raw parameters (as exposed by
    /// [`Self::weights`] / [`Self::means`] / [`Self::variances`]), e.g. when
    /// restoring a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`GmmError::BadConfig`] when `dim` is zero, the parameter
    /// lengths are inconsistent, or any value is non-finite (variances must
    /// also be positive).
    pub fn from_parts(
        dim: usize,
        weights: Vec<f64>,
        means: Vec<f64>,
        variances: Vec<f64>,
    ) -> Result<Self, GmmError> {
        if dim == 0 || weights.is_empty() {
            return Err(GmmError::BadConfig {
                detail: "dimension and component count must be positive",
            });
        }
        let k = weights.len();
        if means.len() != k * dim || variances.len() != k * dim {
            return Err(GmmError::BadConfig {
                detail: "means/variances length must be components × dim",
            });
        }
        if !weights.iter().all(|w| w.is_finite() && *w >= 0.0)
            || !means.iter().all(|m| m.is_finite())
            || !variances.iter().all(|v| v.is_finite() && *v > 0.0)
        {
            return Err(GmmError::BadConfig {
                detail: "parameters must be finite (variances positive)",
            });
        }
        Ok(GaussianMixture {
            dim,
            weights,
            means,
            variances,
        })
    }

    /// Log density `ln p(x)` of one sample.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != dim`.
    pub fn log_likelihood(&self, x: &[f32]) -> f64 {
        assert_eq!(x.len(), self.dim, "sample dimension mismatch");
        let k = self.components();
        let mut max_log = f64::NEG_INFINITY;
        let mut logs = Vec::with_capacity(k);
        for c in 0..k {
            let lp = self.weights[c].max(1e-300).ln()
                + log_gaussian_diag(
                    x,
                    &self.means[c * self.dim..(c + 1) * self.dim],
                    &self.variances[c * self.dim..(c + 1) * self.dim],
                );
            max_log = max_log.max(lp);
            logs.push(lp);
        }
        max_log + logs.iter().map(|&l| (l - max_log).exp()).sum::<f64>().ln()
    }

    /// Per-component posterior probabilities `p(c | x)`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != dim`.
    pub fn responsibilities(&self, x: &[f32]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "sample dimension mismatch");
        let k = self.components();
        let mut logs = Vec::with_capacity(k);
        let mut max_log = f64::NEG_INFINITY;
        for c in 0..k {
            let lp = self.weights[c].max(1e-300).ln()
                + log_gaussian_diag(
                    x,
                    &self.means[c * self.dim..(c + 1) * self.dim],
                    &self.variances[c * self.dim..(c + 1) * self.dim],
                );
            max_log = max_log.max(lp);
            logs.push(lp);
        }
        let mut sum = 0.0;
        for l in &mut logs {
            *l = (*l - max_log).exp();
            sum += *l;
        }
        logs.into_iter().map(|l| l / sum).collect()
    }

    /// Log densities of every row in a row-major data buffer.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` is not a multiple of the dimension.
    pub fn score_samples(&self, data: &[f32]) -> Vec<f64> {
        assert_eq!(
            data.len() % self.dim,
            0,
            "data is not a whole number of rows"
        );
        data.chunks_exact(self.dim)
            .map(|row| self.log_likelihood(row))
            .collect()
    }
}

/// Books one EM fit into the `kernel.gmm_em.*` performance counters
/// (ROADMAP item 1 hot loop). Calls count EM iterations; elements count
/// responsibility-matrix entries (iterations × samples × components), each
/// touched by one E-step Gaussian evaluation and two M-step accumulations
/// of roughly 8 FLOPs per feature dimension. One counter update per fit.
fn record_gmm_em_kernel(iterations: u64, samples: usize, components: usize, dim: usize) {
    use hotspot_telemetry::{counter, names};
    let elements = iterations * samples as u64 * components as u64;
    counter(names::KERNEL_GMM_EM_CALLS).add(iterations);
    counter(names::KERNEL_GMM_EM_ELEMENTS).add(elements);
    counter(names::KERNEL_GMM_EM_FLOPS).add(elements * 8 * dim as u64);
    counter(names::KERNEL_GMM_EM_BYTES).add(8 * elements * dim as u64);
}

/// Log density of a diagonal Gaussian.
fn log_gaussian_diag(x: &[f32], mean: &[f64], var: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for ((&xi, &mi), &vi) in x.iter().zip(mean).zip(var) {
        let d = xi as f64 - mi;
        acc += -0.5 * (d * d / vi + vi.ln() + (2.0 * std::f64::consts::PI).ln());
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn two_cluster_data() -> Vec<f32> {
        let mut data = Vec::new();
        for i in 0..60 {
            let jitter = (i % 7) as f32 * 0.05;
            if i % 2 == 0 {
                data.extend_from_slice(&[jitter, -jitter]);
            } else {
                data.extend_from_slice(&[8.0 + jitter, 8.0 - jitter]);
            }
        }
        data
    }

    #[test]
    fn recovers_two_clusters() {
        let data = two_cluster_data();
        let gmm = GaussianMixture::fit(&data, 2, &GmmConfig::default()).unwrap();
        let mut centres: Vec<(f64, f64)> = (0..2)
            .map(|c| (gmm.means()[c * 2], gmm.means()[c * 2 + 1]))
            .collect();
        centres.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert!(centres[0].0.abs() < 1.0, "{centres:?}");
        assert!((centres[1].0 - 8.0).abs() < 1.0, "{centres:?}");
    }

    #[test]
    fn weights_sum_to_one() {
        let gmm = GaussianMixture::fit(&two_cluster_data(), 2, &GmmConfig::default()).unwrap();
        let sum: f64 = gmm.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn outliers_score_lower() {
        let gmm = GaussianMixture::fit(&two_cluster_data(), 2, &GmmConfig::default()).unwrap();
        let inlier = gmm.log_likelihood(&[0.1, 0.0]);
        let outlier = gmm.log_likelihood(&[50.0, -50.0]);
        assert!(inlier > outlier + 10.0);
    }

    #[test]
    fn responsibilities_sum_to_one_and_pick_near_cluster() {
        let gmm = GaussianMixture::fit(&two_cluster_data(), 2, &GmmConfig::default()).unwrap();
        let r = gmm.responsibilities(&[8.0, 8.0]);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let near: usize = (0..2)
            .min_by(|&a, &b| {
                let da = (gmm.means()[a * 2] - 8.0).abs();
                let db = (gmm.means()[b * 2] - 8.0).abs();
                da.partial_cmp(&db).unwrap()
            })
            .unwrap();
        assert!(r[near] > 0.99);
    }

    #[test]
    fn from_parts_round_trips_a_fitted_model() {
        let data = two_cluster_data();
        let gmm = GaussianMixture::fit(&data, 2, &GmmConfig::default()).unwrap();
        let rebuilt = GaussianMixture::from_parts(
            gmm.dim(),
            gmm.weights().to_vec(),
            gmm.means().to_vec(),
            gmm.variances().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt, gmm);
        assert_eq!(
            rebuilt.score_samples(&data[..8]),
            gmm.score_samples(&data[..8])
        );
    }

    #[test]
    fn from_parts_rejects_bad_shapes_and_values() {
        assert!(GaussianMixture::from_parts(0, vec![1.0], vec![], vec![]).is_err());
        assert!(GaussianMixture::from_parts(2, vec![1.0], vec![0.0; 2], vec![1.0; 3]).is_err());
        assert!(GaussianMixture::from_parts(1, vec![1.0], vec![f64::NAN], vec![1.0]).is_err());
        assert!(GaussianMixture::from_parts(1, vec![1.0], vec![0.0], vec![0.0]).is_err());
    }

    #[test]
    fn score_samples_matches_pointwise() {
        let data = two_cluster_data();
        let gmm = GaussianMixture::fit(&data, 2, &GmmConfig::default()).unwrap();
        let scores = gmm.score_samples(&data[..8]);
        for (i, &s) in scores.iter().enumerate() {
            assert_eq!(s, gmm.log_likelihood(&data[i * 2..(i + 1) * 2]));
        }
    }

    #[test]
    fn single_component_matches_sample_moments() {
        let data: Vec<f32> = (0..1000).map(|i| (i % 100) as f32 / 10.0).collect();
        let gmm = GaussianMixture::fit(
            &data,
            1,
            &GmmConfig {
                components: 1,
                ..GmmConfig::default()
            },
        )
        .unwrap();
        let mean = data.iter().map(|&v| v as f64).sum::<f64>() / data.len() as f64;
        assert!((gmm.means()[0] - mean).abs() < 1e-3);
    }

    #[test]
    fn fit_is_deterministic() {
        let data = two_cluster_data();
        let a = GaussianMixture::fit(&data, 2, &GmmConfig::default()).unwrap();
        let b = GaussianMixture::fit(&data, 2, &GmmConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn error_cases() {
        let data = [1.0f32, 2.0, 3.0];
        assert!(matches!(
            GaussianMixture::fit(&data, 2, &GmmConfig::default()),
            Err(GmmError::BadDataShape { .. })
        ));
        assert!(matches!(
            GaussianMixture::fit(
                &data,
                1,
                &GmmConfig {
                    components: 0,
                    ..GmmConfig::default()
                }
            ),
            Err(GmmError::BadConfig { .. })
        ));
        assert!(matches!(
            GaussianMixture::fit(
                &data,
                1,
                &GmmConfig {
                    components: 5,
                    ..GmmConfig::default()
                }
            ),
            Err(GmmError::TooFewSamples { .. })
        ));
        assert!(matches!(
            GaussianMixture::fit(
                &data,
                3,
                &GmmConfig {
                    max_iters: 0,
                    ..GmmConfig::default()
                }
            ),
            Err(GmmError::BadConfig { .. })
        ));
    }

    #[test]
    fn degenerate_identical_data_survives() {
        // Variance floor keeps the fit finite on zero-spread data.
        let data = vec![3.0f32; 40];
        let gmm = GaussianMixture::fit(&data, 2, &GmmConfig::default()).unwrap();
        assert!(gmm.log_likelihood(&[3.0, 3.0]).is_finite());
    }

    proptest! {
        #[test]
        fn prop_likelihood_peaks_at_mean(shift in -5.0f64..5.0) {
            let data: Vec<f32> = (0..100)
                .map(|i| shift as f32 + ((i % 10) as f32 - 4.5) * 0.1)
                .collect();
            let gmm = GaussianMixture::fit(
                &data, 1,
                &GmmConfig { components: 1, ..GmmConfig::default() },
            ).unwrap();
            let at_mean = gmm.log_likelihood(&[gmm.means()[0] as f32]);
            let off = gmm.log_likelihood(&[gmm.means()[0] as f32 + 3.0]);
            prop_assert!(at_mean > off);
        }
    }
}
