use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Chooses `k` initial centroids from row-major `data` with the k-means++
/// seeding strategy (Arthur & Vassilvitskii 2007): the first centre uniformly
/// at random, each further centre with probability proportional to its
/// squared distance from the nearest chosen centre.
///
/// Returns the chosen centroids as row-major `k × dim` values.
///
/// # Panics
///
/// Panics when `data` is empty, `dim` is zero, `data.len()` is not a multiple
/// of `dim`, or fewer rows than `k` exist.
///
/// ```
/// use hotspot_gmm::kmeans_plus_plus;
/// let data = [0.0f32, 0.0, 10.0, 10.0, 0.1, 0.1, 10.1, 9.9];
/// let centres = kmeans_plus_plus(&data, 2, 2, 42);
/// assert_eq!(centres.len(), 4);
/// // The two centres land in different clusters.
/// let d = (centres[0] - centres[2]).abs() + (centres[1] - centres[3]).abs();
/// assert!(d > 5.0);
/// ```
pub fn kmeans_plus_plus(data: &[f32], dim: usize, k: usize, seed: u64) -> Vec<f32> {
    assert!(dim > 0, "dimension must be positive");
    assert!(!data.is_empty(), "data must not be empty");
    assert_eq!(data.len() % dim, 0, "data is not a whole number of rows");
    let n = data.len() / dim;
    assert!(n >= k, "need at least {k} rows, got {n}");
    assert!(k > 0, "k must be positive");

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut centres = Vec::with_capacity(k * dim);
    let first = rng.gen_range(0..n);
    centres.extend_from_slice(&data[first * dim..(first + 1) * dim]);

    let mut dist2 = vec![f64::MAX; n];
    for _ in 1..k {
        let newest = &centres[centres.len() - dim..];
        let mut total = 0.0f64;
        for i in 0..n {
            let row = &data[i * dim..(i + 1) * dim];
            let d: f64 = row
                .iter()
                .zip(newest)
                .map(|(&a, &b)| ((a - b) as f64).powi(2))
                .sum();
            if d < dist2[i] {
                dist2[i] = d;
            }
            total += dist2[i];
        }
        let chosen = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n - 1;
            for (i, &d) in dist2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        centres.extend_from_slice(&data[chosen * dim..(chosen + 1) * dim]);
    }
    centres
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn picks_k_centres() {
        let data: Vec<f32> = (0..30).map(|i| i as f32).collect();
        let centres = kmeans_plus_plus(&data, 1, 5, 0);
        assert_eq!(centres.len(), 5);
    }

    #[test]
    fn centres_are_data_points() {
        let data = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let centres = kmeans_plus_plus(&data, 2, 2, 7);
        for c in centres.chunks(2) {
            let found = data.chunks(2).any(|row| row == c);
            assert!(found, "centre {c:?} is not a data row");
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let data: Vec<f32> = (0..100).map(|i| (i * 31 % 17) as f32).collect();
        let a = kmeans_plus_plus(&data, 2, 4, 11);
        let b = kmeans_plus_plus(&data, 2, 4, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn identical_points_still_terminate() {
        let data = vec![5.0f32; 20];
        let centres = kmeans_plus_plus(&data, 2, 3, 1);
        assert_eq!(centres, vec![5.0; 6]);
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn too_few_rows_panics() {
        let _ = kmeans_plus_plus(&[1.0, 2.0], 2, 2, 0);
    }

    proptest! {
        #[test]
        fn prop_spread_clusters_get_separate_centres(offset in 20.0f32..100.0, seed in 0u64..20) {
            // Two tight clusters separated by `offset` ≫ intra-cluster spread.
            let mut data = Vec::new();
            for i in 0..20 {
                data.push((i % 5) as f32 * 0.01);
                data.push((i % 3) as f32 * 0.01);
            }
            for i in 0..20 {
                data.push(offset + (i % 5) as f32 * 0.01);
                data.push(offset + (i % 3) as f32 * 0.01);
            }
            let centres = kmeans_plus_plus(&data, 2, 2, seed);
            let gap = (centres[0] - centres[2]).abs() + (centres[1] - centres[3]).abs();
            prop_assert!(gap > offset, "centres collapsed: {centres:?}");
        }
    }
}
