use std::fmt;

/// Error type for Gaussian-mixture fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GmmError {
    /// The data buffer is not a whole number of `dim`-sized rows.
    BadDataShape {
        /// Buffer length.
        len: usize,
        /// Declared feature dimension.
        dim: usize,
    },
    /// Fewer samples than mixture components.
    TooFewSamples {
        /// Samples provided.
        samples: usize,
        /// Components requested.
        components: usize,
    },
    /// A configuration value was invalid (zero components, zero dim, …).
    BadConfig {
        /// Description of the problem.
        detail: &'static str,
    },
}

impl fmt::Display for GmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GmmError::BadDataShape { len, dim } => {
                write!(f, "data length {len} is not a multiple of dimension {dim}")
            }
            GmmError::TooFewSamples {
                samples,
                components,
            } => write!(
                f,
                "need at least as many samples ({samples}) as components ({components})"
            ),
            GmmError::BadConfig { detail } => write!(f, "invalid GMM configuration: {detail}"),
        }
    }
}

impl std::error::Error for GmmError {}
