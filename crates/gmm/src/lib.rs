//! Diagonal-covariance Gaussian mixture models fit with EM.
//!
//! Algorithm 2 of the DAC 2021 paper seeds its query pool from "posterior
//! probabilities of the unlabeled dataset" under a Gaussian mixture: clips
//! whose features are *unlikely* under the mixture (outliers of the dominant
//! non-hotspot mass) are treated as hotspot-like and queried first. This
//! crate supplies that substrate:
//!
//! * [`GaussianMixture::fit`] — k-means++ seeding followed by
//!   expectation–maximisation with diagonal covariances,
//! * [`GaussianMixture::log_likelihood`] — per-sample log density, the
//!   "posterior probability" score used to rank clips,
//! * [`GaussianMixture::responsibilities`] — per-component posteriors.
//!
//! # Example
//!
//! ```
//! use hotspot_gmm::{GaussianMixture, GmmConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two obvious clusters in 1-D.
//! let data: Vec<f32> = (0..50).map(|i| if i % 2 == 0 { 0.0 } else { 10.0 }).collect();
//! let gmm = GaussianMixture::fit(&data, 1, &GmmConfig { components: 2, ..GmmConfig::default() })?;
//! // A point near a cluster centre is far more likely than a point between them.
//! assert!(gmm.log_likelihood(&[0.1]) > gmm.log_likelihood(&[5.0]));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod error;
mod kmeans;
mod model;
mod selection;

pub use error::GmmError;
pub use kmeans::kmeans_plus_plus;
pub use model::{GaussianMixture, GmmConfig};
pub use selection::{bic, select_components, BicSweep};
