use crate::{GaussianMixture, GmmConfig, GmmError};

/// Result of a BIC model-selection sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BicSweep {
    /// `(components, bic)` for every candidate fitted, in sweep order.
    pub candidates: Vec<(usize, f64)>,
    /// The winning mixture (lowest BIC).
    pub best: GaussianMixture,
}

/// Bayesian information criterion of a fitted mixture on its training data:
/// `BIC = p·ln n − 2·ln L̂` with `p` the free-parameter count of a
/// diagonal-covariance mixture. Lower is better.
pub fn bic(gmm: &GaussianMixture, data: &[f32]) -> f64 {
    let n = (data.len() / gmm.dim()).max(1) as f64;
    let log_likelihood: f64 = gmm.score_samples(data).iter().sum();
    let k = gmm.components() as f64;
    let d = gmm.dim() as f64;
    // Weights (k−1) + means (k·d) + diagonal variances (k·d).
    let parameters = (k - 1.0) + 2.0 * k * d;
    parameters * n.ln() - 2.0 * log_likelihood
}

/// Fits mixtures for every component count in `candidates` and returns the
/// BIC-optimal one. Algorithm 2's query pool quality depends on how well
/// the mixture captures the clip population; the paper fixes the component
/// count, this helper picks it from the data.
///
/// # Errors
///
/// Returns [`GmmError::BadConfig`] for an empty candidate list and
/// propagates fit errors (a candidate larger than the sample count fails).
pub fn select_components(
    data: &[f32],
    dim: usize,
    candidates: &[usize],
    config: &GmmConfig,
) -> Result<BicSweep, GmmError> {
    if candidates.is_empty() {
        return Err(GmmError::BadConfig {
            detail: "candidate list must not be empty",
        });
    }
    let mut scored = Vec::with_capacity(candidates.len());
    let mut best: Option<(f64, GaussianMixture)> = None;
    for &components in candidates {
        let gmm = GaussianMixture::fit(
            data,
            dim,
            &GmmConfig {
                components,
                ..config.clone()
            },
        )?;
        let score = bic(&gmm, data);
        scored.push((components, score));
        let better = best.as_ref().is_none_or(|(b, _)| score < *b);
        if better {
            best = Some((score, gmm));
        }
    }
    let Some((_, best)) = best else {
        // Unreachable in practice: the empty-list guard above means the fit
        // loop ran at least once. Kept as a typed error, not a panic.
        return Err(GmmError::BadConfig {
            detail: "candidate list must not be empty",
        });
    };
    Ok(BicSweep {
        candidates: scored,
        best,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated 2-D clusters.
    fn three_cluster_data() -> Vec<f32> {
        let mut data = Vec::new();
        for i in 0..90 {
            let jitter = (i % 5) as f32 * 0.08;
            match i % 3 {
                0 => data.extend_from_slice(&[jitter, jitter]),
                1 => data.extend_from_slice(&[10.0 + jitter, jitter]),
                _ => data.extend_from_slice(&[5.0 + jitter, 12.0 - jitter]),
            }
        }
        data
    }

    #[test]
    fn bic_prefers_the_true_component_count() {
        let data = three_cluster_data();
        let sweep = select_components(&data, 2, &[1, 2, 3, 4, 5], &GmmConfig::default()).unwrap();
        assert_eq!(sweep.best.components(), 3, "{:?}", sweep.candidates);
    }

    #[test]
    fn bic_penalises_extra_components_on_unimodal_data() {
        // Genuinely Gaussian samples (Box–Muller over a seeded stream) — a
        // discrete lattice would let extra components win by collapsing onto
        // spikes.
        use rand::Rng;
        use rand_chacha::rand_core::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let data: Vec<f32> = (0..200)
            .map(|_| {
                let u1: f64 = 1.0 - rng.gen::<f64>();
                let u2: f64 = rng.gen();
                ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
            })
            .collect();
        let sweep = select_components(&data, 1, &[1, 4], &GmmConfig::default()).unwrap();
        assert_eq!(sweep.best.components(), 1, "{:?}", sweep.candidates);
    }

    #[test]
    fn sweep_records_every_candidate() {
        let data = three_cluster_data();
        let sweep = select_components(&data, 2, &[2, 3], &GmmConfig::default()).unwrap();
        assert_eq!(sweep.candidates.len(), 2);
        assert_eq!(sweep.candidates[0].0, 2);
        assert!(sweep.candidates.iter().all(|&(_, b)| b.is_finite()));
    }

    #[test]
    fn empty_candidates_rejected() {
        assert!(matches!(
            select_components(&[1.0, 2.0], 1, &[], &GmmConfig::default()),
            Err(GmmError::BadConfig { .. })
        ));
    }

    #[test]
    fn oversized_candidate_propagates_fit_error() {
        assert!(select_components(&[1.0, 2.0], 1, &[5], &GmmConfig::default()).is_err());
    }
}
