//! The on-disk checkpoint container: a magic-tagged, versioned section file
//! where every section payload is protected by its own CRC32.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! +--------------------------------------------------------------+
//! | magic  "LITHOCKP"                                  (8 bytes) |
//! | format version                                     (u32)     |
//! | section count                                      (u32)     |
//! +---- per section ---------------------------------------------+
//! | name length (u16) | name bytes (UTF-8)                       |
//! | payload length    (u64)                                      |
//! | payload CRC32     (u32)                                      |
//! | payload bytes                                                |
//! +--------------------------------------------------------------+
//! ```
//!
//! Decoding validates the magic, the version, every declared length against
//! the bytes actually present, and every CRC — a truncation or bit flip at
//! any offset yields a [`StoreError`], never a panic or a silently wrong
//! value.

use crate::codec::{crc32, ByteReader, ByteWriter};
use crate::StoreError;

/// First 8 bytes of every checkpoint file.
pub const MAGIC: [u8; 8] = *b"LITHOCKP";

/// Current checkpoint format version. Bump on any layout change; readers
/// reject versions they do not understand rather than guessing.
pub const FORMAT_VERSION: u32 = 1;

/// An in-memory checkpoint file: an ordered list of named, independently
/// checksummed sections.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CheckpointFile {
    sections: Vec<(String, Vec<u8>)>,
}

impl CheckpointFile {
    /// An empty file with no sections.
    pub fn new() -> Self {
        CheckpointFile::default()
    }

    /// Appends a named section. Names must be unique within a file; the
    /// last writer wins on decode lookup, so `put` replaces an existing
    /// section of the same name instead of duplicating it.
    pub fn put(&mut self, name: &str, payload: Vec<u8>) {
        if let Some(slot) = self.sections.iter_mut().find(|(n, _)| n == name) {
            slot.1 = payload;
        } else {
            self.sections.push((name.to_owned(), payload));
        }
    }

    /// Looks up a section's payload by name.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_slice())
    }

    /// Like [`CheckpointFile::get`] but a missing section is an error.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingSection`] when no section has that name.
    pub fn require(&self, name: &str) -> Result<&[u8], StoreError> {
        self.get(name).ok_or_else(|| StoreError::MissingSection {
            name: name.to_owned(),
        })
    }

    /// Section names in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// Serialises the file to its on-disk byte representation.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(FORMAT_VERSION);
        w.put_u32(self.sections.len() as u32);
        for (name, payload) in &self.sections {
            w.put_u16(name.len() as u16);
            for &b in name.as_bytes() {
                w.put_u8(b);
            }
            w.put_u64(payload.len() as u64);
            w.put_u32(crc32(payload));
            for &b in payload {
                w.put_u8(b);
            }
        }
        let mut bytes = Vec::with_capacity(MAGIC.len() + w.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&w.into_bytes());
        bytes
    }

    /// Parses and fully validates an on-disk byte representation.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadMagic`], [`StoreError::UnsupportedVersion`],
    /// [`StoreError::Truncated`], [`StoreError::CrcMismatch`], or
    /// [`StoreError::Corrupt`] — decoding never panics on any input.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let mut r = ByteReader::new(&bytes[MAGIC.len()..]);
        let version = r.get_u32("format version")?;
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        let count = r.get_u32("section count")? as usize;
        let mut sections = Vec::new();
        for _ in 0..count {
            let name_len = r.get_u16("section name length")? as usize;
            let name_bytes = r.get_raw(name_len, "section name")?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| StoreError::Corrupt {
                    detail: "section name is not UTF-8".to_owned(),
                })?
                .to_owned();
            let payload_len = r.get_usize("section payload length")?;
            let declared_crc = r.get_u32("section crc")?;
            let payload = r.get_raw(payload_len, "section payload")?;
            if crc32(payload) != declared_crc {
                return Err(StoreError::CrcMismatch { section: name });
            }
            if sections.iter().any(|(n, _): &(String, _)| *n == name) {
                return Err(StoreError::Corrupt {
                    detail: format!("duplicate section `{name}`"),
                });
            }
            sections.push((name, payload.to_vec()));
        }
        r.finish("checkpoint file")?;
        Ok(CheckpointFile { sections })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointFile {
        let mut file = CheckpointFile::new();
        file.put("meta", vec![1, 2, 3, 4]);
        file.put("model", vec![9; 100]);
        file.put("empty", Vec::new());
        file
    }

    #[test]
    fn encode_decode_round_trips() {
        let file = sample();
        let decoded = CheckpointFile::decode(&file.encode()).unwrap();
        assert_eq!(decoded, file);
        assert_eq!(decoded.get("meta"), Some(&[1u8, 2, 3, 4][..]));
        assert_eq!(decoded.get("empty"), Some(&[][..]));
        assert!(decoded.get("absent").is_none());
        assert!(matches!(
            decoded.require("absent"),
            Err(StoreError::MissingSection { .. })
        ));
    }

    #[test]
    fn put_replaces_existing_section() {
        let mut file = sample();
        file.put("meta", vec![7]);
        assert_eq!(file.get("meta"), Some(&[7u8][..]));
        assert_eq!(file.section_names().count(), 3);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(sample().encode(), sample().encode());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample().encode();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            CheckpointFile::decode(&bytes),
            Err(StoreError::BadMagic)
        ));
        assert!(matches!(
            CheckpointFile::decode(b"LIT"),
            Err(StoreError::BadMagic)
        ));
    }

    #[test]
    fn future_versions_are_rejected() {
        let mut bytes = sample().encode();
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            CheckpointFile::decode(&bytes),
            Err(StoreError::UnsupportedVersion { found }) if found == FORMAT_VERSION + 1
        ));
    }

    #[test]
    fn payload_corruption_is_detected_by_crc() {
        let file = sample();
        let clean = file.encode();
        // Flip one bit in every byte position past the header; decode must
        // fail (CRC/structure) or, if it succeeds, must not equal the
        // original — no silent corruption.
        for pos in MAGIC.len()..clean.len() {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x01;
            if let Ok(decoded) = CheckpointFile::decode(&bytes) {
                assert_ne!(decoded, file, "undetected flip at byte {pos}");
            }
        }
    }

    #[test]
    fn truncation_at_every_offset_errors_cleanly() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(CheckpointFile::decode(&bytes[..cut]).is_err());
        }
    }
}
