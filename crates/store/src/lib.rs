//! Durable run-state persistence for the hotspot-detection workspace.
//!
//! An active-sampling experiment is expensive to interrupt: every labelled
//! clip was paid for in lithography simulations (the Litho# budget of
//! Eq. 2), and the run's determinism contract means a restart from scratch
//! re-bills every one of them. This crate makes runs resumable:
//!
//! * [`codec`] — a deterministic little-endian binary codec (no external
//!   dependencies, floats as raw IEEE-754 bits) plus the CRC32 used for
//!   integrity.
//! * [`Snapshot`] / [`Restore`] — (de)serialisation traits implemented for
//!   every piece of run state: model weights and optimiser moments, the
//!   calibrated temperature, mixture parameters, the dataset partition, the
//!   RNG keystream position, the oracle cache and fault meters, and
//!   cumulative telemetry.
//! * [`CheckpointFile`] — a magic-tagged, versioned section container where
//!   every section payload carries its own CRC32.
//! * [`CheckpointStore`] — a directory of checkpoints committed via
//!   write-to-temp + fsync + rename, with `keep_last` retention and
//!   fall-back-to-newest-valid recovery from torn writes.
//! * [`CheckpointBundle`] — the full durable state of an experiment
//!   (framework checkpoint + metrics + journal position + harness
//!   progress), mapped onto named sections.
//!
//! The store layer emits `checkpoint.saves`, `checkpoint.bytes`, and
//! `checkpoint.corrupt_skipped` metrics; the harness that restores a bundle
//! is expected to increment `checkpoint.resumes`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod bundle;
pub mod codec;
mod error;
mod file;
mod snapshot;
mod store;

pub use bundle::CheckpointBundle;
pub use codec::{crc32, ByteReader, ByteWriter};
pub use error::StoreError;
pub use file::{CheckpointFile, FORMAT_VERSION, MAGIC};
pub use snapshot::{decode_from_slice, encode_to_vec, Restore, Snapshot};
pub use store::{CheckpointStore, DEFAULT_KEEP_LAST};
