//! [`CheckpointBundle`] — the complete durable state of an interrupted
//! experiment, split across named [`CheckpointFile`] sections so each large
//! component (model weights, oracle cache, history) carries its own CRC and
//! a corruption report names the damaged part.

use hotspot_active::RunCheckpoint;
use hotspot_telemetry::{JournalPosition, MetricsState};

use crate::file::CheckpointFile;
use crate::snapshot::{decode_from_slice, encode_to_vec, RunMeta};
use crate::{Restore, Snapshot, StoreError};

/// Section names used by [`CheckpointBundle`], in file order.
const SECTIONS: [&str; 11] = [
    "meta",
    "by_score",
    "dataset",
    "model",
    "gmm",
    "rng",
    "oracle",
    "history",
    "telemetry",
    "journal",
    "progress",
];

/// Everything a process needs to continue an interrupted run exactly where
/// it left off: the framework's [`RunCheckpoint`], the cumulative telemetry
/// counters/gauges/histograms, the run-id watermark, the JSONL journal
/// position to truncate back to, and an opaque harness progress blob (the
/// bench CLIs use it to record which method/repeat runs already finished).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointBundle {
    /// The sampling loop's own state.
    pub run: RunCheckpoint,
    /// Cumulative process metrics at save time.
    pub metrics: MetricsState,
    /// Highest run id handed out at save time.
    pub run_id_watermark: u64,
    /// Journal byte/sequence position at save time, if a journal sink was
    /// active; a resumed process truncates the journal here so records the
    /// crashed process wrote after the checkpoint do not survive twice.
    pub journal: Option<JournalPosition>,
    /// Harness-defined progress bytes (may be empty).
    pub progress: Vec<u8>,
}

impl CheckpointBundle {
    /// Packs the bundle into a section file ready for
    /// [`crate::CheckpointStore::save`].
    pub fn to_file(&self) -> CheckpointFile {
        let mut file = CheckpointFile::new();
        let meta = RunMeta {
            iteration: self.run.iteration,
            seed: self.run.seed,
            run_id: self.run.run_id,
            total: self.run.total,
            temperature: self.run.temperature,
            ece_before: self.run.ece_before,
            cold_batches: self.run.cold_batches,
            oracle_calls_before: self.run.oracle_calls_before,
            stats_before: self.run.stats_before,
            fault_stats: self.run.fault_stats,
        };
        file.put("meta", encode_to_vec(&meta));
        file.put("by_score", encode_to_vec(&self.run.by_score));
        file.put("dataset", encode_to_vec(&self.run.dataset));
        file.put("model", encode_to_vec(&self.run.model));
        file.put("gmm", encode_to_vec(&self.run.gmm));
        file.put("rng", encode_to_vec(&self.run.rng));
        file.put("oracle", encode_to_vec(&self.run.oracle));
        file.put("history", encode_to_vec(&self.run.history));
        let mut telemetry = crate::ByteWriter::new();
        self.metrics.encode(&mut telemetry);
        telemetry.put_u64(self.run_id_watermark);
        file.put("telemetry", telemetry.into_bytes());
        file.put("journal", encode_to_vec(&self.journal));
        file.put("progress", self.progress.clone());
        file
    }

    /// Unpacks a bundle, validating every section to full consumption.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingSection`] if a section is absent, or any decode
    /// error from the section payloads.
    pub fn from_file(file: &CheckpointFile) -> Result<Self, StoreError> {
        let meta: RunMeta = decode_from_slice(file.require("meta")?, "meta section")?;
        let by_score = decode_from_slice(file.require("by_score")?, "by_score section")?;
        let dataset = decode_from_slice(file.require("dataset")?, "dataset section")?;
        let model = decode_from_slice(file.require("model")?, "model section")?;
        let gmm = decode_from_slice(file.require("gmm")?, "gmm section")?;
        let rng = decode_from_slice(file.require("rng")?, "rng section")?;
        let oracle = decode_from_slice(file.require("oracle")?, "oracle section")?;
        let history = decode_from_slice(file.require("history")?, "history section")?;
        let mut telemetry = crate::ByteReader::new(file.require("telemetry")?);
        let metrics = MetricsState::decode(&mut telemetry)?;
        let run_id_watermark = telemetry.get_u64("run id watermark")?;
        telemetry.finish("telemetry section")?;
        let journal = decode_from_slice(file.require("journal")?, "journal section")?;
        let progress = file.require("progress")?.to_vec();
        Ok(CheckpointBundle {
            run: RunCheckpoint {
                iteration: meta.iteration,
                seed: meta.seed,
                run_id: meta.run_id,
                total: meta.total,
                temperature: meta.temperature,
                ece_before: meta.ece_before,
                cold_batches: meta.cold_batches,
                oracle_calls_before: meta.oracle_calls_before,
                stats_before: meta.stats_before,
                fault_stats: meta.fault_stats,
                by_score,
                dataset,
                model,
                gmm,
                rng,
                oracle,
                history,
            },
            metrics,
            run_id_watermark,
            journal,
            progress,
        })
    }

    /// The section names a bundle writes, in order — exposed for docs and
    /// diagnostics.
    pub fn section_names() -> &'static [&'static str] {
        &SECTIONS
    }
}
