//! The deterministic binary codec: explicit little-endian primitives over a
//! flat byte buffer, plus the CRC32 (IEEE 802.3) used for per-section
//! integrity. No `serde`, no varints, no alignment: the encoding of a value
//! is a pure function of the value, so checkpoint bytes are reproducible
//! across processes and platforms.

use crate::StoreError;

/// CRC32 lookup table (IEEE 802.3 polynomial, reflected: `0xEDB88320`).
static CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 (IEEE 802.3) of a byte slice — the per-section checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        let index = ((crc ^ byte as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC_TABLE[index];
    }
    !crc
}

/// Append-only little-endian encoder. Writing is infallible; the buffer is
/// taken with [`ByteWriter::into_bytes`].
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (the format is 64-bit regardless of host).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f32` as its raw IEEE-754 bits — bit-exact, NaN included.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Writes an `f64` as its raw IEEE-754 bits — bit-exact, NaN included.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Writes a length-prefixed UTF-8 string (`u32` length + bytes).
    pub fn put_str(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Writes a length-prefixed byte blob (`u64` length + bytes).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }
}

/// Checked little-endian decoder over a byte slice. Every read is bounds-
/// checked and returns [`StoreError::Truncated`] instead of panicking, so a
/// torn or corrupted checkpoint can never take the process down.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `data`, positioned at the start.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Fails unless every byte was consumed — trailing garbage in a section
    /// means the writer and reader disagree about the format.
    pub fn finish(self, context: &'static str) -> Result<(), StoreError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StoreError::Corrupt {
                detail: format!("{} trailing bytes after {context}", self.remaining()),
            })
        }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                context,
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, context: &'static str) -> Result<u8, StoreError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self, context: &'static str) -> Result<u16, StoreError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self, context: &'static str) -> Result<u32, StoreError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self, context: &'static str) -> Result<u64, StoreError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` and converts to `usize`, rejecting values the host
    /// cannot represent.
    pub fn get_usize(&mut self, context: &'static str) -> Result<usize, StoreError> {
        let v = self.get_u64(context)?;
        usize::try_from(v).map_err(|_| StoreError::Corrupt {
            detail: format!("{context}: value {v} does not fit a usize"),
        })
    }

    /// Reads an `f32` from its raw bits.
    pub fn get_f32(&mut self, context: &'static str) -> Result<f32, StoreError> {
        Ok(f32::from_bits(self.get_u32(context)?))
    }

    /// Reads an `f64` from its raw bits.
    pub fn get_f64(&mut self, context: &'static str) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.get_u64(context)?))
    }

    /// Reads a bool, rejecting any byte other than 0 or 1.
    pub fn get_bool(&mut self, context: &'static str) -> Result<bool, StoreError> {
        match self.get_u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StoreError::Corrupt {
                detail: format!("{context}: invalid bool byte {other}"),
            }),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, context: &'static str) -> Result<String, StoreError> {
        let len = self.get_u32(context)? as usize;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Corrupt {
            detail: format!("{context}: invalid UTF-8"),
        })
    }

    /// Reads exactly `n` raw bytes (no length prefix), borrowing from the
    /// underlying slice.
    pub fn get_raw(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], StoreError> {
        self.take(n, context)
    }

    /// Reads a length-prefixed byte blob.
    pub fn get_bytes(&mut self, context: &'static str) -> Result<Vec<u8>, StoreError> {
        let len = self.get_usize(context)?;
        Ok(self.take(len, context)?.to_vec())
    }

    /// Reads a sequence length, capped by the bytes actually remaining (one
    /// byte per element minimum) so a corrupt length cannot drive a huge
    /// allocation before the truncation is detected.
    pub fn get_seq_len(&mut self, context: &'static str) -> Result<usize, StoreError> {
        let len = self.get_usize(context)?;
        if len > self.remaining() {
            return Err(StoreError::Truncated {
                context,
                needed: len,
                available: self.remaining(),
            });
        }
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_primitive_round_trips() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_usize(12345);
        w.put_f32(-0.0);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_str("snapshot");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8("t").unwrap(), 0xAB);
        assert_eq!(r.get_u16("t").unwrap(), 0xBEEF);
        assert_eq!(r.get_u32("t").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("t").unwrap(), u64::MAX - 1);
        assert_eq!(r.get_usize("t").unwrap(), 12345);
        assert_eq!(r.get_f32("t").unwrap().to_bits(), (-0.0f32).to_bits());
        assert!(r.get_f64("t").unwrap().is_nan());
        assert!(r.get_bool("t").unwrap());
        assert_eq!(r.get_str("t").unwrap(), "snapshot");
        assert_eq!(r.get_bytes("t").unwrap(), vec![1, 2, 3]);
        r.finish("primitives").unwrap();
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut w = ByteWriter::new();
        w.put_u64(7);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(matches!(r.get_u64("t"), Err(StoreError::Truncated { .. })));
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(1);
        w.put_u8(9);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.get_u32("t").unwrap();
        assert!(matches!(r.finish("t"), Err(StoreError::Corrupt { .. })));
    }

    proptest! {
        #[test]
        fn u64_round_trips(v in any::<u64>()) {
            let mut w = ByteWriter::new();
            w.put_u64(v);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            prop_assert_eq!(r.get_u64("t").unwrap(), v);
        }

        #[test]
        fn f64_round_trips_bit_exactly(bits in any::<u64>()) {
            let v = f64::from_bits(bits);
            let mut w = ByteWriter::new();
            w.put_f64(v);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            prop_assert_eq!(r.get_f64("t").unwrap().to_bits(), bits);
        }

        #[test]
        fn crc_detects_single_bit_flips(payload in proptest::collection::vec(any::<u8>(), 1..64), bit in 0usize..8) {
            let reference = crc32(&payload);
            let mut mutated = payload.clone();
            let index = payload.len() / 2;
            mutated[index] ^= 1 << bit;
            prop_assert!(crc32(&mutated) != reference);
        }
    }
}
