use std::fmt;
use std::io;

/// Error type for the checkpoint store.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Filesystem failure (open, write, sync, rename).
    Io(io::Error),
    /// A read ran past the end of the available bytes — the classic torn
    /// write. Carries what was being decoded so corruption reports are
    /// actionable.
    Truncated {
        /// What the reader was decoding.
        context: &'static str,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// A section's payload does not match its recorded CRC32.
    CrcMismatch {
        /// Section name.
        section: String,
    },
    /// A required section is absent from the checkpoint file.
    MissingSection {
        /// Section name.
        name: String,
    },
    /// Structurally invalid content (bad enum tag, trailing bytes, value a
    /// constructor refused).
    Corrupt {
        /// What went wrong.
        detail: String,
    },
    /// Checkpoint keys must be strictly increasing within a store.
    NonMonotoneKey {
        /// The key being saved.
        key: u64,
        /// The largest key already committed.
        last: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            StoreError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "truncated checkpoint while reading {context}: needed {needed} bytes, {available} available"
            ),
            StoreError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            StoreError::UnsupportedVersion { found } => {
                write!(f, "unsupported checkpoint format version {found}")
            }
            StoreError::CrcMismatch { section } => {
                write!(f, "CRC mismatch in checkpoint section `{section}`")
            }
            StoreError::MissingSection { name } => {
                write!(f, "checkpoint is missing section `{name}`")
            }
            StoreError::Corrupt { detail } => write!(f, "corrupt checkpoint: {detail}"),
            StoreError::NonMonotoneKey { key, last } => write!(
                f,
                "checkpoint key {key} is not greater than the last committed key {last}"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}
