//! [`Snapshot`]/[`Restore`] — deterministic binary (de)serialisation for
//! every piece of run state a checkpoint carries.
//!
//! Implementations exist for the framework's checkpoint types (dataset
//! partition, model weights + optimiser moments, mixture parameters, RNG
//! keystream position, oracle cache and meters, per-iteration history,
//! fault tallies) and for the telemetry state that must survive a process
//! boundary. Every impl round-trips bit-exactly: floats are stored as raw
//! IEEE-754 bits, so `decode(encode(x)) == x` even for NaN payloads.

use crate::codec::{ByteReader, ByteWriter};
use crate::StoreError;
use hotspot_active::{
    DatasetCheckpoint, IterationStats, ModelState, PshdMetrics, RunCheckpoint, RunFaultStats,
};
use hotspot_gmm::GaussianMixture;
use hotspot_litho::{
    FaultInjectionStats, FaultMeterState, Label, OracleStateSnapshot, OracleStats, RetryMeterState,
};
use hotspot_nn::NetworkSnapshot;
use hotspot_telemetry::{HistogramState, JournalPosition, MetricsState};
use rand_chacha::ChaChaStreamState;

/// Deterministic binary encoding into a [`ByteWriter`]. Infallible: every
/// in-memory value has an encoding.
pub trait Snapshot {
    /// Appends this value's encoding.
    fn encode(&self, w: &mut ByteWriter);
}

/// Checked decoding from a [`ByteReader`] — the inverse of [`Snapshot`].
pub trait Restore: Sized {
    /// Reads one value, validating structure as it goes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] on short input, [`StoreError::Corrupt`] on
    /// structurally invalid content.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError>;
}

/// Encodes a value to a standalone byte buffer.
pub fn encode_to_vec<T: Snapshot + ?Sized>(value: &T) -> Vec<u8> {
    let mut w = ByteWriter::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes a value from a standalone byte buffer, requiring full
/// consumption.
///
/// # Errors
///
/// Propagates decode errors and rejects trailing bytes.
pub fn decode_from_slice<T: Restore>(bytes: &[u8], context: &'static str) -> Result<T, StoreError> {
    let mut r = ByteReader::new(bytes);
    let value = T::decode(&mut r)?;
    r.finish(context)?;
    Ok(value)
}

// ---------------------------------------------------------------------------
// Primitives and generic containers
// ---------------------------------------------------------------------------

macro_rules! primitive_snapshot {
    ($($t:ty => $put:ident / $get:ident),* $(,)?) => {$(
        impl Snapshot for $t {
            fn encode(&self, w: &mut ByteWriter) {
                w.$put(*self);
            }
        }
        impl Restore for $t {
            fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
                r.$get(stringify!($t))
            }
        }
    )*};
}

primitive_snapshot! {
    u8 => put_u8 / get_u8,
    u16 => put_u16 / get_u16,
    u32 => put_u32 / get_u32,
    u64 => put_u64 / get_u64,
    usize => put_usize / get_usize,
    f32 => put_f32 / get_f32,
    f64 => put_f64 / get_f64,
    bool => put_bool / get_bool,
}

impl Snapshot for String {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(self);
    }
}

impl Restore for String {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        r.get_str("string")
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Restore> Restore for Vec<T> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let len = r.get_seq_len("sequence length")?;
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            None => w.put_u8(0),
            Some(value) => {
                w.put_u8(1);
                value.encode(w);
            }
        }
    }
}

impl<T: Restore> Restore for Option<T> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        match r.get_u8("option tag")? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(StoreError::Corrupt {
                detail: format!("invalid option tag {tag}"),
            }),
        }
    }
}

macro_rules! tuple_snapshot {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Snapshot),+> Snapshot for ($($name,)+) {
            fn encode(&self, w: &mut ByteWriter) {
                $(self.$idx.encode(w);)+
            }
        }
        impl<$($name: Restore),+> Restore for ($($name,)+) {
            fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    )*};
}

tuple_snapshot! {
    (A.0, B.1);
    (A.0, B.1, C.2);
}

// ---------------------------------------------------------------------------
// Litho types: labels, oracle cache, and meters
// ---------------------------------------------------------------------------

impl Snapshot for Label {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(self.is_hotspot() as u8);
    }
}

impl Restore for Label {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        match r.get_u8("label")? {
            0 => Ok(Label::NonHotspot),
            1 => Ok(Label::Hotspot),
            tag => Err(StoreError::Corrupt {
                detail: format!("invalid label tag {tag}"),
            }),
        }
    }
}

impl Snapshot for OracleStats {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.unique);
        w.put_usize(self.total);
        w.put_usize(self.retries);
        w.put_usize(self.giveups);
        w.put_usize(self.quorum_votes);
    }
}

impl Restore for OracleStats {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(OracleStats {
            unique: r.get_usize("oracle stats")?,
            total: r.get_usize("oracle stats")?,
            retries: r.get_usize("oracle stats")?,
            giveups: r.get_usize("oracle stats")?,
            quorum_votes: r.get_usize("oracle stats")?,
        })
    }
}

impl Snapshot for RetryMeterState {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.retries);
        w.put_usize(self.giveups);
        w.put_usize(self.quorum_votes);
    }
}

impl Restore for RetryMeterState {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(RetryMeterState {
            retries: r.get_usize("retry meter")?,
            giveups: r.get_usize("retry meter")?,
            quorum_votes: r.get_usize("retry meter")?,
        })
    }
}

impl Snapshot for FaultInjectionStats {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.transients);
        w.put_usize(self.timeouts);
        w.put_usize(self.corruptions);
        w.put_usize(self.flips);
        w.put_usize(self.permanents);
    }
}

impl Restore for FaultInjectionStats {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(FaultInjectionStats {
            transients: r.get_usize("fault stats")?,
            timeouts: r.get_usize("fault stats")?,
            corruptions: r.get_usize("fault stats")?,
            flips: r.get_usize("fault stats")?,
            permanents: r.get_usize("fault stats")?,
        })
    }
}

impl Snapshot for FaultMeterState {
    fn encode(&self, w: &mut ByteWriter) {
        self.attempts.encode(w);
        self.injected.encode(w);
    }
}

impl Restore for FaultMeterState {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(FaultMeterState {
            attempts: Vec::decode(r)?,
            injected: FaultInjectionStats::decode(r)?,
        })
    }
}

impl Snapshot for OracleStateSnapshot {
    fn encode(&self, w: &mut ByteWriter) {
        self.cache.encode(w);
        w.put_usize(self.total);
        w.put_usize(self.resimulations);
        self.retry.encode(w);
        self.fault.encode(w);
    }
}

impl Restore for OracleStateSnapshot {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(OracleStateSnapshot {
            cache: Vec::decode(r)?,
            total: r.get_usize("oracle snapshot")?,
            resimulations: r.get_usize("oracle snapshot")?,
            retry: Option::decode(r)?,
            fault: Option::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Framework types: dataset, model, mixture, history, metrics
// ---------------------------------------------------------------------------

impl Snapshot for DatasetCheckpoint {
    fn encode(&self, w: &mut ByteWriter) {
        self.labeled.encode(w);
        self.labeled_classes.encode(w);
        self.validation.encode(w);
        self.validation_classes.encode(w);
    }
}

impl Restore for DatasetCheckpoint {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(DatasetCheckpoint {
            labeled: Vec::decode(r)?,
            labeled_classes: Vec::decode(r)?,
            validation: Vec::decode(r)?,
            validation_classes: Vec::decode(r)?,
        })
    }
}

impl Snapshot for NetworkSnapshot {
    fn encode(&self, w: &mut ByteWriter) {
        let parts: Vec<(String, Vec<Vec<f32>>)> = self
            .layer_parts()
            .map(|(kind, buffers)| (kind.to_owned(), buffers.to_vec()))
            .collect();
        parts.encode(w);
    }
}

impl Restore for NetworkSnapshot {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(NetworkSnapshot::from_layer_parts(Vec::decode(r)?))
    }
}

impl Snapshot for ModelState {
    fn encode(&self, w: &mut ByteWriter) {
        self.snapshot.encode(w);
        w.put_u64(self.optimizer.step);
        self.optimizer.moments.encode(w);
        w.put_usize(self.steps_trained);
    }
}

impl Restore for ModelState {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let snapshot = NetworkSnapshot::decode(r)?;
        let step = r.get_u64("adam step")?;
        let moments = Vec::decode(r)?;
        let steps_trained = r.get_usize("steps trained")?;
        Ok(ModelState {
            snapshot,
            optimizer: hotspot_nn::AdamState { step, moments },
            steps_trained,
        })
    }
}

impl Snapshot for GaussianMixture {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.dim());
        self.weights().to_vec().encode(w);
        self.means().to_vec().encode(w);
        self.variances().to_vec().encode(w);
    }
}

impl Restore for GaussianMixture {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let dim = r.get_usize("gmm dim")?;
        let weights: Vec<f64> = Vec::decode(r)?;
        let means: Vec<f64> = Vec::decode(r)?;
        let variances: Vec<f64> = Vec::decode(r)?;
        GaussianMixture::from_parts(dim, weights, means, variances).map_err(|e| {
            StoreError::Corrupt {
                detail: format!("mixture parameters rejected: {e}"),
            }
        })
    }
}

impl Snapshot for RunFaultStats {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.label_failures);
        w.put_usize(self.oracle_retries);
        w.put_usize(self.oracle_giveups);
        w.put_usize(self.quorum_votes);
        w.put_usize(self.nan_rollbacks);
        w.put_usize(self.temperature_fallbacks);
    }
}

impl Restore for RunFaultStats {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(RunFaultStats {
            label_failures: r.get_usize("fault tallies")?,
            oracle_retries: r.get_usize("fault tallies")?,
            oracle_giveups: r.get_usize("fault tallies")?,
            quorum_votes: r.get_usize("fault tallies")?,
            nan_rollbacks: r.get_usize("fault tallies")?,
            temperature_fallbacks: r.get_usize("fault tallies")?,
        })
    }
}

impl Snapshot for IterationStats {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.iteration);
        w.put_f64(self.temperature);
        self.weights.encode(w);
        w.put_usize(self.batch_hotspots);
        w.put_usize(self.labeled_size);
        w.put_f64(self.train_loss);
        w.put_f64(self.ece);
        w.put_usize(self.failed_labels);
    }
}

impl Restore for IterationStats {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(IterationStats {
            iteration: r.get_usize("iteration stats")?,
            temperature: r.get_f64("iteration stats")?,
            weights: Option::decode(r)?,
            batch_hotspots: r.get_usize("iteration stats")?,
            labeled_size: r.get_usize("iteration stats")?,
            train_loss: r.get_f64("iteration stats")?,
            ece: r.get_f64("iteration stats")?,
            failed_labels: r.get_usize("iteration stats")?,
        })
    }
}

impl Snapshot for PshdMetrics {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(self.accuracy);
        w.put_usize(self.litho);
        w.put_usize(self.hits);
        w.put_usize(self.false_alarms);
        w.put_usize(self.train_hotspots);
        w.put_usize(self.validation_hotspots);
        w.put_usize(self.total_hotspots);
        w.put_usize(self.train_size);
        w.put_usize(self.validation_size);
        w.put_usize(self.extra_simulations);
    }
}

impl Restore for PshdMetrics {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(PshdMetrics {
            accuracy: r.get_f64("pshd metrics")?,
            litho: r.get_usize("pshd metrics")?,
            hits: r.get_usize("pshd metrics")?,
            false_alarms: r.get_usize("pshd metrics")?,
            train_hotspots: r.get_usize("pshd metrics")?,
            validation_hotspots: r.get_usize("pshd metrics")?,
            total_hotspots: r.get_usize("pshd metrics")?,
            train_size: r.get_usize("pshd metrics")?,
            validation_size: r.get_usize("pshd metrics")?,
            extra_simulations: r.get_usize("pshd metrics")?,
        })
    }
}

// ---------------------------------------------------------------------------
// RNG keystream position
// ---------------------------------------------------------------------------

impl Snapshot for ChaChaStreamState {
    fn encode(&self, w: &mut ByteWriter) {
        for word in self.key {
            w.put_u32(word);
        }
        w.put_u64(self.counter);
        w.put_usize(self.index);
    }
}

impl Restore for ChaChaStreamState {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let mut key = [0u32; 8];
        for word in &mut key {
            *word = r.get_u32("rng key")?;
        }
        let counter = r.get_u64("rng counter")?;
        let index = r.get_usize("rng index")?;
        if index > 16 {
            return Err(StoreError::Corrupt {
                detail: format!("rng buffer index {index} exceeds the 16-word block"),
            });
        }
        Ok(ChaChaStreamState {
            key,
            counter,
            index,
        })
    }
}

// ---------------------------------------------------------------------------
// Telemetry state
// ---------------------------------------------------------------------------

impl Snapshot for HistogramState {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(&self.name);
        self.buckets.encode(w);
        w.put_u64(self.count);
        w.put_u64(self.sum_bits);
        w.put_u64(self.min_bits);
        w.put_u64(self.max_bits);
    }
}

impl Restore for HistogramState {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(HistogramState {
            name: r.get_str("histogram name")?,
            buckets: Vec::decode(r)?,
            count: r.get_u64("histogram count")?,
            sum_bits: r.get_u64("histogram sum")?,
            min_bits: r.get_u64("histogram min")?,
            max_bits: r.get_u64("histogram max")?,
        })
    }
}

impl Snapshot for MetricsState {
    fn encode(&self, w: &mut ByteWriter) {
        self.counters.encode(w);
        self.gauges.encode(w);
        self.histograms.encode(w);
    }
}

impl Restore for MetricsState {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(MetricsState {
            counters: Vec::decode(r)?,
            gauges: Vec::decode(r)?,
            histograms: Vec::decode(r)?,
        })
    }
}

impl Snapshot for JournalPosition {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.bytes);
        w.put_u64(self.seq);
    }
}

impl Restore for JournalPosition {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(JournalPosition {
            bytes: r.get_u64("journal position")?,
            seq: r.get_u64("journal position")?,
        })
    }
}

// ---------------------------------------------------------------------------
// The composite run checkpoint
// ---------------------------------------------------------------------------

/// The scalar header of a [`RunCheckpoint`] — everything that is not one of
/// the bulk sections. Kept as its own encoding unit so the bundle can give
/// it a dedicated CRC-protected section.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RunMeta {
    pub iteration: usize,
    pub seed: u64,
    pub run_id: u64,
    pub total: usize,
    pub temperature: f64,
    pub ece_before: f64,
    pub cold_batches: usize,
    pub oracle_calls_before: u64,
    pub stats_before: OracleStats,
    pub fault_stats: RunFaultStats,
}

impl Snapshot for RunMeta {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.iteration);
        w.put_u64(self.seed);
        w.put_u64(self.run_id);
        w.put_usize(self.total);
        w.put_f64(self.temperature);
        w.put_f64(self.ece_before);
        w.put_usize(self.cold_batches);
        w.put_u64(self.oracle_calls_before);
        self.stats_before.encode(w);
        self.fault_stats.encode(w);
    }
}

impl Restore for RunMeta {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(RunMeta {
            iteration: r.get_usize("run meta")?,
            seed: r.get_u64("run meta")?,
            run_id: r.get_u64("run meta")?,
            total: r.get_usize("run meta")?,
            temperature: r.get_f64("run meta")?,
            ece_before: r.get_f64("run meta")?,
            cold_batches: r.get_usize("run meta")?,
            oracle_calls_before: r.get_u64("run meta")?,
            stats_before: OracleStats::decode(r)?,
            fault_stats: RunFaultStats::decode(r)?,
        })
    }
}

impl Snapshot for RunCheckpoint {
    fn encode(&self, w: &mut ByteWriter) {
        RunMeta {
            iteration: self.iteration,
            seed: self.seed,
            run_id: self.run_id,
            total: self.total,
            temperature: self.temperature,
            ece_before: self.ece_before,
            cold_batches: self.cold_batches,
            oracle_calls_before: self.oracle_calls_before,
            stats_before: self.stats_before,
            fault_stats: self.fault_stats,
        }
        .encode(w);
        self.by_score.encode(w);
        self.dataset.encode(w);
        self.model.encode(w);
        self.gmm.encode(w);
        self.rng.encode(w);
        self.oracle.encode(w);
        self.history.encode(w);
    }
}

impl Restore for RunCheckpoint {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let meta = RunMeta::decode(r)?;
        Ok(RunCheckpoint {
            iteration: meta.iteration,
            seed: meta.seed,
            run_id: meta.run_id,
            total: meta.total,
            temperature: meta.temperature,
            ece_before: meta.ece_before,
            cold_batches: meta.cold_batches,
            oracle_calls_before: meta.oracle_calls_before,
            stats_before: meta.stats_before,
            fault_stats: meta.fault_stats,
            by_score: Vec::decode(r)?,
            dataset: DatasetCheckpoint::decode(r)?,
            model: ModelState::decode(r)?,
            gmm: GaussianMixture::decode(r)?,
            rng: ChaChaStreamState::decode(r)?,
            oracle: Option::decode(r)?,
            history: Vec::decode(r)?,
        })
    }
}
