//! [`CheckpointStore`] — a directory of atomically committed checkpoint
//! files with retention and torn-write recovery.
//!
//! Commit protocol: the encoded checkpoint is written to a `.tmp` file,
//! `fsync`ed, then renamed over its final name (`ckpt-<key hex>.bin`);
//! POSIX rename atomicity guarantees a reader sees either the old state or
//! the complete new file, never a partial one. A `MANIFEST` listing is
//! rewritten the same way, but is advisory only — [`CheckpointStore::open`]
//! trusts the directory scan, so a crash between the rename and the
//! manifest rewrite loses nothing. If a checkpoint is torn anyway (power
//! loss on a filesystem that reorders the rename before the data blocks),
//! the per-section CRCs catch it and [`CheckpointStore::load_latest`] falls
//! back to the newest checkpoint that still validates.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use hotspot_telemetry as telemetry;

use crate::bundle::CheckpointBundle;
use crate::file::CheckpointFile;
use crate::StoreError;

/// Advisory listing file kept next to the checkpoints.
const MANIFEST_NAME: &str = "MANIFEST";
/// First line of the manifest, identifying its schema.
const MANIFEST_HEADER: &str = "lithohd-checkpoint-manifest v1";

/// How many checkpoints [`CheckpointStore`] retains by default.
pub const DEFAULT_KEEP_LAST: usize = 3;

fn checkpoint_file_name(key: u64) -> String {
    format!("ckpt-{key:016x}.bin")
}

fn parse_checkpoint_file_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("ckpt-")?.strip_suffix(".bin")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// A directory of checkpoints keyed by a strictly increasing `u64`
/// (typically the iteration number, or a global ordinal across several
/// runs).
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep_last: usize,
    /// Committed keys, ascending.
    keys: Vec<u64>,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory and indexes the
    /// checkpoints already present. Files are discovered by directory scan;
    /// the manifest is advisory and never trusted over the scan.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be created or read.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut keys = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            if let Some(key) = entry
                .file_name()
                .to_str()
                .and_then(parse_checkpoint_file_name)
            {
                keys.push(key);
            }
        }
        keys.sort_unstable();
        keys.dedup();
        Ok(CheckpointStore {
            dir,
            keep_last: DEFAULT_KEEP_LAST,
            keys,
        })
    }

    /// Sets how many checkpoints to retain (older ones are deleted after
    /// each successful save). A value of 0 is treated as 1 — the store
    /// never deletes the checkpoint it just committed.
    pub fn keep_last(mut self, n: usize) -> Self {
        self.keep_last = n.max(1);
        self
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Committed keys, ascending.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// The newest committed key, if any checkpoint exists.
    pub fn latest_key(&self) -> Option<u64> {
        self.keys.last().copied()
    }

    fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(checkpoint_file_name(key))
    }

    /// Atomically commits `file` under `key`, then applies retention and
    /// rewrites the manifest.
    ///
    /// # Errors
    ///
    /// [`StoreError::NonMonotoneKey`] if `key` does not exceed every
    /// committed key, [`StoreError::Io`] on filesystem failure. Retention
    /// and manifest failures after the commit rename are NOT errors — the
    /// checkpoint is durable at that point.
    pub fn save(&mut self, key: u64, file: &CheckpointFile) -> Result<(), StoreError> {
        if let Some(&last) = self.keys.last() {
            if key <= last {
                return Err(StoreError::NonMonotoneKey { key, last });
            }
        }
        let bytes = file.encode();
        let final_path = self.path_for(key);
        let tmp_path = self.dir.join(format!("{}.tmp", checkpoint_file_name(key)));
        {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        // Best-effort directory fsync so the rename itself is durable; not
        // all platforms support opening a directory for sync, and the data
        // is already safe in the file, so failures are ignored.
        if let Ok(d) = fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.keys.push(key);

        telemetry::counter(telemetry::names::CHECKPOINT_SAVES).incr();
        telemetry::counter(telemetry::names::CHECKPOINT_BYTES).add(bytes.len() as u64);
        telemetry::debug(
            "store.checkpoint",
            "checkpoint committed",
            &[("key", key.into())],
        );

        self.apply_retention();
        self.rewrite_manifest();
        Ok(())
    }

    /// Deletes the oldest checkpoints beyond `keep_last`. Best effort: a
    /// file that cannot be deleted stays on disk but is dropped from the
    /// index (a later `open` will pick it up again).
    fn apply_retention(&mut self) {
        while self.keys.len() > self.keep_last {
            let key = self.keys.remove(0);
            let _ = fs::remove_file(self.path_for(key));
        }
    }

    /// Rewrites the advisory manifest listing, also via tmp + rename. Best
    /// effort: the manifest is never load-bearing.
    fn rewrite_manifest(&self) {
        let mut listing = String::from(MANIFEST_HEADER);
        listing.push('\n');
        for &key in &self.keys {
            listing.push_str(&format!("{key} {}\n", checkpoint_file_name(key)));
        }
        let tmp = self.dir.join(format!("{MANIFEST_NAME}.tmp"));
        let write = fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(listing.as_bytes()).and_then(|()| f.sync_all()));
        if write.is_ok() {
            let _ = fs::rename(&tmp, self.dir.join(MANIFEST_NAME));
        }
    }

    /// Loads and validates the checkpoint committed under `key`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] (including not-found), or any decode error from
    /// [`CheckpointFile::decode`] if the file is torn or corrupt.
    pub fn load(&self, key: u64) -> Result<CheckpointFile, StoreError> {
        let bytes = fs::read(self.path_for(key))?;
        CheckpointFile::decode(&bytes)
    }

    /// Loads the newest checkpoint that validates, skipping (and counting)
    /// torn or corrupt ones. Returns `Ok(None)` when the store holds no
    /// valid checkpoint at all.
    ///
    /// # Errors
    ///
    /// Never fails on corrupt checkpoints — those are skipped with a
    /// warning. Only unexpected I/O errors on an existing file propagate.
    pub fn load_latest(&self) -> Result<Option<(u64, CheckpointFile)>, StoreError> {
        for &key in self.keys.iter().rev() {
            let bytes = match fs::read(self.path_for(key)) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(StoreError::Io(e)),
            };
            match CheckpointFile::decode(&bytes) {
                Ok(file) => return Ok(Some((key, file))),
                Err(e) => {
                    telemetry::counter(telemetry::names::CHECKPOINT_CORRUPT_SKIPPED).incr();
                    telemetry::warn(
                        "store.checkpoint",
                        "skipping corrupt checkpoint",
                        &[("key", key.into()), ("error", format!("{e}").into())],
                    );
                }
            }
        }
        Ok(None)
    }

    /// [`CheckpointStore::load_latest`] decoded straight into a
    /// [`CheckpointBundle`] — the common shape for resume paths (bench
    /// harness, serving sessions) that treat "latest valid commit" and
    /// "latest usable bundle" as the same thing. A checkpoint that decodes
    /// as a file but not as a bundle is an error, not a fallback: its bytes
    /// committed atomically, so the payload schema (not torn writes) is
    /// what broke.
    ///
    /// # Errors
    ///
    /// Propagates store read errors and bundle decode errors.
    pub fn load_latest_bundle(&self) -> Result<Option<(u64, CheckpointBundle)>, StoreError> {
        match self.load_latest()? {
            Some((key, file)) => Ok(Some((key, CheckpointBundle::from_file(&file)?))),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("hotspot-store-{tag}-{}-{seq}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn file_with(tag: u8) -> CheckpointFile {
        let mut f = CheckpointFile::new();
        f.put("meta", vec![tag; 16]);
        f
    }

    #[test]
    fn save_load_and_reopen() {
        let dir = temp_dir("roundtrip");
        let mut store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.latest_key(), None);
        assert!(store.load_latest().unwrap().is_none());

        store.save(1, &file_with(1)).unwrap();
        store.save(2, &file_with(2)).unwrap();
        assert_eq!(store.load(1).unwrap(), file_with(1));

        // A fresh open re-indexes from the directory scan alone.
        let reopened = CheckpointStore::open(&dir).unwrap();
        assert_eq!(reopened.keys(), &[1, 2]);
        let (key, latest) = reopened.load_latest().unwrap().unwrap();
        assert_eq!(key, 2);
        assert_eq!(latest, file_with(2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_must_strictly_increase() {
        let dir = temp_dir("monotone");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.save(5, &file_with(5)).unwrap();
        assert!(matches!(
            store.save(5, &file_with(5)),
            Err(StoreError::NonMonotoneKey { key: 5, last: 5 })
        ));
        assert!(matches!(
            store.save(4, &file_with(4)),
            Err(StoreError::NonMonotoneKey { key: 4, last: 5 })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_keeps_only_the_newest() {
        let dir = temp_dir("retention");
        let mut store = CheckpointStore::open(&dir).unwrap().keep_last(2);
        for key in 1..=5 {
            store.save(key, &file_with(key as u8)).unwrap();
        }
        assert_eq!(store.keys(), &[4, 5]);
        let on_disk = CheckpointStore::open(&dir).unwrap();
        assert_eq!(on_disk.keys(), &[4, 5]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous_valid() {
        let dir = temp_dir("fallback");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.save(1, &file_with(1)).unwrap();
        store.save(2, &file_with(2)).unwrap();
        let before = telemetry::counter(telemetry::names::CHECKPOINT_CORRUPT_SKIPPED).get();

        // Tear the newest checkpoint in half behind the store's back.
        let path = dir.join(checkpoint_file_name(2));
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let (key, file) = store.load_latest().unwrap().unwrap();
        assert_eq!(key, 1);
        assert_eq!(file, file_with(1));
        assert_eq!(
            telemetry::counter(telemetry::names::CHECKPOINT_CORRUPT_SKIPPED).get(),
            before + 1
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_lists_retained_checkpoints() {
        let dir = temp_dir("manifest");
        let mut store = CheckpointStore::open(&dir).unwrap().keep_last(2);
        for key in 1..=3 {
            store.save(key, &file_with(key as u8)).unwrap();
        }
        let manifest = fs::read_to_string(dir.join(MANIFEST_NAME)).unwrap();
        let mut lines = manifest.lines();
        assert_eq!(lines.next(), Some(MANIFEST_HEADER));
        assert_eq!(lines.next(), Some("2 ckpt-0000000000000002.bin"));
        assert_eq!(lines.next(), Some("3 ckpt-0000000000000003.bin"));
        assert_eq!(lines.next(), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
