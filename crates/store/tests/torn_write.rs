//! Torn-write crash safety: a checkpoint truncated at **every possible byte
//! offset** must never panic the reader, and the store must always fall
//! back to the newest checkpoint that still validates.

use std::fs;
use std::path::PathBuf;

use hotspot_store::{CheckpointFile, CheckpointStore, StoreError};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hotspot-store-torn-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn sample_file(tag: u8) -> CheckpointFile {
    let mut file = CheckpointFile::new();
    file.put("meta", vec![tag; 24]);
    file.put(
        "model",
        (0..200).map(|i| (i as u8).wrapping_mul(tag)).collect(),
    );
    file.put("history", vec![tag; 3]);
    file
}

#[test]
fn decode_never_panics_at_any_truncation_offset() {
    let file = sample_file(7);
    let bytes = file.encode();
    for cut in 0..=bytes.len() {
        match CheckpointFile::decode(&bytes[..cut]) {
            Ok(decoded) => {
                assert_eq!(
                    cut,
                    bytes.len(),
                    "a strict prefix must not decode, but {cut}/{} did",
                    bytes.len()
                );
                assert_eq!(decoded, file);
            }
            Err(
                StoreError::BadMagic
                | StoreError::Truncated { .. }
                | StoreError::Corrupt { .. }
                | StoreError::CrcMismatch { .. },
            ) => {}
            Err(other) => panic!("unexpected error class at offset {cut}: {other}"),
        }
    }
}

#[test]
fn store_recovers_previous_checkpoint_from_every_truncation() {
    let good = sample_file(1);
    let torn_encoding = sample_file(2).encode();

    for cut in 0..torn_encoding.len() {
        let dir = temp_dir(&format!("cut{cut}"));
        let mut store = CheckpointStore::open(&dir).expect("store opens");
        store.save(10, &good).expect("good checkpoint commits");

        // Simulate a crash mid-write of checkpoint 11: a partial file under
        // the final name, as a reordering filesystem could leave behind.
        fs::write(dir.join("ckpt-000000000000000b.bin"), &torn_encoding[..cut])
            .expect("write torn file");

        let reopened = CheckpointStore::open(&dir).expect("open never fails on torn data");
        assert_eq!(reopened.keys(), &[10, 11]);
        let (key, file) = reopened
            .load_latest()
            .expect("scan succeeds")
            .expect("the good checkpoint is still there");
        assert_eq!(key, 10, "truncation at {cut} must fall back to key 10");
        assert_eq!(file, good);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn resume_after_torn_write_continues_the_key_sequence() {
    let dir = temp_dir("sequence");
    let mut store = CheckpointStore::open(&dir).expect("store opens");
    store.save(1, &sample_file(1)).expect("save 1");
    store.save(2, &sample_file(2)).expect("save 2");

    // Tear checkpoint 2, then resume: the process restores from key 1 but
    // must keep committing after the torn key, exactly like a resumed run
    // that re-executes the lost iteration.
    let path = dir.join("ckpt-0000000000000002.bin");
    let bytes = fs::read(&path).expect("read");
    fs::write(&path, &bytes[..bytes.len() - 5]).expect("tear");

    let mut resumed = CheckpointStore::open(&dir).expect("reopen");
    let (key, _) = resumed
        .load_latest()
        .expect("scan")
        .expect("key 1 still valid");
    assert_eq!(key, 1);
    // Key 2 is occupied by the torn file, so the resumed process continues
    // at 3; a fresh save then becomes the newest valid checkpoint.
    resumed.save(3, &sample_file(3)).expect("save 3");
    let (key, file) = resumed.load_latest().expect("scan").expect("found");
    assert_eq!(key, 3);
    assert_eq!(file, sample_file(3));
    let _ = fs::remove_dir_all(&dir);
}
