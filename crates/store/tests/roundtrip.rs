//! Property tests: `decode ∘ encode` is the identity for every snapshot
//! section type, and a full [`CheckpointBundle`] survives the file format
//! and the store.

use hotspot_active::{
    DatasetCheckpoint, IterationStats, ModelState, PshdMetrics, RunCheckpoint, RunFaultStats,
};
use hotspot_gmm::GaussianMixture;
use hotspot_litho::{
    FaultInjectionStats, FaultMeterState, Label, OracleStateSnapshot, OracleStats, RetryMeterState,
};
use hotspot_nn::{AdamState, NetworkSnapshot};
use hotspot_store::{
    decode_from_slice, encode_to_vec, CheckpointBundle, CheckpointStore, Restore, Snapshot,
};
use hotspot_telemetry::{HistogramState, JournalPosition, MetricsState};
use proptest::prelude::*;
use rand_chacha::ChaChaStreamState;

fn round_trip<T>(value: &T) -> T
where
    T: Snapshot + Restore,
{
    decode_from_slice(&encode_to_vec(value), "round trip").expect("decode must succeed")
}

fn label(hot: bool) -> Label {
    if hot {
        Label::Hotspot
    } else {
        Label::NonHotspot
    }
}

fn cycle<T: Copy>(pool: &[T], n: usize) -> Vec<T> {
    (0..n).map(|i| pool[i % pool.len()]).collect()
}

proptest! {
    #[test]
    fn labels_round_trip(hot in any::<bool>()) {
        let v = label(hot);
        prop_assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn oracle_stats_round_trip(
        (unique, total) in (any::<u64>(), any::<u64>()),
        (retries, giveups, quorum_votes) in (any::<u64>(), any::<u64>(), any::<u64>()),
    ) {
        let v = OracleStats {
            unique: unique as usize,
            total: total as usize,
            retries: retries as usize,
            giveups: giveups as usize,
            quorum_votes: quorum_votes as usize,
        };
        prop_assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn oracle_state_snapshot_round_trips(
        cache in proptest::collection::vec((0usize..10_000, any::<bool>()), 0..32),
        (total, resim) in (0usize..100_000, 0usize..1000),
        with_retry in any::<bool>(),
        attempts in proptest::collection::vec((0usize..10_000, any::<u64>()), 0..16),
    ) {
        let v = OracleStateSnapshot {
            cache: cache.into_iter().map(|(i, hot)| (i, label(hot))).collect(),
            total,
            resimulations: resim,
            retry: with_retry.then_some(RetryMeterState {
                retries: 3,
                giveups: 1,
                quorum_votes: 9,
            }),
            fault: Some(FaultMeterState {
                attempts,
                injected: FaultInjectionStats {
                    transients: 1,
                    timeouts: 2,
                    corruptions: 3,
                    flips: 4,
                    permanents: 5,
                },
            }),
        };
        prop_assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn dataset_checkpoint_round_trips(
        labeled in proptest::collection::vec(any::<usize>(), 0..64),
        labeled_classes in proptest::collection::vec(0usize..2, 0..64),
        validation in proptest::collection::vec(any::<usize>(), 0..64),
        validation_classes in proptest::collection::vec(0usize..2, 0..64),
    ) {
        let v = DatasetCheckpoint { labeled, labeled_classes, validation, validation_classes };
        prop_assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn model_state_round_trips(
        weights in proptest::collection::vec(-2.0f32..2.0, 1..64),
        moments in proptest::collection::vec(-1.0f32..1.0, 1..64),
        (step, steps_trained) in (any::<u64>(), 0usize..10_000),
    ) {
        let v = ModelState {
            snapshot: NetworkSnapshot::from_layer_parts(vec![
                ("dense".to_owned(), vec![weights.clone(), vec![0.5; 4]]),
                ("relu".to_owned(), Vec::new()),
            ]),
            optimizer: AdamState {
                step,
                moments: vec![(0, moments.clone(), moments)],
            },
            steps_trained,
        };
        prop_assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn gmm_round_trips(
        (dim, k) in (1usize..4, 1usize..4),
        weights in proptest::collection::vec(0.01f64..1.0, 1..8),
        means in proptest::collection::vec(-10.0f64..10.0, 1..8),
        variances in proptest::collection::vec(0.1f64..5.0, 1..8),
    ) {
        let v = GaussianMixture::from_parts(
            dim,
            cycle(&weights, k),
            cycle(&means, k * dim),
            cycle(&variances, k * dim),
        )
        .expect("constructed parameters are valid");
        let rt = round_trip(&v);
        prop_assert_eq!(rt.dim(), v.dim());
        prop_assert_eq!(rt.weights(), v.weights());
        prop_assert_eq!(rt.means(), v.means());
        prop_assert_eq!(rt.variances(), v.variances());
    }

    #[test]
    fn rng_stream_state_round_trips(
        key_lo in (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()),
        key_hi in (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()),
        (counter, index) in (any::<u64>(), 0usize..=16),
    ) {
        let v = ChaChaStreamState {
            key: [key_lo.0, key_lo.1, key_lo.2, key_lo.3, key_hi.0, key_hi.1, key_hi.2, key_hi.3],
            counter,
            index,
        };
        prop_assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn iteration_stats_round_trip(
        (iteration, labeled_size, batch_hotspots, failed_labels) in
            (1usize..100, 0usize..10_000, 0usize..100, 0usize..100),
        (temperature, train_loss, ece) in (0.1f64..10.0, 0.0f64..5.0, 0.0f64..1.0),
        weights in (any::<bool>(), 0.0f64..1.0, 0.0f64..1.0),
    ) {
        let v = IterationStats {
            iteration,
            temperature,
            weights: weights.0.then_some((weights.1, weights.2)),
            batch_hotspots,
            labeled_size,
            train_loss,
            ece,
            failed_labels,
        };
        prop_assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn pshd_metrics_round_trip(
        accuracy in 0.0f64..=1.0,
        (litho, hits, false_alarms) in (any::<u64>(), any::<u64>(), any::<u64>()),
        sizes in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (validation_size, extra) in (any::<u64>(), any::<u64>()),
    ) {
        let v = PshdMetrics {
            accuracy,
            litho: litho as usize,
            hits: hits as usize,
            false_alarms: false_alarms as usize,
            train_hotspots: sizes.0 as usize,
            validation_hotspots: sizes.1 as usize,
            total_hotspots: sizes.2 as usize,
            train_size: sizes.3 as usize,
            validation_size: validation_size as usize,
            extra_simulations: extra as usize,
        };
        prop_assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn metrics_state_round_trips(
        counters in proptest::collection::vec(any::<u64>(), 0..8),
        buckets in proptest::collection::vec(any::<u64>(), 0..16),
        (count, sum_bits, min_bits, max_bits) in
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    ) {
        let v = MetricsState {
            counters: counters
                .iter()
                .enumerate()
                .map(|(i, &c)| (format!("counter.{i}"), c))
                .collect(),
            gauges: vec![("gauge.one".to_owned(), sum_bits)],
            histograms: vec![HistogramState {
                name: "hist.one".to_owned(),
                buckets,
                count,
                sum_bits,
                min_bits,
                max_bits,
            }],
        };
        prop_assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn journal_position_round_trips((bytes, seq) in (any::<u64>(), any::<u64>())) {
        let v = JournalPosition { bytes, seq };
        prop_assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn fault_stats_round_trip(
        tallies in (any::<u64>(), any::<u64>(), any::<u64>()),
        more in (any::<u64>(), any::<u64>(), any::<u64>()),
    ) {
        let v = RunFaultStats {
            label_failures: tallies.0 as usize,
            oracle_retries: tallies.1 as usize,
            oracle_giveups: tallies.2 as usize,
            quorum_votes: more.0 as usize,
            nan_rollbacks: more.1 as usize,
            temperature_fallbacks: more.2 as usize,
        };
        prop_assert_eq!(round_trip(&v), v);
    }
}

/// A small but fully populated checkpoint, exercising every section.
fn sample_checkpoint(seed: u64) -> RunCheckpoint {
    RunCheckpoint {
        iteration: 3,
        seed,
        run_id: 17,
        total: 40,
        by_score: (0..40).rev().collect(),
        dataset: DatasetCheckpoint {
            labeled: vec![1, 3, 5, 7],
            labeled_classes: vec![0, 1, 0, 1],
            validation: vec![2, 4],
            validation_classes: vec![1, 0],
        },
        model: ModelState {
            snapshot: NetworkSnapshot::from_layer_parts(vec![(
                "dense".to_owned(),
                vec![vec![0.25f32; 8], vec![-0.5f32; 2]],
            )]),
            optimizer: AdamState {
                step: 42,
                moments: vec![(0, vec![0.1; 8], vec![0.2; 8])],
            },
            steps_trained: 420,
        },
        gmm: GaussianMixture::from_parts(2, vec![0.6, 0.4], vec![0.0, 1.0, 2.0, 3.0], vec![1.0; 4])
            .expect("valid mixture"),
        temperature: 1.7,
        ece_before: 0.21,
        history: vec![IterationStats {
            iteration: 1,
            temperature: 1.1,
            weights: Some((0.4, 0.6)),
            batch_hotspots: 2,
            labeled_size: 8,
            train_loss: 0.3,
            ece: 0.05,
            failed_labels: 0,
        }],
        cold_batches: 1,
        fault_stats: RunFaultStats::default(),
        stats_before: OracleStats::default(),
        oracle_calls_before: 11,
        rng: ChaChaStreamState {
            key: [9; 8],
            counter: 123,
            index: 7,
        },
        oracle: Some(OracleStateSnapshot {
            cache: vec![(1, Label::Hotspot), (3, Label::NonHotspot)],
            total: 6,
            resimulations: 0,
            retry: None,
            fault: None,
        }),
    }
}

#[test]
fn full_bundle_survives_file_and_store() {
    let bundle = CheckpointBundle {
        run: sample_checkpoint(99),
        metrics: MetricsState {
            counters: vec![("litho.oracle.calls".to_owned(), 11)],
            gauges: Vec::new(),
            histograms: Vec::new(),
        },
        run_id_watermark: 17,
        journal: Some(JournalPosition {
            bytes: 4096,
            seq: 120,
        }),
        progress: vec![1, 2, 3],
    };

    // Through the section file…
    let restored = CheckpointBundle::from_file(&bundle.to_file()).expect("bundle decodes");
    assert_eq!(restored, bundle);

    // …and through a real store directory.
    let dir = std::env::temp_dir().join(format!("hotspot-store-bundle-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = CheckpointStore::open(&dir).expect("store opens");
    store.save(1, &bundle.to_file()).expect("save commits");
    let (key, file) = store
        .load_latest()
        .expect("load_latest scans")
        .expect("one checkpoint present");
    assert_eq!(key, 1);
    assert_eq!(
        CheckpointBundle::from_file(&file).expect("bundle decodes"),
        bundle
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_checkpoint_round_trips_directly() {
    let cp = sample_checkpoint(7);
    let restored: RunCheckpoint =
        decode_from_slice(&encode_to_vec(&cp), "run checkpoint").expect("decodes");
    assert_eq!(restored, cp);
}
