//! Property tests for the retry/backoff layer: for any policy parameters
//! and seed, backoff delays are monotone non-decreasing and capped at the
//! configured maximum, and a query never spends more attempts than the
//! policy allows.

use hotspot_litho::{
    CountingOracle, FaultRates, FaultyOracle, Label, LithoOracle, RetryOracle, RetryPolicy,
    VirtualClock,
};
use proptest::prelude::*;
use std::time::Duration;

fn policy(
    max_attempts: usize,
    base_ms: u64,
    max_ms: u64,
    multiplier: f64,
    jitter: f64,
    seed: u64,
) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_delay_ms: base_ms,
        max_delay_ms: max_ms,
        multiplier,
        jitter,
        seed,
    }
}

proptest! {
    #[test]
    fn delays_are_monotone_and_capped(
        seed in any::<u64>(),
        base_ms in 0u64..500,
        extra_ms in 0u64..5_000,
        multiplier in 1.0f64..4.0,
        jitter in 0.0f64..2.0,
    ) {
        // `jitter` deliberately overshoots the valid range; the policy must
        // clamp it to `multiplier - 1` to keep monotonicity.
        let max_ms = base_ms + extra_ms;
        let p = policy(16, base_ms, max_ms, multiplier, jitter, seed);
        let cap = Duration::from_millis(max_ms);
        let delays: Vec<Duration> = (0..16).map(|a| p.delay(a)).collect();
        for (i, pair) in delays.windows(2).enumerate() {
            prop_assert!(
                pair[1] >= pair[0],
                "delay shrank at attempt {}: {:?}",
                i + 1,
                delays
            );
        }
        for d in &delays {
            prop_assert!(*d <= cap, "delay {d:?} above the {cap:?} cap");
        }
    }

    #[test]
    fn attempt_count_never_exceeds_the_policy_bound(
        seed in any::<u64>(),
        max_attempts in 1usize..8,
        transient in 0.0f64..1.0,
        timeout_share in 0.0f64..1.0,
    ) {
        // Split the failure mass between transient and timeout faults.
        let timeout = (1.0 - transient) * timeout_share * 0.5;
        let rates = FaultRates { transient, timeout, ..FaultRates::default() };
        let truth = CountingOracle::new(vec![Label::Hotspot; 16]);
        let flaky = FaultyOracle::new(truth, rates, seed);
        let mut oracle = RetryOracle::with_clock(
            flaky,
            policy(max_attempts, 10, 1_000, 2.0, 0.5, seed),
            VirtualClock::new(),
        );
        for clip in 0..16usize {
            let retries_before = oracle.retries();
            let _ = oracle.try_query(clip);
            let attempts = 1 + (oracle.retries() - retries_before);
            prop_assert!(
                attempts <= max_attempts,
                "clip {clip} used {attempts} attempts under a bound of {max_attempts}"
            );
        }
        // Every retry waited exactly once, on the virtual clock.
        prop_assert_eq!(oracle.clock().sleeps().len(), oracle.retries());
    }

    #[test]
    fn delay_is_deterministic_in_seed_and_attempt(
        seed in any::<u64>(),
        attempt in 0usize..32,
    ) {
        let p = policy(8, 25, 4_000, 2.0, 0.9, seed);
        prop_assert_eq!(p.delay(attempt), p.delay(attempt));
    }
}
