use crate::Defect;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The binary outcome of lithography analysis on one clip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// At least one defect in the core region.
    Hotspot,
    /// Core prints cleanly.
    NonHotspot,
}

impl Label {
    /// `true` for [`Label::Hotspot`].
    pub fn is_hotspot(self) -> bool {
        matches!(self, Label::Hotspot)
    }

    /// Class index used by the classifier: non-hotspot = 0, hotspot = 1.
    pub fn class_index(self) -> usize {
        match self {
            Label::NonHotspot => 0,
            Label::Hotspot => 1,
        }
    }

    /// Inverse of [`Label::class_index`].
    ///
    /// # Panics
    ///
    /// Panics when `index > 1`.
    pub fn from_class_index(index: usize) -> Label {
        match index {
            0 => Label::NonHotspot,
            1 => Label::Hotspot,
            // lithohd-lint: allow(panic-safety) — documented contract: class indices of a binary task are 0 or 1
            _ => panic!("binary label index must be 0 or 1, got {index}"),
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Hotspot => write!(f, "hotspot"),
            Label::NonHotspot => write!(f, "non-hotspot"),
        }
    }
}

/// The full result of analysing one clip: the defects found in its core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LithoReport {
    defects: Vec<Defect>,
}

impl LithoReport {
    /// Wraps a defect list produced by the simulator.
    pub fn new(defects: Vec<Defect>) -> Self {
        LithoReport { defects }
    }

    /// The defects found inside the clip core.
    pub fn defects(&self) -> &[Defect] {
        &self.defects
    }

    /// The clip label implied by the defect list (Definition 1 of the paper).
    pub fn label(&self) -> Label {
        if self.defects.is_empty() {
            Label::NonHotspot
        } else {
            Label::Hotspot
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DefectKind;
    use hotspot_geom::Point;

    #[test]
    fn empty_report_is_non_hotspot() {
        assert_eq!(LithoReport::new(Vec::new()).label(), Label::NonHotspot);
    }

    #[test]
    fn any_defect_makes_hotspot() {
        let report = LithoReport::new(vec![Defect {
            kind: DefectKind::Pinch,
            location: Point::new(0, 0),
            size_px: 5,
        }]);
        assert_eq!(report.label(), Label::Hotspot);
        assert!(report.label().is_hotspot());
    }

    #[test]
    fn class_index_roundtrip() {
        for label in [Label::Hotspot, Label::NonHotspot] {
            assert_eq!(Label::from_class_index(label.class_index()), label);
        }
    }

    #[test]
    #[should_panic(expected = "must be 0 or 1")]
    fn bad_class_index_panics() {
        let _ = Label::from_class_index(2);
    }
}
