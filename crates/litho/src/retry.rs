//! Retry, backoff, and quorum re-labelling over a fallible oracle.
//!
//! [`RetryOracle`] makes an unreliable [`LithoOracle`] dependable: retryable
//! failures are re-attempted under a bounded exponential-backoff-with-jitter
//! [`RetryPolicy`], waiting on an injectable [`Clock`] (tests use a
//! [`VirtualClock`] and never sleep for real). An optional quorum mode
//! re-simulates every queried clip `R` times cache-bypassing and majority-
//! votes the label, defending against *silent* corruption that no error code
//! reports. Every billable re-simulation still flows through the inner
//! oracle's `litho.oracle.calls` meter, so Eq. 2 accounting stays exact.

use crate::{Label, LithoOracle, OracleError, OracleStats};
use hotspot_telemetry as telemetry;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A source of waiting. Production code sleeps the thread
/// ([`SystemClock`]); tests record the requested delays ([`VirtualClock`]).
pub trait Clock: std::fmt::Debug {
    /// Waits for `duration` (or pretends to).
    fn sleep(&mut self, duration: Duration);
}

/// A [`Clock`] that actually sleeps the calling thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn sleep(&mut self, duration: Duration) {
        std::thread::sleep(duration);
    }
}

/// A [`Clock`] that records requested delays instead of sleeping — backoff
/// behaviour becomes observable and tests run at full speed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VirtualClock {
    slept: Vec<Duration>,
}

impl VirtualClock {
    /// A fresh virtual clock with no recorded sleeps.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Every delay requested so far, in order.
    pub fn sleeps(&self) -> &[Duration] {
        &self.slept
    }

    /// Total virtual time slept.
    pub fn total_slept(&self) -> Duration {
        self.slept.iter().sum()
    }
}

impl Clock for VirtualClock {
    fn sleep(&mut self, duration: Duration) {
        self.slept.push(duration);
    }
}

/// Bounded exponential backoff with deterministic jitter.
///
/// Attempt `n` (0-based) waits
/// `min(base · multiplier^n, max) · (1 + jitter · u_n)` capped again at
/// `max`, where `u_n ∈ [0, 1)` is drawn deterministically from
/// `(seed, n)`. With the effective jitter clamped to `multiplier − 1`,
/// the delay sequence is monotone non-decreasing — later attempts never
/// wait less (see the property test in `tests/retry_backoff.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum attempts per query (≥ 1); the first attempt counts.
    pub max_attempts: usize,
    /// Delay before the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Upper bound on any single delay, in milliseconds.
    pub max_delay_ms: u64,
    /// Geometric growth factor between attempts (clamped to ≥ 1).
    pub multiplier: f64,
    /// Jitter fraction in `[0, multiplier − 1]`; larger values are clamped
    /// so the delay sequence stays monotone.
    pub jitter: f64,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// Four attempts, 50 ms base doubling to a 2 s cap, 50 % jitter.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 50,
            max_delay_ms: 2000,
            multiplier: 2.0,
            jitter: 0.5,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no waiting).
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay_ms: 0,
            max_delay_ms: 0,
            ..RetryPolicy::default()
        }
    }

    /// The backoff delay after failed attempt `attempt` (0-based).
    /// Deterministic in `(self.seed, attempt)`.
    pub fn delay(&self, attempt: usize) -> Duration {
        let multiplier = self.multiplier.max(1.0);
        let cap = self.max_delay_ms as f64;
        let raw = (self.base_delay_ms as f64) * multiplier.powi(attempt.min(1_000) as i32);
        let capped = raw.min(cap);
        // Effective jitter ≤ multiplier − 1 keeps (1 + j·u) below the
        // geometric growth step, which is what makes the sequence monotone.
        let jitter = self.jitter.clamp(0.0, multiplier - 1.0);
        let unit = jitter_unit(self.seed, attempt);
        let jittered = (capped * (1.0 + jitter * unit)).min(cap);
        Duration::from_secs_f64(jittered.max(0.0) / 1000.0)
    }
}

/// A deterministic uniform draw in `[0, 1)` keyed on `(seed, attempt)`.
fn jitter_unit(seed: u64, attempt: usize) -> f64 {
    let key = seed.wrapping_add((attempt as u64).wrapping_mul(0xA076_1D64_78BD_642F));
    let mut rng = ChaCha8Rng::seed_from_u64(key);
    use rand::Rng;
    rng.gen_range(0.0..1.0)
}

/// A fault-tolerant wrapper: retry with backoff, optional quorum voting.
///
/// ```
/// use hotspot_litho::{
///     CountingOracle, FaultRates, FaultyOracle, Label, LithoOracle, RetryOracle, RetryPolicy,
///     VirtualClock,
/// };
///
/// let truth = CountingOracle::new(vec![Label::Hotspot; 16]);
/// let flaky = FaultyOracle::new(truth, FaultRates::transient_only(0.4), 5);
/// let mut oracle = RetryOracle::with_clock(flaky, RetryPolicy::default(), VirtualClock::new());
/// assert_eq!(oracle.try_query(0).unwrap(), Label::Hotspot);
/// ```
#[derive(Debug)]
pub struct RetryOracle<O, C = SystemClock> {
    inner: O,
    policy: RetryPolicy,
    clock: C,
    quorum: Option<usize>,
    retries: usize,
    giveups: usize,
    quorum_votes: usize,
}

impl<O: LithoOracle> RetryOracle<O, SystemClock> {
    /// Wraps `inner` with the given policy, sleeping on the real clock.
    pub fn new(inner: O, policy: RetryPolicy) -> Self {
        RetryOracle::with_clock(inner, policy, SystemClock)
    }
}

impl<O: LithoOracle, C: Clock> RetryOracle<O, C> {
    /// Wraps `inner` with the given policy and an explicit clock.
    ///
    /// # Panics
    ///
    /// Panics when `policy.max_attempts` is zero.
    pub fn with_clock(inner: O, policy: RetryPolicy, clock: C) -> Self {
        assert!(policy.max_attempts >= 1, "retry policy needs >= 1 attempt");
        RetryOracle {
            inner,
            policy,
            clock,
            quorum: None,
            retries: 0,
            giveups: 0,
            quorum_votes: 0,
        }
    }

    /// Enables quorum mode: every query casts `votes` labels (the first via
    /// the cached path, the rest via billable cache-bypassing re-simulation)
    /// and returns the majority. Ties — possible only with an even vote
    /// count — resolve to [`Label::Hotspot`], the conservative call in a
    /// flow where a missed hotspot costs a wafer and a false alarm costs one
    /// verification simulation. Odd counts (3 is typical) avoid ties.
    ///
    /// # Panics
    ///
    /// Panics when `votes` is zero.
    pub fn with_quorum(mut self, votes: usize) -> Self {
        assert!(votes >= 1, "quorum needs at least one vote");
        self.quorum = Some(votes);
        self
    }

    /// Failed attempts that were retried.
    pub fn retries(&self) -> usize {
        self.retries
    }

    /// Queries abandoned (permanent fault or retry budget exhausted).
    pub fn giveups(&self) -> usize {
        self.giveups
    }

    /// Labels cast as quorum votes.
    pub fn quorum_votes(&self) -> usize {
        self.quorum_votes
    }

    /// The policy in use.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The clock in use (tests inspect recorded [`VirtualClock`] sleeps).
    pub fn clock(&self) -> &C {
        &self.clock
    }

    /// Read access to the wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwraps the inner oracle, discarding the retry layer.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// One logical query with bounded retries; `resim` picks the
    /// cache-bypassing path.
    fn attempt(&mut self, index: usize, resim: bool) -> Result<Label, OracleError> {
        let mut last = OracleError::Permanent { index };
        for attempt in 0..self.policy.max_attempts {
            let outcome = if resim {
                self.inner.resimulate(index)
            } else {
                self.inner.try_query(index)
            };
            match outcome {
                Ok(label) => return Ok(label),
                Err(error) if !error.is_retryable() => {
                    self.give_up(index, error);
                    return Err(error);
                }
                Err(error) => {
                    last = error;
                    if attempt + 1 < self.policy.max_attempts {
                        self.retries += 1;
                        telemetry::counter(telemetry::names::ORACLE_RETRIES).incr();
                        let delay = self.policy.delay(attempt);
                        telemetry::debug(
                            "litho.retry",
                            "retrying failed oracle query",
                            &[
                                ("clip", (index as u64).into()),
                                ("attempt", ((attempt + 1) as u64).into()),
                                ("error", error.kind().into()),
                                ("backoff_ms", (delay.as_millis() as u64).into()),
                            ],
                        );
                        self.clock.sleep(delay);
                    }
                }
            }
        }
        self.give_up(index, last);
        Err(last)
    }

    fn give_up(&mut self, index: usize, error: OracleError) {
        self.giveups += 1;
        telemetry::counter(telemetry::names::ORACLE_GIVEUPS).incr();
        telemetry::warn(
            "litho.retry",
            "giving up on oracle query",
            &[
                ("clip", (index as u64).into()),
                ("error", error.kind().into()),
                ("max_attempts", (self.policy.max_attempts as u64).into()),
            ],
        );
    }

    /// Casts `votes` labels for `index` and majority-votes them.
    fn vote(&mut self, index: usize, votes: usize) -> Result<Label, OracleError> {
        // The first vote may be served from the inner cache for free; every
        // further vote is a billable re-simulation by construction.
        let first = self.attempt(index, false)?;
        let mut hotspot = first.is_hotspot() as usize;
        let mut cast = 1usize;
        for _ in 1..votes {
            // A lost vote degrades the quorum but does not void the query;
            // the giveup was already metered by `attempt`.
            if let Ok(label) = self.attempt(index, true) {
                hotspot += label.is_hotspot() as usize;
                cast += 1;
            }
        }
        self.quorum_votes += cast;
        telemetry::counter(telemetry::names::ORACLE_QUORUM_VOTES).add(cast as u64);
        // Majority hotspot, or a tie: err on the hotspot side.
        let label = if hotspot * 2 >= cast {
            Label::Hotspot
        } else {
            Label::NonHotspot
        };
        if cast > 1 && (hotspot != 0 && hotspot != cast) {
            telemetry::debug(
                "litho.retry",
                "quorum votes disagreed",
                &[
                    ("clip", (index as u64).into()),
                    ("hotspot_votes", (hotspot as u64).into()),
                    ("votes", (cast as u64).into()),
                ],
            );
        }
        Ok(label)
    }
}

impl<O: LithoOracle, C: Clock> LithoOracle for RetryOracle<O, C> {
    fn try_query(&mut self, index: usize) -> Result<Label, OracleError> {
        match self.quorum {
            Some(votes) if votes > 1 => self.vote(index, votes),
            _ => self.attempt(index, false),
        }
    }

    fn resimulate(&mut self, index: usize) -> Result<Label, OracleError> {
        self.attempt(index, true)
    }

    fn unique_queries(&self) -> usize {
        self.inner.unique_queries()
    }

    fn total_queries(&self) -> usize {
        self.inner.total_queries()
    }

    fn stats(&self) -> OracleStats {
        let mut stats = self.inner.stats();
        stats.retries += self.retries;
        stats.giveups += self.giveups;
        stats.quorum_votes += self.quorum_votes;
        stats
    }

    fn state_snapshot(&self) -> Option<crate::OracleStateSnapshot> {
        let mut state = self.inner.state_snapshot()?;
        state.retry = Some(crate::RetryMeterState {
            retries: self.retries,
            giveups: self.giveups,
            quorum_votes: self.quorum_votes,
        });
        Some(state)
    }

    fn restore_state(&mut self, state: &crate::OracleStateSnapshot) -> bool {
        if !self.inner.restore_state(state) {
            return false;
        }
        if let Some(retry) = &state.retry {
            self.retries = retry.retries;
            self.giveups = retry.giveups;
            self.quorum_votes = retry.quorum_votes;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountingOracle, FaultRates, FaultyOracle};

    fn truth() -> CountingOracle {
        CountingOracle::new(
            (0..64)
                .map(|i| {
                    if i % 5 == 0 {
                        Label::Hotspot
                    } else {
                        Label::NonHotspot
                    }
                })
                .collect(),
        )
    }

    fn flaky(rates: FaultRates, seed: u64) -> FaultyOracle<CountingOracle> {
        FaultyOracle::new(truth(), rates, seed)
    }

    #[test]
    fn retries_recover_transient_failures() {
        let mut o = RetryOracle::with_clock(
            flaky(FaultRates::transient_only(0.5), 21),
            RetryPolicy {
                max_attempts: 10,
                ..RetryPolicy::default()
            },
            VirtualClock::new(),
        );
        let mut plain = truth();
        for i in 0..64 {
            assert_eq!(o.try_query(i).unwrap(), plain.query(i), "clip {i}");
        }
        assert!(o.retries() > 0, "a 50% transient rate must force retries");
        assert_eq!(o.giveups(), 0);
        // All waiting went through the virtual clock.
        assert_eq!(o.clock().sleeps().len(), o.retries());
    }

    #[test]
    fn permanent_failures_give_up_immediately() {
        let inner = flaky(FaultRates::default(), 0).with_permanent_failures([7usize]);
        let mut o = RetryOracle::with_clock(inner, RetryPolicy::default(), VirtualClock::new());
        assert_eq!(o.try_query(7), Err(OracleError::Permanent { index: 7 }));
        assert_eq!(o.retries(), 0, "permanent errors are not retried");
        assert_eq!(o.giveups(), 1);
        assert!(o.clock().sleeps().is_empty());
    }

    #[test]
    fn retry_budget_is_bounded() {
        let mut o = RetryOracle::with_clock(
            flaky(FaultRates::transient_only(1.0), 3),
            RetryPolicy {
                max_attempts: 4,
                ..RetryPolicy::default()
            },
            VirtualClock::new(),
        );
        assert!(o.try_query(0).is_err());
        assert_eq!(o.retries(), 3, "max_attempts − 1 retries");
        assert_eq!(o.giveups(), 1);
        assert_eq!(o.clock().sleeps().len(), 3);
    }

    #[test]
    fn backoff_delays_grow_and_cap() {
        let policy = RetryPolicy {
            max_attempts: 12,
            base_delay_ms: 10,
            max_delay_ms: 200,
            multiplier: 2.0,
            jitter: 0.5,
            seed: 9,
        };
        let delays: Vec<Duration> = (0..11).map(|a| policy.delay(a)).collect();
        for pair in delays.windows(2) {
            assert!(pair[1] >= pair[0], "delays must be monotone: {delays:?}");
        }
        assert!(delays.iter().all(|d| *d <= Duration::from_millis(200)));
        assert_eq!(*delays.last().unwrap(), Duration::from_millis(200));
    }

    #[test]
    fn quorum_outvotes_silent_flips() {
        // 15% flip rate per attempt: a single read is wrong for ~10 of 64
        // clips, but a wrong 5-vote majority needs ≥3 flips (p ≈ 0.027).
        let rates = FaultRates {
            flip: 0.15,
            ..FaultRates::default()
        };
        let mut o = RetryOracle::with_clock(
            flaky(rates, 13),
            RetryPolicy::default(),
            VirtualClock::new(),
        )
        .with_quorum(5);
        let mut plain = truth();
        let mut wrong = 0;
        for i in 0..64 {
            if o.try_query(i).unwrap() != plain.query(i) {
                wrong += 1;
            }
        }
        assert!(wrong <= 5, "quorum left {wrong}/64 labels wrong");
        assert_eq!(o.quorum_votes(), 64 * 5);
        // 4 extra votes per clip are billable re-simulations.
        assert_eq!(o.unique_queries(), 64 + 64 * 4);
    }

    #[test]
    fn quorum_accounting_reaches_stats() {
        let mut o = RetryOracle::with_clock(truth(), RetryPolicy::default(), VirtualClock::new())
            .with_quorum(3);
        for i in 0..4 {
            o.try_query(i).unwrap();
        }
        let stats = o.stats();
        assert_eq!(stats.quorum_votes, 12);
        assert_eq!(stats.unique, 4 + 8, "2 extra billable votes per clip");
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.giveups, 0);
    }

    #[test]
    fn fault_free_oracle_is_untouched_by_the_wrapper() {
        let mut o = RetryOracle::with_clock(truth(), RetryPolicy::default(), VirtualClock::new());
        let mut plain = truth();
        for i in 0..64 {
            assert_eq!(o.try_query(i).unwrap(), plain.query(i));
        }
        assert_eq!(o.retries(), 0);
        assert_eq!(o.stats(), plain.stats());
    }

    #[test]
    fn stacked_state_snapshot_round_trips_and_resumes_the_fault_schedule() {
        let rates = FaultRates {
            transient: 0.3,
            flip: 0.2,
            ..FaultRates::default()
        };
        let policy = RetryPolicy {
            max_attempts: 6,
            ..RetryPolicy::default()
        };
        // Uninterrupted reference: query everything in one pass.
        let mut reference = RetryOracle::with_clock(
            FaultyOracle::new(truth(), rates, 17),
            policy,
            VirtualClock::new(),
        )
        .with_quorum(3);
        let full: Vec<Label> = (0..64).map(|i| reference.try_query(i).unwrap()).collect();

        // Interrupted run: stop half-way, capture, restore into a fresh
        // stack, finish. Labels and meters must match the reference exactly.
        let mut first = RetryOracle::with_clock(
            FaultyOracle::new(truth(), rates, 17),
            policy,
            VirtualClock::new(),
        )
        .with_quorum(3);
        let head: Vec<Label> = (0..32).map(|i| first.try_query(i).unwrap()).collect();
        let state = first.state_snapshot().expect("stack snapshots");
        assert!(state.retry.is_some() && state.fault.is_some());

        let mut resumed = RetryOracle::with_clock(
            FaultyOracle::new(truth(), rates, 17),
            policy,
            VirtualClock::new(),
        )
        .with_quorum(3);
        assert!(resumed.restore_state(&state));
        let tail: Vec<Label> = (32..64).map(|i| resumed.try_query(i).unwrap()).collect();

        let mut resumed_labels = head;
        resumed_labels.extend(tail);
        assert_eq!(resumed_labels, full);
        assert_eq!(resumed.stats(), reference.stats());
        assert_eq!(
            resumed.unique_queries(),
            reference.unique_queries(),
            "Litho# must be identical across the interruption"
        );
    }

    #[test]
    fn tie_votes_resolve_to_hotspot() {
        // flip rate 1.0 with 2 votes: both votes flip, so no tie — instead
        // craft a tie via an even quorum on a stream that flips exactly one
        // of two votes. Easier deterministic check: hotspot*2 == cast path.
        // 2 votes, one flipped: seed searched so clip 0 (Hotspot) yields one
        // flip in two attempts.
        let mut found = false;
        for seed in 0..200 {
            let rates = FaultRates {
                flip: 0.5,
                ..FaultRates::default()
            };
            let mut probe = FaultyOracle::new(truth(), rates, seed);
            let a = probe.try_query(0).unwrap();
            let b = probe.resimulate(0).unwrap();
            if a != b {
                let mut o = RetryOracle::with_clock(
                    FaultyOracle::new(truth(), rates, seed),
                    RetryPolicy::default(),
                    VirtualClock::new(),
                )
                .with_quorum(2);
                assert_eq!(o.try_query(0).unwrap(), Label::Hotspot);
                found = true;
                break;
            }
        }
        assert!(found, "no seed produced a split 2-vote quorum");
    }
}
