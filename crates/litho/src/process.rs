use crate::{Label, LithoConfig, LithoReport, LithoSimulator};
use hotspot_geom::{Raster, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One corner of the lithography process window: a (defocus, dose) excursion
/// from the nominal imaging condition.
///
/// Defocus is modelled as a blur-radius scale (> 1 = more defocused, wider
/// point spread); dose as a resist-threshold scale (> 1 = under-exposure,
/// features print smaller). These are the standard knobs of a
/// focus-exposure matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessCorner {
    /// Human-readable corner tag (`"nominal"`, `"defocus+"`, …).
    pub name: &'static str,
    /// Multiplier on the optical σ (1.0 = nominal focus).
    pub sigma_scale: f64,
    /// Multiplier on the resist threshold (1.0 = nominal dose).
    pub threshold_scale: f32,
}

impl ProcessCorner {
    /// The nominal condition.
    pub fn nominal() -> Self {
        ProcessCorner {
            name: "nominal",
            sigma_scale: 1.0,
            threshold_scale: 1.0,
        }
    }

    /// A conventional 5-corner focus-exposure window: nominal, ±10 % focus
    /// blur, ±6 % dose.
    pub fn standard_window() -> Vec<ProcessCorner> {
        vec![
            ProcessCorner::nominal(),
            ProcessCorner {
                name: "defocus+",
                sigma_scale: 1.10,
                threshold_scale: 1.0,
            },
            ProcessCorner {
                name: "defocus-",
                sigma_scale: 0.90,
                threshold_scale: 1.0,
            },
            ProcessCorner {
                name: "dose-",
                sigma_scale: 1.0,
                threshold_scale: 1.06,
            },
            ProcessCorner {
                name: "dose+",
                sigma_scale: 1.0,
                threshold_scale: 0.94,
            },
        ]
    }

    /// The litho configuration this corner induces on a nominal one.
    ///
    /// # Panics
    ///
    /// Panics when the scaled threshold leaves `(0, 1)` or the scaled sigma
    /// is not positive.
    pub fn apply(&self, nominal: &LithoConfig) -> LithoConfig {
        let mut config = nominal.clone();
        config.sigma = nominal.sigma * self.sigma_scale;
        config.resist_threshold = nominal.resist_threshold * self.threshold_scale;
        assert!(
            config.sigma > 0.0,
            "corner {} produces non-positive sigma",
            self.name
        );
        assert!(
            config.resist_threshold > 0.0 && config.resist_threshold < 1.0,
            "corner {} pushes the resist threshold to {}",
            self.name,
            config.resist_threshold
        );
        config
    }
}

/// The outcome of analysing one clip across a process window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessWindowReport {
    /// Per-corner `(corner name, report)` results, in window order.
    pub corners: Vec<(String, LithoReport)>,
}

impl ProcessWindowReport {
    /// A clip is a *process-window hotspot* when any corner fails — the
    /// conservative labelling a manufacturing sign-off uses.
    pub fn label(&self) -> Label {
        if self
            .corners
            .iter()
            .any(|(_, report)| report.label() == Label::Hotspot)
        {
            Label::Hotspot
        } else {
            Label::NonHotspot
        }
    }

    /// Names of the corners that failed.
    pub fn failing_corners(&self) -> Vec<&str> {
        self.corners
            .iter()
            .filter(|(_, report)| report.label() == Label::Hotspot)
            .map(|(name, _)| name.as_str())
            .collect()
    }
}

impl fmt::Display for ProcessWindowReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())?;
        let failing = self.failing_corners();
        if !failing.is_empty() {
            write!(f, " (fails: {})", failing.join(", "))?;
        }
        Ok(())
    }
}

/// Analyses a clip across a set of process corners.
///
/// Marginal geometry that survives the nominal condition often fails a
/// focus or dose excursion first — exactly the "weak pattern" class that
/// full-chip sign-off hunts for. This is an extension beyond the paper
/// (which labels at nominal only); benchmark generation continues to use
/// nominal labels.
pub fn analyze_process_window(
    nominal: &LithoConfig,
    corners: &[ProcessCorner],
    mask: &Raster,
    core: Rect,
) -> ProcessWindowReport {
    let corners = corners
        .iter()
        .map(|corner| {
            let sim = LithoSimulator::new(corner.apply(nominal));
            (corner.name.to_owned(), sim.analyze(mask, core))
        })
        .collect();
    ProcessWindowReport { corners }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geom::{Raster, Rect};

    fn mask_with_track(width: i64) -> (Raster, Rect) {
        let config = LithoConfig::duv_28nm();
        let mut raster = Raster::zeros(Rect::new(0, 0, 1200, 1200).unwrap(), config.pitch).unwrap();
        let y = 600 - width / 2;
        raster.fill_rect(&Rect::new(0, y, 1200, y + width).unwrap(), 1.0);
        (raster, Rect::new(300, 300, 900, 900).unwrap())
    }

    #[test]
    fn nominal_corner_is_identity() {
        let nominal = LithoConfig::duv_28nm();
        assert_eq!(ProcessCorner::nominal().apply(&nominal), nominal);
    }

    #[test]
    fn standard_window_has_five_corners() {
        let window = ProcessCorner::standard_window();
        assert_eq!(window.len(), 5);
        assert_eq!(window[0].name, "nominal");
    }

    #[test]
    fn robust_geometry_passes_every_corner() {
        let (mask, core) = mask_with_track(100);
        let report = analyze_process_window(
            &LithoConfig::duv_28nm(),
            &ProcessCorner::standard_window(),
            &mask,
            core,
        );
        assert_eq!(report.label(), Label::NonHotspot);
        assert!(report.failing_corners().is_empty());
    }

    #[test]
    fn hard_defect_fails_every_corner() {
        let (mask, core) = mask_with_track(30);
        let report = analyze_process_window(
            &LithoConfig::duv_28nm(),
            &ProcessCorner::standard_window(),
            &mask,
            core,
        );
        assert_eq!(report.label(), Label::Hotspot);
        assert!(report.failing_corners().len() >= 4, "{report}");
    }

    #[test]
    fn marginal_geometry_fails_off_nominal_first() {
        // Sweep widths downward until some width passes nominal but fails an
        // excursion — the process window must be strictly tighter than the
        // nominal condition.
        let nominal_config = LithoConfig::duv_28nm();
        let nominal_sim = LithoSimulator::new(nominal_config.clone());
        let window = ProcessCorner::standard_window();
        let mut found_marginal = false;
        for width in (34..=60).step_by(2) {
            let (mask, core) = mask_with_track(width);
            let nominal_label = nominal_sim.label(&mask, core);
            let pw = analyze_process_window(&nominal_config, &window, &mask, core);
            if nominal_label == Label::NonHotspot && pw.label() == Label::Hotspot {
                found_marginal = true;
                assert!(!pw.failing_corners().contains(&"nominal"));
            }
        }
        assert!(found_marginal, "no width was process-window-limited");
    }

    #[test]
    #[should_panic(expected = "resist threshold")]
    fn rejects_corner_outside_unit_threshold() {
        let corner = ProcessCorner {
            name: "absurd",
            sigma_scale: 1.0,
            threshold_scale: 5.0,
        };
        let _ = corner.apply(&LithoConfig::duv_28nm());
    }

    #[test]
    fn display_names_failing_corners() {
        let (mask, core) = mask_with_track(30);
        let report = analyze_process_window(
            &LithoConfig::duv_28nm(),
            &ProcessCorner::standard_window(),
            &mask,
            core,
        );
        let text = report.to_string();
        assert!(text.contains("hotspot") && text.contains("fails:"));
    }
}
