use crate::Bitmap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Edge-placement-error statistics of a printed contour against its design
/// intent.
///
/// For every design edge pixel (a metal pixel with a non-metal 4-neighbour),
/// the EPE is its Chebyshev distance to the nearest printed edge pixel —
/// how far the printed contour wandered from where the designer drew it.
/// The summary is what OPC and metrology flows report: mean, max, and a
/// histogram of per-edge-pixel errors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpeStats {
    /// Design edge pixels measured.
    pub edge_pixels: usize,
    /// Mean EPE in pixels.
    pub mean_px: f64,
    /// Maximum EPE in pixels (capped at the scan radius).
    pub max_px: usize,
    /// Histogram: `histogram[d]` = edge pixels at EPE exactly `d`, for
    /// `d ∈ 0..=radius`; pixels with no printed edge within the radius are
    /// counted in the last bucket.
    pub histogram: Vec<usize>,
}

impl EpeStats {
    /// Fraction of design edge pixels within `tolerance` pixels of the
    /// printed contour.
    pub fn within(&self, tolerance: usize) -> f64 {
        if self.edge_pixels == 0 {
            return 1.0;
        }
        let ok: usize = self.histogram.iter().take(tolerance + 1).sum();
        ok as f64 / self.edge_pixels as f64
    }
}

impl fmt::Display for EpeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EPE over {} edge px: mean {:.2}, max {}, within 1 px {:.1}%",
            self.edge_pixels,
            self.mean_px,
            self.max_px,
            self.within(1) * 100.0
        )
    }
}

/// Measures edge-placement error of `printed` against `target` up to a scan
/// radius (pixels farther than `radius` from any printed edge saturate).
///
/// # Panics
///
/// Panics when the bitmaps differ in size or `radius` is zero.
pub fn epe_stats(target: &Bitmap, printed: &Bitmap, radius: usize) -> EpeStats {
    assert_eq!(
        (target.width(), target.height()),
        (printed.width(), printed.height()),
        "bitmap dimensions differ"
    );
    assert!(radius > 0, "scan radius must be positive");
    let (w, h) = (target.width(), target.height());

    let edge_of = |bitmap: &Bitmap| -> Vec<bool> {
        let mut edges = vec![false; w * h];
        for row in 0..h {
            for col in 0..w {
                if !bitmap.at(row, col) {
                    continue;
                }
                let boundary = row == 0
                    || col == 0
                    || row + 1 == h
                    || col + 1 == w
                    || !bitmap.at(row - 1, col)
                    || !bitmap.at(row + 1, col)
                    || !bitmap.at(row, col - 1)
                    || !bitmap.at(row, col + 1);
                edges[row * w + col] = boundary;
            }
        }
        edges
    };
    let target_edges = edge_of(target);
    let printed_edges = edge_of(printed);

    let mut histogram = vec![0usize; radius + 1];
    let mut total = 0usize;
    let mut sum = 0.0f64;
    let mut max = 0usize;
    for row in 0..h {
        for col in 0..w {
            if !target_edges[row * w + col] {
                continue;
            }
            // Smallest Chebyshev ring containing a printed edge pixel.
            let mut distance = radius;
            'ring: for d in 0..radius {
                let r0 = row.saturating_sub(d);
                let r1 = (row + d).min(h - 1);
                let c0 = col.saturating_sub(d);
                let c1 = (col + d).min(w - 1);
                for r in r0..=r1 {
                    for c in c0..=c1 {
                        if printed_edges[r * w + c] {
                            distance = d;
                            break 'ring;
                        }
                    }
                }
            }
            histogram[distance] += 1;
            total += 1;
            sum += distance as f64;
            max = max.max(distance);
        }
    }
    EpeStats {
        edge_pixels: total,
        mean_px: if total > 0 { sum / total as f64 } else { 0.0 },
        max_px: max,
        histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aerial::AerialImage;
    use crate::{GaussianKernel, LithoConfig, ResistModel};
    use hotspot_geom::{Raster, Rect};

    fn bitmap_square(edge: usize, lo: usize, hi: usize) -> Bitmap {
        let mut bm = Bitmap::zeros(edge, edge);
        for r in lo..hi {
            for c in lo..hi {
                bm.set(r, c, true);
            }
        }
        bm
    }

    #[test]
    fn identical_contours_have_zero_epe() {
        let a = bitmap_square(20, 5, 15);
        let stats = epe_stats(&a, &a, 4);
        assert!(stats.edge_pixels > 0);
        assert_eq!(stats.mean_px, 0.0);
        assert_eq!(stats.max_px, 0);
        assert_eq!(stats.within(0), 1.0);
    }

    #[test]
    fn uniform_shrink_gives_uniform_epe() {
        let target = bitmap_square(20, 5, 15);
        let printed = bitmap_square(20, 7, 13); // pulled in by 2 px
        let stats = epe_stats(&target, &printed, 6);
        assert!(stats.mean_px > 1.0, "{stats}");
        assert!(stats.max_px >= 2);
        assert!(stats.within(1) < 1.0);
        assert_eq!(stats.within(6), 1.0);
    }

    #[test]
    fn missing_print_saturates_at_radius() {
        let target = bitmap_square(20, 5, 15);
        let printed = Bitmap::zeros(20, 20);
        let stats = epe_stats(&target, &printed, 3);
        assert_eq!(stats.max_px, 3);
        assert_eq!(stats.within(2), 0.0);
    }

    #[test]
    fn real_simulation_keeps_epe_within_tolerance() {
        // A comfortable wire through the litho model: EPE must sit within
        // the detector's tolerance (the premise of the defect checks).
        let config = LithoConfig::duv_28nm();
        let mut mask = Raster::zeros(Rect::new(0, 0, 1200, 1200).unwrap(), config.pitch).unwrap();
        mask.fill_rect(&Rect::new(0, 500, 1200, 620).unwrap(), 1.0);
        let aerial = AerialImage::from_mask(&mask, &GaussianKernel::new(config.sigma_px()));
        let printed = ResistModel::new(config.resist_threshold).develop(&aerial);
        let target = Bitmap::from_raster(&mask, 0.5);
        let stats = epe_stats(&target, &printed, 8);
        assert!(
            stats.within(config.epe_tolerance_px) > 0.99,
            "printed contour drifted: {stats}"
        );
    }

    #[test]
    fn display_is_informative() {
        let a = bitmap_square(10, 2, 8);
        let text = epe_stats(&a, &a, 2).to_string();
        assert!(text.contains("mean") && text.contains("within 1 px"));
    }

    #[test]
    #[should_panic(expected = "dimensions differ")]
    fn rejects_mismatched_bitmaps() {
        let _ = epe_stats(&Bitmap::zeros(4, 4), &Bitmap::zeros(5, 5), 2);
    }
}
