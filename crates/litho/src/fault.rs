//! Deterministic seeded fault injection for oracle robustness experiments.
//!
//! [`FaultyOracle`] wraps any [`LithoOracle`] and injects the failure modes a
//! simulation job farm exhibits in production: transient job failures,
//! deadline timeouts, detected result corruption, silent label flips, and
//! per-clip permanent failures. Every fault decision is a pure function of
//! `(seed, clip index, attempt number)`, so a fixed seed reproduces the same
//! fault schedule regardless of how queries interleave across clips — the
//! property that makes end-to-end resilience runs bit-identical.

use crate::{Label, LithoOracle, OracleError};
use hotspot_telemetry as telemetry;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Per-attempt fault probabilities of a [`FaultyOracle`].
///
/// `transient`, `timeout`, and `corrupt` surface as the corresponding
/// [`OracleError`] variants *before* the inner oracle is consulted (a failed
/// job bills no simulation). `flip` silently negates the returned label —
/// the corruption that only quorum re-simulation can catch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultRates {
    /// Probability of [`OracleError::Transient`] per attempt.
    pub transient: f64,
    /// Probability of [`OracleError::Timeout`] per attempt.
    pub timeout: f64,
    /// Probability of [`OracleError::CorruptedLabel`] per attempt.
    pub corrupt: f64,
    /// Probability of silently flipping the returned label per attempt.
    pub flip: f64,
}

impl FaultRates {
    /// Rates with only a transient-failure component.
    pub fn transient_only(transient: f64) -> Self {
        FaultRates {
            transient,
            ..FaultRates::default()
        }
    }

    /// Whether every rate is a probability and the error rates fit in one
    /// unit interval together.
    pub fn is_valid(&self) -> bool {
        let unit = |p: f64| (0.0..=1.0).contains(&p);
        unit(self.transient)
            && unit(self.timeout)
            && unit(self.corrupt)
            && unit(self.flip)
            && self.transient + self.timeout + self.corrupt <= 1.0
    }
}

/// Tally of the faults a [`FaultyOracle`] has injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FaultInjectionStats {
    /// Transient failures injected.
    pub transients: usize,
    /// Timeouts injected.
    pub timeouts: usize,
    /// Detected-corruption failures injected.
    pub corruptions: usize,
    /// Labels silently flipped.
    pub flips: usize,
    /// Queries rejected because the clip is permanently failed.
    pub permanents: usize,
}

impl FaultInjectionStats {
    /// Total faults injected.
    pub fn total(&self) -> usize {
        self.transients + self.timeouts + self.corruptions + self.flips + self.permanents
    }
}

/// A fault-injecting wrapper around any [`LithoOracle`].
///
/// ```
/// use hotspot_litho::{CountingOracle, FaultRates, FaultyOracle, Label, LithoOracle};
///
/// let truth = CountingOracle::new(vec![Label::Hotspot; 8]);
/// let mut flaky = FaultyOracle::new(truth, FaultRates::transient_only(1.0), 7);
/// assert!(flaky.try_query(0).is_err()); // every attempt fails at rate 1.0
/// ```
#[derive(Debug, Clone)]
pub struct FaultyOracle<O> {
    inner: O,
    rates: FaultRates,
    seed: u64,
    permanent: BTreeSet<usize>,
    attempts: BTreeMap<usize, u64>,
    injected: FaultInjectionStats,
}

impl<O: LithoOracle> FaultyOracle<O> {
    /// Wraps `inner`, injecting faults at the given rates, deterministically
    /// in `seed`.
    ///
    /// # Panics
    ///
    /// Panics when `rates` is not valid (see [`FaultRates::is_valid`]).
    pub fn new(inner: O, rates: FaultRates, seed: u64) -> Self {
        assert!(
            rates.is_valid(),
            "fault rates must be probabilities with transient+timeout+corrupt <= 1"
        );
        FaultyOracle {
            inner,
            rates,
            seed,
            permanent: BTreeSet::new(),
            attempts: BTreeMap::new(),
            injected: FaultInjectionStats::default(),
        }
    }

    /// Marks clips whose every query fails with [`OracleError::Permanent`].
    pub fn with_permanent_failures<I: IntoIterator<Item = usize>>(mut self, clips: I) -> Self {
        self.permanent.extend(clips);
        self
    }

    /// The faults injected so far.
    pub fn injected(&self) -> FaultInjectionStats {
        self.injected
    }

    /// The configured fault rates.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// Read access to the wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwraps the inner oracle, discarding the fault layer.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// Rolls the per-attempt fault dice for `index`. Returns the injected
    /// error, or the flip decision for a successful attempt.
    fn roll(&mut self, index: usize) -> Result<bool, OracleError> {
        if self.permanent.contains(&index) {
            self.injected.permanents += 1;
            self.record_fault("permanent", index);
            return Err(OracleError::Permanent { index });
        }
        let attempt = self.attempts.entry(index).or_insert(0);
        let nonce = *attempt;
        *attempt += 1;
        // Key the stream on (seed, index, attempt) so the schedule is a pure
        // function of the query's identity, not of global call order.
        let key = self
            .seed
            .wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(nonce.wrapping_mul(0xD1B5_4A32_D192_ED03));
        let mut rng = ChaCha8Rng::seed_from_u64(key);
        let u: f64 = rng.gen_range(0.0..1.0);
        if u < self.rates.transient {
            self.injected.transients += 1;
            self.record_fault("transient", index);
            return Err(OracleError::Transient { index });
        }
        if u < self.rates.transient + self.rates.timeout {
            self.injected.timeouts += 1;
            self.record_fault("timeout", index);
            return Err(OracleError::Timeout { index });
        }
        if u < self.rates.transient + self.rates.timeout + self.rates.corrupt {
            self.injected.corruptions += 1;
            self.record_fault("corrupted_label", index);
            return Err(OracleError::CorruptedLabel { index });
        }
        let flip = rng.gen_range(0.0..1.0) < self.rates.flip;
        if flip {
            self.injected.flips += 1;
            self.record_fault("flip", index);
        }
        Ok(flip)
    }

    fn record_fault(&self, kind: &str, index: usize) {
        telemetry::counter(telemetry::names::ORACLE_FAULTS_INJECTED).incr();
        telemetry::debug(
            "litho.fault",
            "fault injected",
            &[("kind", kind.into()), ("clip", (index as u64).into())],
        );
    }
}

fn negate(label: Label) -> Label {
    match label {
        Label::Hotspot => Label::NonHotspot,
        Label::NonHotspot => Label::Hotspot,
    }
}

impl<O: LithoOracle> LithoOracle for FaultyOracle<O> {
    fn try_query(&mut self, index: usize) -> Result<Label, OracleError> {
        let flip = self.roll(index)?;
        let label = self.inner.try_query(index)?;
        Ok(if flip { negate(label) } else { label })
    }

    fn resimulate(&mut self, index: usize) -> Result<Label, OracleError> {
        let flip = self.roll(index)?;
        let label = self.inner.resimulate(index)?;
        Ok(if flip { negate(label) } else { label })
    }

    fn unique_queries(&self) -> usize {
        self.inner.unique_queries()
    }

    fn total_queries(&self) -> usize {
        self.inner.total_queries()
    }

    fn stats(&self) -> crate::OracleStats {
        self.inner.stats()
    }

    fn state_snapshot(&self) -> Option<crate::OracleStateSnapshot> {
        let mut state = self.inner.state_snapshot()?;
        state.fault = Some(crate::FaultMeterState {
            attempts: self.attempts.iter().map(|(&i, &n)| (i, n)).collect(),
            injected: self.injected,
        });
        Some(state)
    }

    fn restore_state(&mut self, state: &crate::OracleStateSnapshot) -> bool {
        if !self.inner.restore_state(state) {
            return false;
        }
        if let Some(fault) = &state.fault {
            // The attempt counters key the (seed, clip, attempt) fault
            // schedule, so restoring them keeps the schedule aligned with
            // the interrupted run. Permanent-failure clips are
            // configuration, rebuilt by the constructor.
            self.attempts = fault.attempts.iter().copied().collect();
            self.injected = fault.injected;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CountingOracle;

    fn truth() -> CountingOracle {
        CountingOracle::new(
            (0..32)
                .map(|i| {
                    if i % 4 == 0 {
                        Label::Hotspot
                    } else {
                        Label::NonHotspot
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn zero_rates_are_transparent() {
        let mut plain = truth();
        let mut faulty = FaultyOracle::new(truth(), FaultRates::default(), 1);
        for i in 0..32 {
            assert_eq!(faulty.try_query(i).unwrap(), plain.query(i));
        }
        assert_eq!(faulty.injected().total(), 0);
        assert_eq!(faulty.unique_queries(), 32);
    }

    #[test]
    fn fault_schedule_is_deterministic_in_seed() {
        let run = |seed: u64| -> Vec<Result<Label, OracleError>> {
            let mut o = FaultyOracle::new(
                truth(),
                FaultRates {
                    transient: 0.3,
                    timeout: 0.1,
                    corrupt: 0.05,
                    flip: 0.1,
                },
                seed,
            );
            (0..32)
                .flat_map(|i| (0..3).map(move |_| i))
                .map(|i| o.try_query(i))
                .collect()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn schedule_is_independent_of_interleaving() {
        let rates = FaultRates::transient_only(0.5);
        let mut a = FaultyOracle::new(truth(), rates, 3);
        let mut b = FaultyOracle::new(truth(), rates, 3);
        // a queries clip-major, b round-robins; per-(clip, attempt) outcomes
        // must agree.
        let mut outcomes_a = std::collections::HashMap::new();
        for clip in 0..8 {
            for attempt in 0..4 {
                outcomes_a.insert((clip, attempt), a.try_query(clip).is_ok());
            }
        }
        for attempt in 0..4 {
            for clip in 0..8 {
                assert_eq!(
                    b.try_query(clip).is_ok(),
                    outcomes_a[&(clip, attempt)],
                    "clip {clip} attempt {attempt}"
                );
            }
        }
    }

    #[test]
    fn retries_eventually_succeed_under_partial_rates() {
        let mut o = FaultyOracle::new(truth(), FaultRates::transient_only(0.5), 11);
        for i in 0..32 {
            let mut attempts = 0;
            loop {
                attempts += 1;
                assert!(attempts < 100, "clip {i} never succeeded");
                if o.try_query(i).is_ok() {
                    break;
                }
            }
        }
        assert!(o.injected().transients > 0);
    }

    #[test]
    fn permanent_failures_never_recover() {
        let mut o = FaultyOracle::new(truth(), FaultRates::default(), 0)
            .with_permanent_failures([3usize, 5]);
        for _ in 0..10 {
            assert_eq!(o.try_query(3), Err(OracleError::Permanent { index: 3 }));
            assert_eq!(o.resimulate(5), Err(OracleError::Permanent { index: 5 }));
        }
        assert!(o.try_query(4).is_ok());
        assert_eq!(o.injected().permanents, 20);
    }

    #[test]
    fn flips_negate_the_inner_label() {
        let mut o = FaultyOracle::new(
            truth(),
            FaultRates {
                flip: 1.0,
                ..FaultRates::default()
            },
            2,
        );
        let mut plain = truth();
        for i in 0..32 {
            assert_eq!(o.try_query(i).unwrap(), negate(plain.query(i)));
        }
        assert_eq!(o.injected().flips, 32);
    }

    #[test]
    fn failed_attempts_bill_no_simulation() {
        let mut o = FaultyOracle::new(truth(), FaultRates::transient_only(1.0), 4);
        for i in 0..8 {
            assert!(o.try_query(i).is_err());
        }
        assert_eq!(o.unique_queries(), 0);
        assert_eq!(o.total_queries(), 0);
    }

    #[test]
    #[should_panic(expected = "fault rates")]
    fn invalid_rates_are_rejected() {
        let _ = FaultyOracle::new(
            truth(),
            FaultRates {
                transient: 0.8,
                timeout: 0.5,
                ..FaultRates::default()
            },
            0,
        );
    }

    #[test]
    fn out_of_range_passes_through() {
        let mut o = FaultyOracle::new(truth(), FaultRates::default(), 0);
        assert!(matches!(
            o.try_query(999),
            Err(OracleError::OutOfRange { index: 999, .. })
        ));
    }
}
