use crate::GaussianKernel;
use hotspot_geom::{Raster, Rect};

/// The simulated aerial intensity image of a mask raster.
///
/// Intensities are normalised: a fully open mask region converges to 1.0,
/// empty regions to 0.0. Produced by [`crate::LithoSimulator::aerial_image`].
#[derive(Debug, Clone, PartialEq)]
pub struct AerialImage {
    region: Rect,
    width: usize,
    height: usize,
    intensity: Vec<f32>,
}

impl AerialImage {
    /// Convolves a mask raster with the optical kernel.
    pub fn from_mask(mask: &Raster, kernel: &GaussianKernel) -> Self {
        let mut intensity = vec![0.0f32; mask.pixels().len()];
        kernel.convolve_2d(mask.pixels(), &mut intensity, mask.width(), mask.height());
        AerialImage {
            region: mask.region(),
            width: mask.width(),
            height: mask.height(),
            intensity,
        }
    }

    /// Layout region covered by the image.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Row-major intensity data (row 0 = bottom).
    pub fn intensity(&self) -> &[f32] {
        &self.intensity
    }

    /// Intensity at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of bounds.
    pub fn at(&self, row: usize, col: usize) -> f32 {
        assert!(
            row < self.height && col < self.width,
            "aerial image index out of bounds"
        );
        self.intensity[row * self.width + col]
    }

    /// Maximum intensity anywhere in the image.
    pub fn peak(&self) -> f32 {
        self.intensity.iter().copied().fold(0.0, f32::max)
    }

    /// Image-log-slope proxy: the maximum absolute intensity difference
    /// between 4-neighbouring pixels. Sharper images print more reliably.
    pub fn max_gradient(&self) -> f32 {
        let mut g = 0.0f32;
        for row in 0..self.height {
            for col in 0..self.width {
                let v = self.intensity[row * self.width + col];
                if col + 1 < self.width {
                    g = g.max((v - self.intensity[row * self.width + col + 1]).abs());
                }
                if row + 1 < self.height {
                    g = g.max((v - self.intensity[(row + 1) * self.width + col]).abs());
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geom::{Raster, Rect};

    fn mask_with(rects: &[Rect]) -> Raster {
        let mut r = Raster::zeros(Rect::new(0, 0, 640, 640).unwrap(), 10).unwrap();
        for rect in rects {
            r.fill_rect(rect, 1.0);
        }
        r
    }

    #[test]
    fn empty_mask_is_dark() {
        let img = AerialImage::from_mask(&mask_with(&[]), &GaussianKernel::new(3.0));
        assert_eq!(img.peak(), 0.0);
    }

    #[test]
    fn large_pad_reaches_full_intensity() {
        let img = AerialImage::from_mask(
            &mask_with(&[Rect::new(0, 0, 640, 640).unwrap()]),
            &GaussianKernel::new(3.0),
        );
        assert!((img.peak() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn narrow_line_peaks_below_one() {
        // A 30 nm line blurred by a 30 nm sigma: peak falls well below open-frame.
        let img = AerialImage::from_mask(
            &mask_with(&[Rect::new(0, 300, 640, 330).unwrap()]),
            &GaussianKernel::new(3.0),
        );
        let peak = img.peak();
        assert!(peak > 0.1 && peak < 0.6, "peak = {peak}");
    }

    #[test]
    fn wider_line_is_brighter() {
        let k = GaussianKernel::new(3.0);
        let narrow =
            AerialImage::from_mask(&mask_with(&[Rect::new(0, 300, 640, 340).unwrap()]), &k);
        let wide = AerialImage::from_mask(&mask_with(&[Rect::new(0, 280, 640, 360).unwrap()]), &k);
        assert!(wide.peak() > narrow.peak());
    }

    #[test]
    fn gap_between_lines_gains_intensity() {
        let k = GaussianKernel::new(3.0);
        // 40 nm slot between two wide lines: proximity fills the gap.
        let img = AerialImage::from_mask(
            &mask_with(&[
                Rect::new(0, 200, 640, 300).unwrap(),
                Rect::new(0, 340, 640, 440).unwrap(),
            ]),
            &k,
        );
        // Sample mid-gap (y = 320 nm → row 32).
        let mid_gap = img.at(32, 32);
        assert!(mid_gap > 0.4, "mid-gap intensity {mid_gap}");
    }

    #[test]
    fn max_gradient_positive_for_edges() {
        let img = AerialImage::from_mask(
            &mask_with(&[Rect::new(0, 0, 640, 320).unwrap()]),
            &GaussianKernel::new(2.0),
        );
        assert!(img.max_gradient() > 0.01);
    }
}
