use hotspot_geom::Coord;
use serde::{Deserialize, Serialize};

/// Tuning parameters of the lithography model.
///
/// The defaults model a DUV-like 28 nm-class metal layer rasterised at
/// 10 nm/pixel: features ≳ 60 nm wide print reliably, slots ≳ 60 nm resolve,
/// and anything much tighter bridges or pinches. Benchmark presets derive
/// scaled variants (see `hotspot-layout`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LithoConfig {
    /// Raster pixel pitch in nanometres.
    pub pitch: Coord,
    /// Optical point-spread 1-σ radius in nanometres.
    pub sigma: f64,
    /// Resist development threshold on normalised aerial intensity.
    pub resist_threshold: f32,
    /// Edge-placement tolerance in pixels: printed edges may wander this far
    /// from the design intent before pixels count as violations.
    pub epe_tolerance_px: usize,
    /// Minimum size (in pixels) of a violation cluster to count as a defect.
    pub min_defect_px: usize,
}

impl LithoConfig {
    /// Optical sigma expressed in pixels.
    pub fn sigma_px(&self) -> f64 {
        self.sigma / self.pitch as f64
    }

    /// Preset for a 28 nm-class DUV metal layer (ICCAD12-like).
    pub fn duv_28nm() -> Self {
        LithoConfig {
            pitch: 10,
            sigma: 30.0,
            resist_threshold: 0.44,
            epe_tolerance_px: 2,
            min_defect_px: 3,
        }
    }

    /// Preset for a 7 nm-class EUV metal layer (ICCAD16-like).
    ///
    /// Geometry is specified in the same integer unit but with a finer pitch
    /// interpretation; the optical blur is proportionally tighter.
    pub fn euv_7nm() -> Self {
        LithoConfig {
            pitch: 4,
            sigma: 12.0,
            resist_threshold: 0.44,
            epe_tolerance_px: 2,
            min_defect_px: 3,
        }
    }
}

impl Default for LithoConfig {
    /// Same as [`LithoConfig::duv_28nm`].
    fn default() -> Self {
        LithoConfig::duv_28nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_duv() {
        assert_eq!(LithoConfig::default(), LithoConfig::duv_28nm());
    }

    #[test]
    fn sigma_px_scales_with_pitch() {
        let c = LithoConfig::duv_28nm();
        assert!((c.sigma_px() - 3.0).abs() < 1e-9);
        let e = LithoConfig::euv_7nm();
        assert!((e.sigma_px() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip() {
        let c = LithoConfig::euv_7nm();
        let json = serde_json::to_string(&c).unwrap();
        let back: LithoConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
