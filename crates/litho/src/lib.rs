//! Aerial-image lithography simulation and defect-labelling oracle.
//!
//! The DAC 2021 paper treats lithography simulation as an expensive black box
//! that assigns every queried clip a *hotspot* / *non-hotspot* label; the
//! number of invocations ("litho-clips", Definition 3) is the cost metric the
//! whole sampling framework minimises. This crate provides a deterministic,
//! physically-motivated stand-in:
//!
//! 1. **Aerial image** — the clip raster (mask transmission) is convolved
//!    with a separable Gaussian optical kernel ([`GaussianKernel`]),
//!    approximating the partially-coherent imaging point-spread function.
//! 2. **Resist model** — a constant-threshold resist ([`ResistModel`]) turns
//!    the aerial intensity into a printed binary contour ([`Bitmap`]).
//! 3. **Defect detection** — the printed contour is compared against the
//!    design intent with an edge-placement tolerance; clustered violations
//!    inside the clip *core* are reported as [`Defect`]s (bridges where
//!    resist prints between shapes, pinches where a shape fails to print).
//!
//! A clip is a **hotspot** when at least one defect lands in its core. The
//! [`CountingOracle`] wrapper meters every query so experiments can report
//! the paper's `Litho#` column faithfully.
//!
//! # Example
//!
//! ```
//! use hotspot_geom::{ClipWindow, Raster, Rect};
//! use hotspot_litho::{LithoConfig, LithoSimulator, Label};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = LithoConfig::default();
//! let sim = LithoSimulator::new(config.clone());
//! let clip = ClipWindow::new(Rect::new(0, 0, 1200, 1200)?, 600)?;
//!
//! // A comfortable, wide wire prints cleanly: non-hotspot.
//! let mut raster = Raster::zeros_for(&clip, config.pitch)?;
//! raster.fill_rect(&Rect::new(100, 540, 1100, 660)?, 1.0);
//! let report = sim.analyze(&raster, clip.core());
//! assert_eq!(report.label(), Label::NonHotspot);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod aerial;
mod bitmap;
mod config;
mod defect;
mod epe;
mod fault;
mod kernel;
mod oracle;
mod process;
mod report;
mod resist;
mod retry;

pub use aerial::AerialImage;
pub use bitmap::Bitmap;
pub use config::LithoConfig;
pub use defect::{Defect, DefectKind};
pub use epe::{epe_stats, EpeStats};
pub use fault::{FaultInjectionStats, FaultRates, FaultyOracle};
pub use kernel::GaussianKernel;
pub use oracle::{
    CountingOracle, FaultMeterState, LithoOracle, OracleError, OracleStateSnapshot, OracleStats,
    RetryMeterState,
};
pub use process::{analyze_process_window, ProcessCorner, ProcessWindowReport};
pub use report::{Label, LithoReport};
pub use resist::ResistModel;
pub use retry::{Clock, RetryOracle, RetryPolicy, SystemClock, VirtualClock};

use hotspot_geom::{Raster, Rect};

/// End-to-end lithography simulator: aerial image → resist → defect check.
///
/// See the [crate-level documentation](crate) for the model description and a
/// usage example.
#[derive(Debug, Clone)]
pub struct LithoSimulator {
    config: LithoConfig,
    kernel: GaussianKernel,
    resist: ResistModel,
}

impl LithoSimulator {
    /// Creates a simulator from a configuration.
    pub fn new(config: LithoConfig) -> Self {
        let kernel = GaussianKernel::new(config.sigma_px());
        let resist = ResistModel::new(config.resist_threshold);
        LithoSimulator {
            config,
            kernel,
            resist,
        }
    }

    /// The configuration this simulator was built with.
    pub fn config(&self) -> &LithoConfig {
        &self.config
    }

    /// Computes the aerial intensity image of a mask raster.
    pub fn aerial_image(&self, mask: &Raster) -> AerialImage {
        AerialImage::from_mask(mask, &self.kernel)
    }

    /// Full analysis of one clip: simulate, develop, and check the core.
    ///
    /// `core` is given in layout coordinates and is intersected with the
    /// raster region; defects outside it are ignored per Definition 1 of the
    /// paper.
    pub fn analyze(&self, mask: &Raster, core: Rect) -> LithoReport {
        let aerial = self.aerial_image(mask);
        let printed = self.resist.develop(&aerial);
        let target = Bitmap::from_raster(mask, 0.5);
        let defects = defect::find_defects(&target, &printed, mask, core, &self.config);
        LithoReport::new(defects)
    }

    /// Convenience wrapper returning only the hotspot label.
    pub fn label(&self, mask: &Raster, core: Rect) -> Label {
        self.analyze(mask, core).label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geom::{ClipWindow, Raster, Rect};

    fn clip() -> ClipWindow {
        ClipWindow::new(Rect::new(0, 0, 1200, 1200).unwrap(), 600).unwrap()
    }

    fn sim() -> LithoSimulator {
        LithoSimulator::new(LithoConfig::default())
    }

    fn raster_for(clip: &ClipWindow) -> Raster {
        Raster::zeros_for(clip, LithoConfig::default().pitch).unwrap()
    }

    #[test]
    fn empty_clip_is_clean() {
        let c = clip();
        let r = raster_for(&c);
        assert_eq!(sim().label(&r, c.core()), Label::NonHotspot);
    }

    #[test]
    fn wide_wire_prints_cleanly() {
        let c = clip();
        let mut r = raster_for(&c);
        r.fill_rect(&Rect::new(100, 520, 1100, 680).unwrap(), 1.0);
        assert_eq!(sim().label(&r, c.core()), Label::NonHotspot);
    }

    #[test]
    fn narrow_wire_pinches() {
        let c = clip();
        let mut r = raster_for(&c);
        // Far below the printable linewidth: resist fails to hold the line.
        r.fill_rect(&Rect::new(100, 590, 1100, 620).unwrap(), 1.0);
        let report = sim().analyze(&r, c.core());
        assert_eq!(report.label(), Label::Hotspot);
        assert!(report.defects().iter().any(|d| d.kind == DefectKind::Pinch));
    }

    #[test]
    fn tight_pair_bridges() {
        let c = clip();
        let mut r = raster_for(&c);
        // Two wide wires separated by a sub-resolution slot.
        r.fill_rect(&Rect::new(100, 420, 1100, 580).unwrap(), 1.0);
        r.fill_rect(&Rect::new(100, 610, 1100, 770).unwrap(), 1.0);
        let report = sim().analyze(&r, c.core());
        assert_eq!(report.label(), Label::Hotspot);
        assert!(report
            .defects()
            .iter()
            .any(|d| d.kind == DefectKind::Bridge));
    }

    #[test]
    fn defect_outside_core_does_not_count() {
        let c = clip();
        let mut r = raster_for(&c);
        // Same pinching wire as above but near the clip edge, outside the core.
        r.fill_rect(&Rect::new(100, 40, 1100, 70).unwrap(), 1.0);
        assert_eq!(sim().label(&r, c.core()), Label::NonHotspot);
    }

    #[test]
    fn analysis_is_deterministic() {
        let c = clip();
        let mut r = raster_for(&c);
        r.fill_rect(&Rect::new(100, 590, 1100, 620).unwrap(), 1.0);
        let a = sim().analyze(&r, c.core());
        let b = sim().analyze(&r, c.core());
        assert_eq!(a.defects().len(), b.defects().len());
        assert_eq!(a.label(), b.label());
    }
}
