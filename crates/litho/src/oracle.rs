use crate::Label;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Why an oracle query failed.
///
/// A production flow fronts a simulation job farm where queries fail
/// transiently, exceed deadlines, or come back corrupted; the taxonomy below
/// is what a retry policy ([`crate::RetryOracle`]) needs to decide whether a
/// failure is worth re-attempting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OracleError {
    /// The simulation job failed for an ephemeral reason (farm hiccup,
    /// preempted worker). Retryable.
    Transient {
        /// The queried clip.
        index: usize,
    },
    /// The simulation exceeded its deadline. Retryable — a later attempt may
    /// land on a faster worker.
    Timeout {
        /// The queried clip.
        index: usize,
    },
    /// A result arrived but failed integrity checks. Retryable — the
    /// underlying simulation is deterministic, only the transport corrupted.
    CorruptedLabel {
        /// The queried clip.
        index: usize,
    },
    /// The clip can never be simulated (malformed geometry, poisoned job).
    /// Not retryable.
    Permanent {
        /// The queried clip.
        index: usize,
    },
    /// The index does not address a clip of the population. Not retryable —
    /// this is a caller bug, not a farm fault.
    OutOfRange {
        /// The offending index.
        index: usize,
        /// Population size.
        len: usize,
    },
}

impl OracleError {
    /// The clip index the failed query addressed.
    pub fn index(&self) -> usize {
        match *self {
            OracleError::Transient { index }
            | OracleError::Timeout { index }
            | OracleError::CorruptedLabel { index }
            | OracleError::Permanent { index }
            | OracleError::OutOfRange { index, .. } => index,
        }
    }

    /// Whether a retry can plausibly succeed ([`OracleError::Transient`],
    /// [`OracleError::Timeout`], [`OracleError::CorruptedLabel`]).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            OracleError::Transient { .. }
                | OracleError::Timeout { .. }
                | OracleError::CorruptedLabel { .. }
        )
    }

    /// Short machine-readable tag for telemetry fields.
    pub fn kind(&self) -> &'static str {
        match self {
            OracleError::Transient { .. } => "transient",
            OracleError::Timeout { .. } => "timeout",
            OracleError::CorruptedLabel { .. } => "corrupted_label",
            OracleError::Permanent { .. } => "permanent",
            OracleError::OutOfRange { .. } => "out_of_range",
        }
    }
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::Transient { index } => {
                write!(f, "transient simulation failure on clip {index}")
            }
            OracleError::Timeout { index } => write!(f, "simulation timeout on clip {index}"),
            OracleError::CorruptedLabel { index } => {
                write!(f, "corrupted label detected for clip {index}")
            }
            OracleError::Permanent { index } => {
                write!(f, "permanent simulation failure on clip {index}")
            }
            OracleError::OutOfRange { index, len } => {
                write!(f, "oracle query {index} out of range ({len} clips)")
            }
        }
    }
}

impl std::error::Error for OracleError {}

/// A labelling oracle over an indexed clip population.
///
/// Active-learning experiments address clips by dataset index; the oracle
/// answers with the lithography label and meters the cost. Fault-free
/// implementations are *consistent* (repeated queries of one index return
/// the same label); fault-injecting wrappers such as [`crate::FaultyOracle`]
/// deliberately break that contract, which is what the quorum mode of
/// [`crate::RetryOracle`] defends against.
pub trait LithoOracle {
    /// Labels clip `index`, or reports why the simulation failed.
    ///
    /// # Errors
    ///
    /// [`OracleError::OutOfRange`] when `index` does not address a clip;
    /// fault-injecting or remote oracles may return any other variant.
    fn try_query(&mut self, index: usize) -> Result<Label, OracleError>;

    /// Labels clip `index` — the legacy infallible path, re-expressed in
    /// terms of [`LithoOracle::try_query`].
    ///
    /// # Panics
    ///
    /// Panics when `try_query` fails: out-of-range indices, or an
    /// unrecovered fault from a fallible implementation. Fault-tolerant
    /// callers must use `try_query` instead.
    fn query(&mut self, index: usize) -> Label {
        match self.try_query(index) {
            Ok(label) => label,
            // lithohd-lint: allow(panic-safety) — documented legacy path; fault-tolerant callers use `try_query`
            Err(error) => panic!("{error}"),
        }
    }

    /// Re-simulates clip `index` bypassing any result cache, billing a fresh
    /// simulation. Quorum voting uses this to obtain independent labels for
    /// a suspect clip.
    ///
    /// The default forwards to [`LithoOracle::try_query`], which is correct
    /// for cacheless implementations.
    ///
    /// # Errors
    ///
    /// Same contract as [`LithoOracle::try_query`].
    fn resimulate(&mut self, index: usize) -> Result<Label, OracleError> {
        self.try_query(index)
    }

    /// Labels a batch of clips, returning one result per index in order.
    ///
    /// The default queries sequentially through
    /// [`LithoOracle::try_query`], preserving the single-clip semantics
    /// exactly; sharded implementations override this to fan the batch out
    /// across worker threads while keeping the merged results, billing, and
    /// telemetry identical to the sequential order.
    fn try_query_batch(&mut self, indices: &[usize]) -> Vec<Result<Label, OracleError>> {
        indices.iter().map(|&index| self.try_query(index)).collect()
    }

    /// Billable simulations so far: distinct clips simulated plus
    /// cache-bypassing re-simulations — the paper's litho-clip count.
    /// Re-querying a cached clip is free, mirroring a real flow that stores
    /// simulation results.
    fn unique_queries(&self) -> usize;

    /// Total query calls including cache hits.
    fn total_queries(&self) -> usize;

    /// Snapshot of usage statistics. Wrappers that retry or vote fold their
    /// own meters into the snapshot.
    fn stats(&self) -> OracleStats {
        OracleStats {
            unique: self.unique_queries(),
            total: self.total_queries(),
            ..OracleStats::default()
        }
    }

    /// Captures the oracle stack's mutable state (result cache, billing
    /// meters, wrapper bookkeeping) for a checkpoint, or `None` when the
    /// implementation does not support state capture. Wrappers forward to
    /// the wrapped oracle and fold their own state in.
    fn state_snapshot(&self) -> Option<OracleStateSnapshot> {
        None
    }

    /// Restores a [`LithoOracle::state_snapshot`] capture, returning whether
    /// the oracle accepted it. Restoring bills nothing: cache entries come
    /// back as already-paid-for results, so a resumed run re-queries them
    /// for free instead of re-billing them into `litho.oracle.calls`.
    fn restore_state(&mut self, _state: &OracleStateSnapshot) -> bool {
        false
    }
}

/// Portable capture of an oracle stack's mutable state, produced by
/// [`LithoOracle::state_snapshot`] and consumed by
/// [`LithoOracle::restore_state`] when a checkpointed run resumes.
///
/// The cache carries *already-billed* simulation results; restoring it is
/// what keeps a resumed run's Litho# identical to an uninterrupted run's —
/// clips labelled before the interruption are never re-billed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OracleStateSnapshot {
    /// Cached `(clip, label)` results in ascending clip order.
    pub cache: Vec<(usize, Label)>,
    /// Total query calls including cache hits.
    pub total: usize,
    /// Cache-bypassing re-simulations billed.
    pub resimulations: usize,
    /// Retry-layer meters, present when a `RetryOracle` wraps the stack.
    pub retry: Option<RetryMeterState>,
    /// Fault-injection bookkeeping, present when a `FaultyOracle` is in the
    /// stack (its per-clip attempt counts drive the deterministic fault
    /// schedule, so they must survive a resume).
    pub fault: Option<FaultMeterState>,
}

/// Mutable meters of a `RetryOracle`, folded into [`OracleStateSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryMeterState {
    /// Failed attempts that were retried.
    pub retries: usize,
    /// Queries abandoned after exhausting retries or permanent faults.
    pub giveups: usize,
    /// Labels cast as quorum votes.
    pub quorum_votes: usize,
}

/// Mutable state of a `FaultyOracle`, folded into [`OracleStateSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultMeterState {
    /// Per-clip attempt counters `(clip, attempts)` in ascending clip order;
    /// the seeded fault schedule is keyed on `(seed, clip, attempt)`.
    pub attempts: Vec<(usize, u64)>,
    /// Faults injected so far.
    pub injected: crate::FaultInjectionStats,
}

/// Aggregate statistics of an oracle's usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct OracleStats {
    /// Billable simulations (distinct clips plus cache-bypassing
    /// re-simulations) — the litho-clip count of Eq. 2.
    pub unique: usize,
    /// Total queries including cache hits.
    pub total: usize,
    /// Failed attempts absorbed by a retry wrapper.
    pub retries: usize,
    /// Queries abandoned after exhausting retries or hitting a permanent
    /// fault.
    pub giveups: usize,
    /// Labels cast as quorum votes.
    pub quorum_votes: usize,
}

impl OracleStats {
    /// Per-run statistics: the component-wise difference `self - earlier`.
    /// Saturates at zero, so a stale `earlier` snapshot cannot underflow.
    pub fn delta_since(&self, earlier: &OracleStats) -> OracleStats {
        OracleStats {
            unique: self.unique.saturating_sub(earlier.unique),
            total: self.total.saturating_sub(earlier.total),
            retries: self.retries.saturating_sub(earlier.retries),
            giveups: self.giveups.saturating_sub(earlier.giveups),
            quorum_votes: self.quorum_votes.saturating_sub(earlier.quorum_votes),
        }
    }
}

/// A metered oracle over precomputed ground-truth labels.
///
/// Ground truth is established once while generating a benchmark (dataset
/// construction); `CountingOracle` then *meters* how many of those labels an
/// algorithm actually pays to observe — exactly the litho-simulation-overhead
/// accounting of the paper.
///
/// ```
/// use hotspot_litho::{CountingOracle, Label, LithoOracle};
/// let mut oracle = CountingOracle::new(vec![Label::Hotspot, Label::NonHotspot]);
/// assert_eq!(oracle.query(0), Label::Hotspot);
/// assert_eq!(oracle.query(0), Label::Hotspot); // cache hit
/// assert_eq!(oracle.unique_queries(), 1);
/// assert_eq!(oracle.total_queries(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CountingOracle {
    truth: Vec<Label>,
    cache: BTreeMap<usize, Label>,
    total: usize,
    resimulations: usize,
}

impl CountingOracle {
    /// Creates an oracle over the given ground-truth labels.
    pub fn new(truth: Vec<Label>) -> Self {
        CountingOracle {
            truth,
            cache: BTreeMap::new(),
            total: 0,
            resimulations: 0,
        }
    }

    /// Size of the underlying population.
    pub fn len(&self) -> usize {
        self.truth.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.truth.is_empty()
    }

    /// Resets the meters (not the ground truth).
    pub fn reset(&mut self) {
        self.cache.clear();
        self.total = 0;
        self.resimulations = 0;
    }

    /// Read-only peek at the ground truth *without* paying for a simulation.
    /// Only evaluation code (accuracy computation) may use this; samplers
    /// must go through [`LithoOracle::query`].
    pub fn ground_truth(&self) -> &[Label] {
        &self.truth
    }

    fn check_range(&self, index: usize) -> Result<(), OracleError> {
        if index < self.truth.len() {
            Ok(())
        } else {
            Err(OracleError::OutOfRange {
                index,
                len: self.truth.len(),
            })
        }
    }
}

impl LithoOracle for CountingOracle {
    fn try_query(&mut self, index: usize) -> Result<Label, OracleError> {
        self.check_range(index)?;
        self.total += 1;
        Ok(match self.cache.entry(index) {
            std::collections::btree_map::Entry::Occupied(entry) => *entry.get(),
            std::collections::btree_map::Entry::Vacant(entry) => {
                // The process-wide counter meters billable (cache-miss)
                // simulations only, so a journal snapshot mirrors the
                // paper's litho-clip count rather than raw call volume.
                // It is monotonic across oracles: per-run accounting must
                // difference it (see `SamplingFramework::run`).
                // lithohd-lint: allow(determinism-clock) — oracle latency histogram is observability, not logic
                let started = std::time::Instant::now();
                hotspot_telemetry::counter(hotspot_telemetry::names::ORACLE_CALLS).incr();
                hotspot_telemetry::trace(
                    "litho.oracle",
                    "litho simulation",
                    &[("clip", hotspot_telemetry::FieldValue::U64(index as u64))],
                );
                let label = *entry.insert(self.truth[index]);
                hotspot_telemetry::histogram(hotspot_telemetry::names::ORACLE_SECONDS)
                    .record(started.elapsed().as_secs_f64());
                label
            }
        })
    }

    fn resimulate(&mut self, index: usize) -> Result<Label, OracleError> {
        self.check_range(index)?;
        self.total += 1;
        // A cache-bypassing re-simulation is a fresh billable job even when
        // the clip was simulated before; the result cache is left untouched.
        self.resimulations += 1;
        // lithohd-lint: allow(determinism-clock) — oracle latency histogram is observability, not logic
        let started = std::time::Instant::now();
        hotspot_telemetry::counter(hotspot_telemetry::names::ORACLE_CALLS).incr();
        hotspot_telemetry::trace(
            "litho.oracle",
            "litho re-simulation",
            &[("clip", hotspot_telemetry::FieldValue::U64(index as u64))],
        );
        let label = self.truth[index];
        hotspot_telemetry::histogram(hotspot_telemetry::names::ORACLE_SECONDS)
            .record(started.elapsed().as_secs_f64());
        Ok(label)
    }

    fn unique_queries(&self) -> usize {
        self.cache.len() + self.resimulations
    }

    fn total_queries(&self) -> usize {
        self.total
    }

    fn state_snapshot(&self) -> Option<OracleStateSnapshot> {
        Some(OracleStateSnapshot {
            cache: self.cache.iter().map(|(&i, &l)| (i, l)).collect(),
            total: self.total,
            resimulations: self.resimulations,
            retry: None,
            fault: None,
        })
    }

    fn restore_state(&mut self, state: &OracleStateSnapshot) -> bool {
        // Plain field writes: no `litho.oracle.calls` increments, no latency
        // records — restored cache entries were billed before the
        // interruption and must stay billed exactly once.
        self.cache = state.cache.iter().copied().collect();
        self.total = state.total;
        self.resimulations = state.resimulations;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle() -> CountingOracle {
        CountingOracle::new(vec![
            Label::Hotspot,
            Label::NonHotspot,
            Label::NonHotspot,
            Label::Hotspot,
        ])
    }

    #[test]
    fn query_returns_truth() {
        let mut o = oracle();
        assert_eq!(o.query(0), Label::Hotspot);
        assert_eq!(o.query(1), Label::NonHotspot);
        assert_eq!(o.query(3), Label::Hotspot);
    }

    #[test]
    fn unique_vs_total_accounting() {
        let mut o = oracle();
        o.query(0);
        o.query(0);
        o.query(2);
        assert_eq!(o.unique_queries(), 2);
        assert_eq!(o.total_queries(), 3);
        assert_eq!(
            o.stats(),
            OracleStats {
                unique: 2,
                total: 3,
                ..OracleStats::default()
            }
        );
    }

    #[test]
    fn reset_clears_meters() {
        let mut o = oracle();
        o.query(1);
        o.resimulate(1).unwrap();
        o.reset();
        assert_eq!(o.unique_queries(), 0);
        assert_eq!(o.total_queries(), 0);
        assert_eq!(o.len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut o = oracle();
        let _ = o.query(99);
    }

    #[test]
    fn try_query_reports_out_of_range() {
        let mut o = oracle();
        assert_eq!(
            o.try_query(99),
            Err(OracleError::OutOfRange { index: 99, len: 4 })
        );
        assert_eq!(
            o.resimulate(99),
            Err(OracleError::OutOfRange { index: 99, len: 4 })
        );
        // A rejected query bills nothing.
        assert_eq!(o.total_queries(), 0);
        assert_eq!(o.unique_queries(), 0);
    }

    #[test]
    fn resimulation_bills_a_fresh_simulation() {
        let mut o = oracle();
        assert_eq!(o.query(0), Label::Hotspot);
        assert_eq!(o.resimulate(0).unwrap(), Label::Hotspot);
        assert_eq!(o.resimulate(0).unwrap(), Label::Hotspot);
        // One cache miss + two re-simulations, all billable.
        assert_eq!(o.unique_queries(), 3);
        assert_eq!(o.total_queries(), 3);
    }

    #[test]
    fn error_taxonomy_retryability() {
        assert!(OracleError::Transient { index: 0 }.is_retryable());
        assert!(OracleError::Timeout { index: 0 }.is_retryable());
        assert!(OracleError::CorruptedLabel { index: 0 }.is_retryable());
        assert!(!OracleError::Permanent { index: 0 }.is_retryable());
        assert!(!OracleError::OutOfRange { index: 0, len: 1 }.is_retryable());
        assert_eq!(OracleError::Timeout { index: 7 }.index(), 7);
        assert_eq!(OracleError::Permanent { index: 7 }.kind(), "permanent");
    }

    #[test]
    fn restored_cache_hits_bill_nothing() {
        let mut first = oracle();
        first.query(0);
        first.query(2);
        first.resimulate(2).unwrap();
        let state = first.state_snapshot().expect("counting oracle snapshots");

        // A fresh process restores the state; re-querying restored clips
        // must be served from the cache without touching the global meter.
        let mut resumed = oracle();
        assert!(resumed.restore_state(&state));
        assert_eq!(resumed.unique_queries(), first.unique_queries());
        assert_eq!(resumed.total_queries(), first.total_queries());
        let billed_before =
            hotspot_telemetry::counter(hotspot_telemetry::names::ORACLE_CALLS).get();
        assert_eq!(resumed.query(0), Label::Hotspot);
        assert_eq!(resumed.query(2), Label::NonHotspot);
        let billed_after = hotspot_telemetry::counter(hotspot_telemetry::names::ORACLE_CALLS).get();
        assert_eq!(
            billed_after, billed_before,
            "restored cache hits must not re-bill litho.oracle.calls"
        );
        assert_eq!(resumed.unique_queries(), 3, "unique count carries over");
    }

    #[test]
    fn stats_delta_saturates() {
        let a = OracleStats {
            unique: 5,
            total: 8,
            retries: 2,
            giveups: 1,
            quorum_votes: 3,
        };
        let b = OracleStats {
            unique: 3,
            total: 4,
            retries: 2,
            giveups: 0,
            quorum_votes: 0,
        };
        let d = a.delta_since(&b);
        assert_eq!(d.unique, 2);
        assert_eq!(d.total, 4);
        assert_eq!(d.retries, 0);
        assert_eq!(d.giveups, 1);
        assert_eq!(d.quorum_votes, 3);
        assert_eq!(b.delta_since(&a).unique, 0);
    }
}
