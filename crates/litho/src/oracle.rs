use crate::Label;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A labelling oracle over an indexed clip population.
///
/// Active-learning experiments address clips by dataset index; the oracle
/// answers with the lithography label and meters the cost. Implementations
/// must be *consistent*: repeated queries of one index return the same label.
pub trait LithoOracle {
    /// Labels clip `index`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `index` is out of range for the
    /// underlying dataset.
    fn query(&mut self, index: usize) -> Label;

    /// Number of *distinct* clips simulated so far — the paper's litho-clip
    /// count. Re-querying a cached clip is free, mirroring a real flow that
    /// stores simulation results.
    fn unique_queries(&self) -> usize;

    /// Total query calls including cache hits.
    fn total_queries(&self) -> usize;
}

/// Aggregate statistics of an oracle's usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct OracleStats {
    /// Distinct clips simulated (the billable litho-clip count).
    pub unique: usize,
    /// Total queries including cache hits.
    pub total: usize,
}

/// A metered oracle over precomputed ground-truth labels.
///
/// Ground truth is established once while generating a benchmark (dataset
/// construction); `CountingOracle` then *meters* how many of those labels an
/// algorithm actually pays to observe — exactly the litho-simulation-overhead
/// accounting of the paper.
///
/// ```
/// use hotspot_litho::{CountingOracle, Label, LithoOracle};
/// let mut oracle = CountingOracle::new(vec![Label::Hotspot, Label::NonHotspot]);
/// assert_eq!(oracle.query(0), Label::Hotspot);
/// assert_eq!(oracle.query(0), Label::Hotspot); // cache hit
/// assert_eq!(oracle.unique_queries(), 1);
/// assert_eq!(oracle.total_queries(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CountingOracle {
    truth: Vec<Label>,
    cache: HashMap<usize, Label>,
    total: usize,
}

impl CountingOracle {
    /// Creates an oracle over the given ground-truth labels.
    pub fn new(truth: Vec<Label>) -> Self {
        CountingOracle {
            truth,
            cache: HashMap::new(),
            total: 0,
        }
    }

    /// Size of the underlying population.
    pub fn len(&self) -> usize {
        self.truth.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.truth.is_empty()
    }

    /// Snapshot of usage statistics.
    pub fn stats(&self) -> OracleStats {
        OracleStats {
            unique: self.cache.len(),
            total: self.total,
        }
    }

    /// Resets the meters (not the ground truth).
    pub fn reset(&mut self) {
        self.cache.clear();
        self.total = 0;
    }

    /// Read-only peek at the ground truth *without* paying for a simulation.
    /// Only evaluation code (accuracy computation) may use this; samplers
    /// must go through [`LithoOracle::query`].
    pub fn ground_truth(&self) -> &[Label] {
        &self.truth
    }
}

impl LithoOracle for CountingOracle {
    fn query(&mut self, index: usize) -> Label {
        assert!(
            index < self.truth.len(),
            "oracle query {index} out of range ({} clips)",
            self.truth.len()
        );
        self.total += 1;
        match self.cache.entry(index) {
            std::collections::hash_map::Entry::Occupied(entry) => *entry.get(),
            std::collections::hash_map::Entry::Vacant(entry) => {
                // The process-wide counter meters billable (cache-miss)
                // simulations only, so a journal snapshot mirrors the
                // paper's litho-clip count rather than raw call volume.
                // It is monotonic across oracles: per-run accounting must
                // difference it (see `SamplingFramework::run`).
                hotspot_telemetry::counter("litho.oracle.calls").incr();
                hotspot_telemetry::trace(
                    "litho.oracle",
                    "litho simulation",
                    &[("clip", hotspot_telemetry::FieldValue::U64(index as u64))],
                );
                *entry.insert(self.truth[index])
            }
        }
    }

    fn unique_queries(&self) -> usize {
        self.cache.len()
    }

    fn total_queries(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle() -> CountingOracle {
        CountingOracle::new(vec![
            Label::Hotspot,
            Label::NonHotspot,
            Label::NonHotspot,
            Label::Hotspot,
        ])
    }

    #[test]
    fn query_returns_truth() {
        let mut o = oracle();
        assert_eq!(o.query(0), Label::Hotspot);
        assert_eq!(o.query(1), Label::NonHotspot);
        assert_eq!(o.query(3), Label::Hotspot);
    }

    #[test]
    fn unique_vs_total_accounting() {
        let mut o = oracle();
        o.query(0);
        o.query(0);
        o.query(2);
        assert_eq!(o.unique_queries(), 2);
        assert_eq!(o.total_queries(), 3);
        assert_eq!(
            o.stats(),
            OracleStats {
                unique: 2,
                total: 3
            }
        );
    }

    #[test]
    fn reset_clears_meters() {
        let mut o = oracle();
        o.query(1);
        o.reset();
        assert_eq!(o.unique_queries(), 0);
        assert_eq!(o.total_queries(), 0);
        assert_eq!(o.len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut o = oracle();
        let _ = o.query(99);
    }
}
