use crate::{AerialImage, Bitmap};

/// Constant-threshold resist model.
///
/// Aerial intensity at or above the threshold develops into printed resist;
/// everything below washes away. This is the classic constant-threshold
/// approximation used for fast printability estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResistModel {
    threshold: f32,
}

impl ResistModel {
    /// Creates a resist model with the given development threshold.
    ///
    /// # Panics
    ///
    /// Panics when the threshold is outside `(0, 1)`.
    pub fn new(threshold: f32) -> Self {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "resist threshold must lie in (0, 1), got {threshold}"
        );
        ResistModel { threshold }
    }

    /// The development threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Develops an aerial image into a printed contour bitmap.
    pub fn develop(&self, aerial: &AerialImage) -> Bitmap {
        Bitmap::from_values(
            aerial.intensity(),
            aerial.width(),
            aerial.height(),
            self.threshold,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GaussianKernel;
    use hotspot_geom::{Raster, Rect};

    #[test]
    #[should_panic(expected = "must lie in (0, 1)")]
    fn rejects_threshold_of_one() {
        let _ = ResistModel::new(1.0);
    }

    #[test]
    fn develop_thresholds_intensity() {
        let mut mask = Raster::zeros(Rect::new(0, 0, 400, 400).unwrap(), 10).unwrap();
        mask.fill_rect(&Rect::new(0, 0, 400, 200).unwrap(), 1.0);
        let aerial = AerialImage::from_mask(&mask, &GaussianKernel::new(2.0));
        let printed = ResistModel::new(0.5).develop(&aerial);
        // Deep inside the pad the resist prints; far outside it does not.
        assert!(printed.at(5, 20));
        assert!(!printed.at(35, 20));
    }

    #[test]
    fn lower_threshold_prints_more() {
        let mut mask = Raster::zeros(Rect::new(0, 0, 400, 400).unwrap(), 10).unwrap();
        mask.fill_rect(&Rect::new(100, 100, 300, 300).unwrap(), 1.0);
        let aerial = AerialImage::from_mask(&mask, &GaussianKernel::new(3.0));
        let lo = ResistModel::new(0.3).develop(&aerial);
        let hi = ResistModel::new(0.7).develop(&aerial);
        assert!(lo.count_ones() > hi.count_ones());
    }
}
