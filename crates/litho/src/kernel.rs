/// A separable Gaussian convolution kernel used as the optical point-spread
/// function of the imaging model.
///
/// The kernel is truncated at 3 σ and normalised to unit sum, so convolving a
/// constant image leaves it unchanged (energy conservation away from the
/// boundary).
///
/// ```
/// use hotspot_litho::GaussianKernel;
/// let k = GaussianKernel::new(2.0);
/// let sum: f64 = k.taps().iter().map(|&t| t as f64).sum();
/// assert!((sum - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianKernel {
    sigma_px: f64,
    taps: Vec<f32>,
}

impl GaussianKernel {
    /// Builds a 1-D Gaussian tap vector for the given sigma in pixels.
    ///
    /// # Panics
    ///
    /// Panics when `sigma_px` is not finite and positive.
    pub fn new(sigma_px: f64) -> Self {
        assert!(
            sigma_px.is_finite() && sigma_px > 0.0,
            "kernel sigma must be positive, got {sigma_px}"
        );
        let radius = (sigma_px * 3.0).ceil() as i64;
        let mut taps = Vec::with_capacity((2 * radius + 1) as usize);
        let inv = 1.0 / (2.0 * sigma_px * sigma_px);
        for i in -radius..=radius {
            taps.push((-(i * i) as f64 * inv).exp());
        }
        let sum: f64 = taps.iter().sum();
        let taps = taps.into_iter().map(|t| (t / sum) as f32).collect();
        GaussianKernel { sigma_px, taps }
    }

    /// The sigma this kernel was built with, in pixels.
    pub fn sigma_px(&self) -> f64 {
        self.sigma_px
    }

    /// Half-width of the tap vector in pixels.
    pub fn radius(&self) -> usize {
        self.taps.len() / 2
    }

    /// The normalised 1-D taps (odd length, symmetric).
    pub fn taps(&self) -> &[f32] {
        &self.taps
    }

    /// Convolves `src` (row-major, `width × height`) with the kernel along
    /// rows then columns, writing into `dst`. Borders are handled by edge
    /// clamping, which models the clip context continuing outside the window.
    ///
    /// # Panics
    ///
    /// Panics when `src` and `dst` lengths disagree with `width * height`.
    pub fn convolve_2d(&self, src: &[f32], dst: &mut [f32], width: usize, height: usize) {
        assert_eq!(src.len(), width * height, "src size mismatch");
        assert_eq!(dst.len(), width * height, "dst size mismatch");
        record_aerial_kernel(self.taps.len(), width, height);
        let r = self.radius() as isize;
        let mut tmp = vec![0.0f32; src.len()];
        // Horizontal pass.
        for row in 0..height {
            let base = row * width;
            for col in 0..width {
                let mut acc = 0.0f32;
                for (ti, &t) in self.taps.iter().enumerate() {
                    let offset = ti as isize - r;
                    let c = (col as isize + offset).clamp(0, width as isize - 1) as usize;
                    acc += t * src[base + c];
                }
                tmp[base + col] = acc;
            }
        }
        // Vertical pass.
        for col in 0..width {
            for row in 0..height {
                let mut acc = 0.0f32;
                for (ti, &t) in self.taps.iter().enumerate() {
                    let offset = ti as isize - r;
                    let rr = (row as isize + offset).clamp(0, height as isize - 1) as usize;
                    acc += t * tmp[rr * width + col];
                }
                dst[row * width + col] = acc;
            }
        }
    }
}

/// Books one separable aerial-image convolution into the `kernel.aerial.*`
/// performance counters (ROADMAP item 1 hot loop): two tap passes of one
/// multiply–add per pixel each, plus src + tmp + dst + taps traffic. One
/// counter update per image.
fn record_aerial_kernel(taps: usize, width: usize, height: usize) {
    use hotspot_telemetry::{counter, names};
    let pixels = (width * height) as u64;
    counter(names::KERNEL_AERIAL_CALLS).incr();
    counter(names::KERNEL_AERIAL_ELEMENTS).add(pixels);
    counter(names::KERNEL_AERIAL_FLOPS).add(4 * pixels * taps as u64);
    counter(names::KERNEL_AERIAL_BYTES).add(4 * (3 * pixels + taps as u64));
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn taps_are_normalized_and_symmetric() {
        let k = GaussianKernel::new(1.5);
        let taps = k.taps();
        let sum: f64 = taps.iter().map(|&t| t as f64).sum();
        assert!((sum - 1.0).abs() < 1e-6);
        for i in 0..taps.len() / 2 {
            assert!((taps[i] - taps[taps.len() - 1 - i]).abs() < 1e-7);
        }
        assert_eq!(taps.len() % 2, 1);
    }

    #[test]
    fn radius_is_three_sigma() {
        assert_eq!(GaussianKernel::new(2.0).radius(), 6);
        assert_eq!(GaussianKernel::new(0.5).radius(), 2);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn zero_sigma_panics() {
        let _ = GaussianKernel::new(0.0);
    }

    #[test]
    fn constant_image_is_fixed_point() {
        let k = GaussianKernel::new(2.0);
        let src = vec![0.7f32; 16 * 16];
        let mut dst = vec![0.0f32; 16 * 16];
        k.convolve_2d(&src, &mut dst, 16, 16);
        for &v in &dst {
            assert!((v - 0.7).abs() < 1e-5);
        }
    }

    #[test]
    fn impulse_spreads_symmetrically() {
        let k = GaussianKernel::new(1.0);
        let n = 15usize;
        let mut src = vec![0.0f32; n * n];
        src[7 * n + 7] = 1.0;
        let mut dst = vec![0.0f32; n * n];
        k.convolve_2d(&src, &mut dst, n, n);
        // Peak stays at the centre and response is 4-fold symmetric.
        let peak = dst[7 * n + 7];
        assert!(peak > 0.0);
        for &v in &dst {
            assert!(v <= peak + 1e-7);
        }
        assert!((dst[7 * n + 5] - dst[7 * n + 9]).abs() < 1e-6);
        assert!((dst[5 * n + 7] - dst[9 * n + 7]).abs() < 1e-6);
        assert!((dst[5 * n + 7] - dst[7 * n + 5]).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn prop_convolution_preserves_bounds(values in proptest::collection::vec(0.0f32..1.0, 64)) {
            let k = GaussianKernel::new(1.2);
            let mut dst = vec![0.0f32; 64];
            k.convolve_2d(&values, &mut dst, 8, 8);
            for &v in &dst {
                prop_assert!((-1e-5..=1.0 + 1e-5).contains(&v));
            }
        }

        #[test]
        fn prop_monotone_in_input(values in proptest::collection::vec(0.0f32..0.5, 36)) {
            // Adding mask everywhere can only raise intensity everywhere.
            let k = GaussianKernel::new(1.0);
            let brighter: Vec<f32> = values.iter().map(|v| v + 0.25).collect();
            let mut a = vec![0.0f32; 36];
            let mut b = vec![0.0f32; 36];
            k.convolve_2d(&values, &mut a, 6, 6);
            k.convolve_2d(&brighter, &mut b, 6, 6);
            for (x, y) in a.iter().zip(&b) {
                prop_assert!(y >= x);
            }
        }
    }
}
