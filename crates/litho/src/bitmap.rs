use hotspot_geom::Raster;

/// A binary image with simple morphology, used for printed contours and
/// design-intent masks.
///
/// ```
/// use hotspot_geom::{Raster, Rect};
/// use hotspot_litho::Bitmap;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut raster = Raster::zeros(Rect::new(0, 0, 100, 100)?, 10)?;
/// raster.fill_rect(&Rect::new(0, 0, 100, 50)?, 1.0);
/// let bm = Bitmap::from_raster(&raster, 0.5);
/// assert_eq!(bm.count_ones(), 50);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    width: usize,
    height: usize,
    bits: Vec<bool>,
}

impl Bitmap {
    /// Builds an all-false bitmap.
    pub fn zeros(width: usize, height: usize) -> Self {
        Bitmap {
            width,
            height,
            bits: vec![false; width * height],
        }
    }

    /// Thresholds a raster: pixels with value `>= threshold` become true.
    pub fn from_raster(raster: &Raster, threshold: f32) -> Self {
        Bitmap {
            width: raster.width(),
            height: raster.height(),
            bits: raster.pixels().iter().map(|&v| v >= threshold).collect(),
        }
    }

    /// Thresholds raw row-major data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != width * height`.
    pub fn from_values(data: &[f32], width: usize, height: usize, threshold: f32) -> Self {
        assert_eq!(data.len(), width * height, "bitmap size mismatch");
        Bitmap {
            width,
            height,
            bits: data.iter().map(|&v| v >= threshold).collect(),
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Row-major bit data.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Bit at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of bounds.
    pub fn at(&self, row: usize, col: usize) -> bool {
        assert!(
            row < self.height && col < self.width,
            "bitmap index out of bounds"
        );
        self.bits[row * self.width + col]
    }

    /// Sets the bit at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        assert!(
            row < self.height && col < self.width,
            "bitmap index out of bounds"
        );
        self.bits[row * self.width + col] = value;
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Morphological dilation with a Chebyshev ball of the given radius
    /// (a `(2r+1)²` square structuring element).
    pub fn dilated(&self, radius: usize) -> Bitmap {
        self.morph(radius, true)
    }

    /// Morphological erosion with a Chebyshev ball of the given radius.
    /// Pixels outside the image are treated as false, so shapes touching the
    /// border erode from the border side too.
    pub fn eroded(&self, radius: usize) -> Bitmap {
        self.morph(radius, false)
    }

    fn morph(&self, radius: usize, dilate: bool) -> Bitmap {
        if radius == 0 {
            return self.clone();
        }
        let r = radius as isize;
        // Separable: horizontal max/min pass then vertical.
        let mut tmp = vec![false; self.bits.len()];
        for row in 0..self.height {
            for col in 0..self.width {
                let mut acc = !dilate;
                for d in -r..=r {
                    let c = col as isize + d;
                    let v = if c < 0 || c >= self.width as isize {
                        false
                    } else {
                        self.bits[row * self.width + c as usize]
                    };
                    if dilate {
                        acc |= v;
                    } else {
                        acc &= v;
                    }
                }
                tmp[row * self.width + col] = acc;
            }
        }
        let mut out = vec![false; self.bits.len()];
        for col in 0..self.width {
            for row in 0..self.height {
                let mut acc = !dilate;
                for d in -r..=r {
                    let rr = row as isize + d;
                    let v = if rr < 0 || rr >= self.height as isize {
                        false
                    } else {
                        tmp[rr as usize * self.width + col]
                    };
                    if dilate {
                        acc |= v;
                    } else {
                        acc &= v;
                    }
                }
                out[row * self.width + col] = acc;
            }
        }
        Bitmap {
            width: self.width,
            height: self.height,
            bits: out,
        }
    }

    /// Pixels set in `self` but not in `other`.
    ///
    /// # Panics
    ///
    /// Panics when dimensions differ.
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "bitmap dimensions differ"
        );
        Bitmap {
            width: self.width,
            height: self.height,
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(&a, &b)| a && !b)
                .collect(),
        }
    }

    /// Connected components of set pixels (4-connectivity). Each component is
    /// a list of `(row, col)` pixels.
    pub fn components(&self) -> Vec<Vec<(usize, usize)>> {
        let mut seen = vec![false; self.bits.len()];
        let mut components = Vec::new();
        for start in 0..self.bits.len() {
            if !self.bits[start] || seen[start] {
                continue;
            }
            let mut stack = vec![start];
            seen[start] = true;
            let mut comp = Vec::new();
            while let Some(idx) = stack.pop() {
                let (row, col) = (idx / self.width, idx % self.width);
                comp.push((row, col));
                let mut push = |r: isize, c: isize| {
                    if r < 0 || c < 0 || r >= self.height as isize || c >= self.width as isize {
                        return;
                    }
                    let i = r as usize * self.width + c as usize;
                    if self.bits[i] && !seen[i] {
                        seen[i] = true;
                        stack.push(i);
                    }
                };
                push(row as isize - 1, col as isize);
                push(row as isize + 1, col as isize);
                push(row as isize, col as isize - 1);
                push(row as isize, col as isize + 1);
            }
            components.push(comp);
        }
        components
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bitmap_from_rows(rows: &[&str]) -> Bitmap {
        let height = rows.len();
        let width = rows[0].len();
        let mut bm = Bitmap::zeros(width, height);
        for (r, line) in rows.iter().rev().enumerate() {
            for (c, ch) in line.chars().enumerate() {
                bm.set(r, c, ch == '#');
            }
        }
        bm
    }

    #[test]
    fn count_ones_counts() {
        let bm = bitmap_from_rows(&["#..", ".#.", "..#"]);
        assert_eq!(bm.count_ones(), 3);
    }

    #[test]
    fn dilate_grows_square() {
        let bm = bitmap_from_rows(&[".....", ".....", "..#..", ".....", "....."]);
        let d = bm.dilated(1);
        assert_eq!(d.count_ones(), 9);
        assert!(d.at(2, 2) && d.at(1, 1) && d.at(3, 3));
    }

    #[test]
    fn erode_shrinks_square() {
        let bm = bitmap_from_rows(&["#####", "#####", "#####", "#####", "#####"]);
        let e = bm.eroded(1);
        assert_eq!(e.count_ones(), 9);
        assert!(!e.at(0, 0));
        assert!(e.at(2, 2));
    }

    #[test]
    fn erode_then_dilate_is_opening() {
        // A lone pixel disappears under opening.
        let bm = bitmap_from_rows(&["...", ".#.", "..."]);
        let opened = bm.eroded(1).dilated(1);
        assert_eq!(opened.count_ones(), 0);
    }

    #[test]
    fn and_not_subtracts() {
        let a = bitmap_from_rows(&["##", "##"]);
        let b = bitmap_from_rows(&["#.", "#."]);
        assert_eq!(a.and_not(&b).count_ones(), 2);
    }

    #[test]
    fn components_separate_diagonals() {
        // 4-connectivity: a diagonal pair forms two components.
        let bm = bitmap_from_rows(&["#.", ".#"]);
        assert_eq!(bm.components().len(), 2);
    }

    #[test]
    fn components_join_orthogonals() {
        let bm = bitmap_from_rows(&["##", "#."]);
        let comps = bm.components();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 3);
    }

    #[test]
    fn zero_radius_morph_is_identity() {
        let bm = bitmap_from_rows(&["#.#", ".#.", "#.#"]);
        assert_eq!(bm.dilated(0), bm);
        assert_eq!(bm.eroded(0), bm);
    }

    proptest! {
        #[test]
        fn prop_dilation_is_monotone(bits in proptest::collection::vec(any::<bool>(), 49)) {
            let mut bm = Bitmap::zeros(7, 7);
            for (i, &b) in bits.iter().enumerate() {
                bm.set(i / 7, i % 7, b);
            }
            let d = bm.dilated(1);
            // Dilation is extensive: every set pixel remains set.
            for i in 0..49 {
                if bm.bits()[i] {
                    prop_assert!(d.bits()[i]);
                }
            }
            prop_assert!(d.count_ones() >= bm.count_ones());
        }

        #[test]
        fn prop_erosion_is_anti_extensive(bits in proptest::collection::vec(any::<bool>(), 49)) {
            let mut bm = Bitmap::zeros(7, 7);
            for (i, &b) in bits.iter().enumerate() {
                bm.set(i / 7, i % 7, b);
            }
            let e = bm.eroded(1);
            for i in 0..49 {
                if e.bits()[i] {
                    prop_assert!(bm.bits()[i]);
                }
            }
            prop_assert!(e.count_ones() <= bm.count_ones());
        }

        #[test]
        fn prop_components_partition_ones(bits in proptest::collection::vec(any::<bool>(), 36)) {
            let mut bm = Bitmap::zeros(6, 6);
            for (i, &b) in bits.iter().enumerate() {
                bm.set(i / 6, i % 6, b);
            }
            let total: usize = bm.components().iter().map(|c| c.len()).sum();
            prop_assert_eq!(total, bm.count_ones());
        }
    }
}
