use crate::{Bitmap, LithoConfig};
use hotspot_geom::{Point, Raster, Rect};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The failure mode of a printed-contour defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DefectKind {
    /// A single printed component spans two or more distinct design shapes —
    /// neighbouring shapes merged.
    Bridge,
    /// Design pixels farther than the EPE tolerance from any printed resist —
    /// a line necked, broke, or failed to print.
    Pinch,
}

impl fmt::Display for DefectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefectKind::Bridge => write!(f, "bridge"),
            DefectKind::Pinch => write!(f, "pinch"),
        }
    }
}

/// A single lithography defect found inside a clip core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Defect {
    /// Failure mode.
    pub kind: DefectKind,
    /// Defect centroid in layout coordinates (nanometres).
    pub location: Point,
    /// Cluster size in pixels — a crude severity measure.
    pub size_px: usize,
}

impl fmt::Display for Defect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {} ({} px)",
            self.kind, self.location, self.size_px
        )
    }
}

/// Compares the printed contour against the design intent and returns the
/// defects whose centroid falls inside `core`.
///
/// Two checks run:
/// * **pinch** — design pixels beyond the EPE tolerance from any printed
///   resist (`target ∧ ¬dilate(printed, tol)`), clustered with
///   4-connectivity; clusters of at least `config.min_defect_px` pixels are
///   defects.
/// * **bridge** — each printed connected component is tested for overlap
///   with the design's connected components; touching two or more distinct
///   design shapes means the resist merged them. The defect is located at
///   the centroid of the bridging metal (printed pixels outside the design).
pub(crate) fn find_defects(
    target: &Bitmap,
    printed: &Bitmap,
    mask: &Raster,
    core: Rect,
    config: &LithoConfig,
) -> Vec<Defect> {
    let mut defects = Vec::new();
    find_pinches(target, printed, mask, core, config, &mut defects);
    find_bridges(target, printed, mask, core, config, &mut defects);
    defects
}

fn find_pinches(
    target: &Bitmap,
    printed: &Bitmap,
    mask: &Raster,
    core: Rect,
    config: &LithoConfig,
    out: &mut Vec<Defect>,
) {
    let unprinted = target.and_not(&printed.dilated(config.epe_tolerance_px));
    for comp in unprinted.components() {
        if comp.len() < config.min_defect_px {
            continue;
        }
        let location = centroid(&comp, mask);
        if core.contains(location) {
            out.push(Defect {
                kind: DefectKind::Pinch,
                location,
                size_px: comp.len(),
            });
        }
    }
}

fn find_bridges(
    target: &Bitmap,
    printed: &Bitmap,
    mask: &Raster,
    core: Rect,
    config: &LithoConfig,
    out: &mut Vec<Defect>,
) {
    let width = target.width();
    // Label map of design components: usize::MAX = background.
    let mut design_label = vec![usize::MAX; target.bits().len()];
    for (id, comp) in target.components().into_iter().enumerate() {
        for &(r, c) in &comp {
            design_label[r * width + c] = id;
        }
    }
    for comp in printed.components() {
        let mut touched = BTreeSet::new();
        let mut bridging = Vec::new();
        for &(r, c) in &comp {
            let label = design_label[r * width + c];
            if label == usize::MAX {
                bridging.push((r, c));
            } else {
                touched.insert(label);
            }
        }
        if touched.len() >= 2 && bridging.len() >= config.min_defect_px {
            let location = centroid(&bridging, mask);
            if core.contains(location) {
                out.push(Defect {
                    kind: DefectKind::Bridge,
                    location,
                    size_px: bridging.len(),
                });
            }
        }
    }
}

fn centroid(pixels: &[(usize, usize)], mask: &Raster) -> Point {
    let n = pixels.len() as i64;
    let sum_r: i64 = pixels.iter().map(|&(r, _)| r as i64).sum();
    let sum_c: i64 = pixels.iter().map(|&(_, c)| c as i64).sum();
    let pitch = mask.pitch();
    Point::new(
        mask.region().x0() + (sum_c / n) * pitch + pitch / 2,
        mask.region().y0() + (sum_r / n) * pitch + pitch / 2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aerial::AerialImage;
    use crate::{GaussianKernel, ResistModel};

    fn run(mask: &Raster, core: Rect, config: &LithoConfig) -> Vec<Defect> {
        let kernel = GaussianKernel::new(config.sigma_px());
        let aerial = AerialImage::from_mask(mask, &kernel);
        let printed = ResistModel::new(config.resist_threshold).develop(&aerial);
        let target = Bitmap::from_raster(mask, 0.5);
        find_defects(&target, &printed, mask, core, config)
    }

    fn core() -> Rect {
        Rect::new(300, 300, 900, 900).unwrap()
    }

    fn empty_mask(config: &LithoConfig) -> Raster {
        Raster::zeros(Rect::new(0, 0, 1200, 1200).unwrap(), config.pitch).unwrap()
    }

    #[test]
    fn clean_pattern_has_no_defects() {
        let config = LithoConfig::duv_28nm();
        let mut mask = empty_mask(&config);
        mask.fill_rect(&Rect::new(100, 500, 1100, 700).unwrap(), 1.0);
        let defects = run(&mask, core(), &config);
        assert!(defects.is_empty(), "unexpected defects: {defects:?}");
    }

    #[test]
    fn well_spaced_wires_are_clean() {
        let config = LithoConfig::duv_28nm();
        let mut mask = empty_mask(&config);
        for i in 0..5 {
            let y0 = 300 + i * 160; // 80 nm wires at 80 nm spacing
            mask.fill_rect(&Rect::new(100, y0, 1100, y0 + 80).unwrap(), 1.0);
        }
        let defects = run(&mask, core(), &config);
        assert!(defects.is_empty(), "unexpected defects: {defects:?}");
    }

    #[test]
    fn unprintable_wire_pinches_in_core() {
        let config = LithoConfig::duv_28nm();
        let mut mask = empty_mask(&config);
        mask.fill_rect(&Rect::new(100, 590, 1100, 620).unwrap(), 1.0);
        let defects = run(&mask, core(), &config);
        assert!(!defects.is_empty());
        for d in &defects {
            assert_eq!(d.kind, DefectKind::Pinch);
            assert!(
                core().contains(d.location),
                "defect at {} outside core",
                d.location
            );
            assert!(d.size_px >= config.min_defect_px);
        }
    }

    #[test]
    fn tight_gap_bridges_in_core() {
        let config = LithoConfig::duv_28nm();
        let mut mask = empty_mask(&config);
        mask.fill_rect(&Rect::new(100, 420, 1100, 580).unwrap(), 1.0);
        mask.fill_rect(&Rect::new(100, 610, 1100, 770).unwrap(), 1.0);
        let defects = run(&mask, core(), &config);
        assert!(
            defects.iter().any(|d| d.kind == DefectKind::Bridge),
            "expected a bridge, got {defects:?}"
        );
    }

    #[test]
    fn defects_outside_core_are_ignored() {
        let config = LithoConfig::duv_28nm();
        let mut mask = empty_mask(&config);
        // Unprintable wire in the top margin, far from the core.
        mask.fill_rect(&Rect::new(100, 1100, 1100, 1130).unwrap(), 1.0);
        let defects = run(&mask, core(), &config);
        assert!(defects.is_empty(), "unexpected defects: {defects:?}");
    }

    #[test]
    fn bridge_reports_gap_metal_size() {
        let config = LithoConfig::duv_28nm();
        let mut mask = empty_mask(&config);
        mask.fill_rect(&Rect::new(100, 420, 1100, 580).unwrap(), 1.0);
        mask.fill_rect(&Rect::new(100, 610, 1100, 770).unwrap(), 1.0);
        let defects = run(&mask, core(), &config);
        let bridge = defects
            .iter()
            .find(|d| d.kind == DefectKind::Bridge)
            .unwrap();
        assert!(bridge.size_px >= config.min_defect_px);
    }

    #[test]
    fn display_is_informative() {
        let d = Defect {
            kind: DefectKind::Bridge,
            location: Point::new(10, 20),
            size_px: 7,
        };
        let s = d.to_string();
        assert!(s.contains("bridge") && s.contains("(10, 20)") && s.contains("7 px"));
    }
}
