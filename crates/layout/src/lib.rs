//! Synthetic VLSI layout benchmark generation.
//!
//! The DAC 2021 paper evaluates on the ICCAD-2012 and ICCAD-2016 contest
//! benchmarks (proprietary GDSII layouts at 28 nm and 7 nm). Those layouts
//! are not redistributable, so this crate *generates* clip populations with
//! the same statistical shape (Table I of the paper): the same hotspot /
//! non-hotspot cardinalities, a minority defect class that is geometrically
//! induced, pattern duplicates (so exact pattern matching pays less than one
//! simulation per clip), and hard "near-miss" non-hotspots that sit close to
//! the decision boundary.
//!
//! Clips are Manhattan routing-track patterns; hotspot clips carry either a
//! sub-printable wire (pinch) or a sub-resolution gap (bridge) through the
//! clip core, and ground truth is established by actually running the
//! `hotspot-litho` simulator — "label = f(geometry)" holds exactly, as in a
//! real flow.
//!
//! Generated benchmarks store per-clip features and signatures, not rasters
//! (full-scale ICCAD12 has 163 400 clips); any clip raster can be
//! regenerated deterministically via [`GeneratedBenchmark::clip_raster`].
//!
//! # Example
//!
//! ```
//! use hotspot_layout::{BenchmarkSpec, GeneratedBenchmark};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = BenchmarkSpec::iccad16_2().scaled(0.2);
//! let bench = GeneratedBenchmark::generate(&spec, 1)?;
//! assert_eq!(bench.hotspot_count() + bench.non_hotspot_count(), bench.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod error;
mod generate;
mod io;
mod pattern;
mod signature;
mod spec;
mod suite;

pub use error::LayoutError;
pub use generate::GeneratedBenchmark;
pub use io::{write_pgm, ClipFile};
pub use pattern::{ClipFamily, ClipRecipe};
pub use signature::Signature;
pub use spec::{BenchmarkSpec, GeometryParams, Tech};
pub use suite::{bench_suite, BenchmarkStats};
