use crate::LayoutError;
use hotspot_geom::Coord;
use hotspot_litho::LithoConfig;
use serde::{Deserialize, Serialize};

/// Technology node of a benchmark — selects the lithography model and the
/// geometry windows that print cleanly, marginally, or defectively under it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tech {
    /// 28 nm-class DUV metal (ICCAD12-like).
    Duv28,
    /// 7 nm-class EUV metal (ICCAD16-like).
    Euv7,
}

/// Geometry windows, in nanometres, for one technology.
///
/// Widths/gaps inside the `safe` windows print cleanly under the node's
/// [`LithoConfig`]; the `hot` windows reliably pinch or bridge; `near`
/// windows are printable but close to the cliff — they become the hard
/// non-hotspots a detector tends to false-alarm on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeometryParams {
    /// Safe wire widths (inclusive range).
    pub safe_width: (Coord, Coord),
    /// Minimum spacing between safe wires.
    pub safe_gap_min: Coord,
    /// Near-miss wire widths (printable, marginal).
    pub near_width: (Coord, Coord),
    /// Near-miss spacings (resolvable, marginal).
    pub near_gap: (Coord, Coord),
    /// Pinching (sub-printable) wire widths.
    pub hot_width: (Coord, Coord),
    /// Bridging (sub-resolution) gaps.
    pub hot_gap: (Coord, Coord),
    /// Coordinate snap grid.
    pub snap: Coord,
}

impl Tech {
    /// The lithography model for this node.
    pub fn litho_config(self) -> LithoConfig {
        match self {
            Tech::Duv28 => LithoConfig::duv_28nm(),
            Tech::Euv7 => LithoConfig::euv_7nm(),
        }
    }

    /// The geometry windows for this node (validated against the litho model
    /// by this crate's tests).
    pub fn geometry(self) -> GeometryParams {
        match self {
            Tech::Duv28 => GeometryParams {
                safe_width: (60, 120),
                safe_gap_min: 64,
                near_width: (44, 56),
                near_gap: (52, 62),
                hot_width: (24, 32),
                hot_gap: (28, 38),
                snap: 2,
            },
            Tech::Euv7 => GeometryParams {
                safe_width: (20, 40),
                safe_gap_min: 28,
                near_width: (16, 18),
                near_gap: (22, 26),
                hot_width: (8, 13),
                hot_gap: (10, 16),
                snap: 1,
            },
        }
    }

    /// Nominal feature size in nanometres, for reporting (Table I's "Tech").
    pub fn node_nm(self) -> u32 {
        match self {
            Tech::Duv28 => 28,
            Tech::Euv7 => 7,
        }
    }

    /// Clip window edge length for this node.
    pub fn clip_edge(self) -> Coord {
        match self {
            Tech::Duv28 => 1200,
            Tech::Euv7 => 480,
        }
    }

    /// Clip core edge length for this node.
    pub fn core_edge(self) -> Coord {
        self.clip_edge() / 2
    }

    /// Stable identifier for journals and reports; inverse of
    /// [`Tech::from_name`].
    pub fn name(self) -> &'static str {
        match self {
            Tech::Duv28 => "Duv28",
            Tech::Euv7 => "Euv7",
        }
    }

    /// Parses a [`Tech::name`] identifier, e.g. when reconstructing a
    /// benchmark spec from a journal record.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::BadSpec`] for an unknown identifier.
    pub fn from_name(name: &str) -> Result<Self, LayoutError> {
        match name {
            "Duv28" => Ok(Tech::Duv28),
            "Euv7" => Ok(Tech::Euv7),
            other => Err(LayoutError::BadSpec {
                detail: format!("unknown tech node {other:?}"),
            }),
        }
    }
}

/// Specification of one benchmark: cardinalities and technology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkSpec {
    /// Benchmark name (e.g. `"ICCAD12"`).
    pub name: String,
    /// Technology node.
    pub tech: Tech,
    /// Hotspot clip count.
    pub hotspots: usize,
    /// Non-hotspot clip count.
    pub non_hotspots: usize,
    /// Probability that a clip duplicates an earlier pattern, which is what
    /// lets exact pattern matching pay fewer simulations than clips.
    pub dup_rate: f64,
    /// Fraction of non-hotspots drawn from the near-miss family.
    pub near_miss_rate: f64,
}

impl BenchmarkSpec {
    /// ICCAD12-like: 3 728 hotspots, 159 672 non-hotspots at 28 nm
    /// (Table I).
    pub fn iccad12() -> Self {
        BenchmarkSpec {
            name: "ICCAD12".to_owned(),
            tech: Tech::Duv28,
            hotspots: 3728,
            non_hotspots: 159_672,
            dup_rate: 0.22,
            near_miss_rate: 0.3,
        }
    }

    /// ICCAD16-1-like: 0 hotspots, 63 non-hotspots at 7 nm. The paper drops
    /// this case from the experiments for lack of hotspots; it is kept here
    /// for Table I.
    pub fn iccad16_1() -> Self {
        BenchmarkSpec {
            name: "ICCAD16-1".to_owned(),
            tech: Tech::Euv7,
            hotspots: 0,
            non_hotspots: 63,
            dup_rate: 0.1,
            near_miss_rate: 0.3,
        }
    }

    /// ICCAD16-2-like: 56 hotspots, 967 non-hotspots at 7 nm.
    pub fn iccad16_2() -> Self {
        BenchmarkSpec {
            name: "ICCAD16-2".to_owned(),
            tech: Tech::Euv7,
            hotspots: 56,
            non_hotspots: 967,
            dup_rate: 0.1,
            near_miss_rate: 0.3,
        }
    }

    /// ICCAD16-3-like: 1 100 hotspots, 3 916 non-hotspots at 7 nm.
    pub fn iccad16_3() -> Self {
        BenchmarkSpec {
            name: "ICCAD16-3".to_owned(),
            tech: Tech::Euv7,
            hotspots: 1100,
            non_hotspots: 3916,
            dup_rate: 0.1,
            near_miss_rate: 0.3,
        }
    }

    /// ICCAD16-4-like: 157 hotspots, 1 678 non-hotspots at 7 nm.
    pub fn iccad16_4() -> Self {
        BenchmarkSpec {
            name: "ICCAD16-4".to_owned(),
            tech: Tech::Euv7,
            hotspots: 157,
            non_hotspots: 1678,
            dup_rate: 0.1,
            near_miss_rate: 0.3,
        }
    }

    /// Scales both cardinalities by `factor` (at least one clip per class
    /// that was non-empty). Use factors < 1 for quick runs; 1.0 reproduces
    /// Table I.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not finite and positive.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive, got {factor}"
        );
        let scale = |n: usize| -> usize {
            if n == 0 {
                0
            } else {
                ((n as f64 * factor).round() as usize).max(1)
            }
        };
        self.hotspots = scale(self.hotspots);
        self.non_hotspots = scale(self.non_hotspots);
        self
    }

    /// Total clip count.
    pub fn total(&self) -> usize {
        self.hotspots + self.non_hotspots
    }

    /// Validates rates and cardinalities.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::BadSpec`] on an empty benchmark or rates
    /// outside `[0, 1)`.
    pub fn validate(&self) -> Result<(), LayoutError> {
        if self.total() == 0 {
            return Err(LayoutError::BadSpec {
                detail: "benchmark must contain at least one clip".to_owned(),
            });
        }
        if !(0.0..1.0).contains(&self.dup_rate) {
            return Err(LayoutError::BadSpec {
                detail: format!("dup_rate {} outside [0, 1)", self.dup_rate),
            });
        }
        if !(0.0..1.0).contains(&self.near_miss_rate) {
            return Err(LayoutError::BadSpec {
                detail: format!("near_miss_rate {} outside [0, 1)", self.near_miss_rate),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_one() {
        assert_eq!(BenchmarkSpec::iccad12().hotspots, 3728);
        assert_eq!(BenchmarkSpec::iccad12().non_hotspots, 159_672);
        assert_eq!(BenchmarkSpec::iccad16_1().hotspots, 0);
        assert_eq!(BenchmarkSpec::iccad16_2().total(), 1023);
        assert_eq!(BenchmarkSpec::iccad16_3().total(), 5016);
        assert_eq!(BenchmarkSpec::iccad16_4().total(), 1835);
        assert_eq!(BenchmarkSpec::iccad12().tech.node_nm(), 28);
        assert_eq!(BenchmarkSpec::iccad16_2().tech.node_nm(), 7);
    }

    #[test]
    fn scaled_keeps_nonzero_classes() {
        let s = BenchmarkSpec::iccad16_2().scaled(0.01);
        assert!(s.hotspots >= 1);
        assert!(s.non_hotspots >= 1);
        let z = BenchmarkSpec::iccad16_1().scaled(0.5);
        assert_eq!(z.hotspots, 0);
    }

    #[test]
    fn validate_rejects_empty() {
        let mut s = BenchmarkSpec::iccad16_2();
        s.hotspots = 0;
        s.non_hotspots = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_rates() {
        let mut s = BenchmarkSpec::iccad16_2();
        s.dup_rate = 1.0;
        assert!(s.validate().is_err());
        s.dup_rate = 0.1;
        s.near_miss_rate = -0.1;
        assert!(s.validate().is_err());
    }

    #[test]
    fn geometry_windows_are_ordered() {
        for tech in [Tech::Duv28, Tech::Euv7] {
            let g = tech.geometry();
            assert!(g.hot_width.1 < g.near_width.0);
            assert!(g.near_width.1 < g.safe_width.0);
            assert!(g.hot_gap.1 < g.near_gap.0);
            assert!(g.near_gap.1 <= g.safe_gap_min);
            assert!(g.snap > 0);
        }
    }

    #[test]
    fn clip_fits_core() {
        for tech in [Tech::Duv28, Tech::Euv7] {
            assert!(tech.core_edge() < tech.clip_edge());
        }
    }

    #[test]
    fn tech_name_roundtrips() {
        for tech in [Tech::Duv28, Tech::Euv7] {
            assert_eq!(Tech::from_name(tech.name()).unwrap(), tech);
        }
        assert!(Tech::from_name("Euv5").is_err());
    }
}
