use crate::BenchmarkSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Statistics row of one benchmark, as printed in Table I of the paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchmarkStats {
    /// Benchmark name.
    pub name: String,
    /// Hotspot clip count.
    pub hotspots: usize,
    /// Non-hotspot clip count.
    pub non_hotspots: usize,
    /// Technology node in nanometres.
    pub tech_nm: u32,
}

impl fmt::Display for BenchmarkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {:>8} {:>10} {:>6}",
            self.name, self.hotspots, self.non_hotspots, self.tech_nm
        )
    }
}

/// The full Table I benchmark suite: ICCAD12 and ICCAD16-1..4 specs scaled
/// by `scale` (1.0 reproduces the paper's cardinalities).
///
/// ```
/// use hotspot_layout::bench_suite;
/// let suite = bench_suite(1.0);
/// assert_eq!(suite.len(), 5);
/// assert_eq!(suite[0].hotspots, 3728);
/// ```
pub fn bench_suite(scale: f64) -> Vec<BenchmarkSpec> {
    vec![
        BenchmarkSpec::iccad12().scaled(scale),
        BenchmarkSpec::iccad16_1().scaled(scale),
        BenchmarkSpec::iccad16_2().scaled(scale),
        BenchmarkSpec::iccad16_3().scaled(scale),
        BenchmarkSpec::iccad16_4().scaled(scale),
    ]
}

impl From<&BenchmarkSpec> for BenchmarkStats {
    fn from(spec: &BenchmarkSpec) -> Self {
        BenchmarkStats {
            name: spec.name.clone(),
            hotspots: spec.hotspots,
            non_hotspots: spec.non_hotspots,
            tech_nm: spec.tech.node_nm(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table_one_at_full_scale() {
        let suite = bench_suite(1.0);
        let stats: Vec<BenchmarkStats> = suite.iter().map(BenchmarkStats::from).collect();
        assert_eq!(stats[0].hotspots, 3728);
        assert_eq!(stats[0].non_hotspots, 159_672);
        assert_eq!(stats[1].hotspots, 0);
        assert_eq!(stats[2].hotspots, 56);
        assert_eq!(stats[3].non_hotspots, 3916);
        assert_eq!(stats[4].hotspots, 157);
        assert_eq!(stats[0].tech_nm, 28);
        assert!(stats[1..].iter().all(|s| s.tech_nm == 7));
    }

    #[test]
    fn display_renders_row() {
        let s = BenchmarkStats::from(&BenchmarkSpec::iccad16_2());
        let row = s.to_string();
        assert!(row.contains("ICCAD16-2") && row.contains("56") && row.contains("967"));
    }
}
