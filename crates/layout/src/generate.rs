use crate::pattern::{synthesize, ClipFamily, ClipRecipe};
use crate::{BenchmarkSpec, LayoutError, Signature};
use hotspot_features::{run_length_histogram, FeatureExtractor, FeatureMatrix, DEFAULT_RUN_BINS};
use hotspot_geom::{Point, Raster, Rect};
use hotspot_litho::{CountingOracle, Label, LithoSimulator};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// A fully generated benchmark: labels, features, and signatures for every
/// clip, with rasters regenerable on demand.
///
/// See the [crate-level documentation](crate) for design rationale and an
/// example.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct GeneratedBenchmark {
    spec: BenchmarkSpec,
    recipes: Vec<ClipRecipe>,
    labels: Vec<Label>,
    origins: Vec<Point>,
    dct: FeatureMatrix,
    density: FeatureMatrix,
    signatures: Vec<Signature>,
    hotspot_count: usize,
}

/// One labelled candidate produced by the synthesis workers.
struct Candidate {
    recipe: ClipRecipe,
    label: Label,
    dct: Vec<f32>,
    density: Vec<f32>,
    signature: Signature,
}

impl GeneratedBenchmark {
    /// Generates a benchmark matching `spec` exactly, deterministically in
    /// `seed`.
    ///
    /// Candidates are synthesised in parallel batches, labelled by the
    /// lithography simulator, and accepted until both class quotas are met;
    /// with some probability a candidate instead duplicates an earlier
    /// accepted clip (sharing its pattern and label).
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::BadSpec`] for an invalid specification and
    /// [`LayoutError::GenerationStalled`] if the geometry windows cannot
    /// produce the requested labels (which would indicate a litho-model /
    /// generator mismatch — covered by tests).
    pub fn generate(spec: &BenchmarkSpec, seed: u64) -> Result<Self, LayoutError> {
        spec.validate()?;
        let tech = spec.tech;
        let sim = LithoSimulator::new(tech.litho_config());
        let extractor = FeatureExtractor::standard();
        let core = core_rect(spec);

        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut recipes: Vec<ClipRecipe> = Vec::with_capacity(spec.total());
        let mut labels: Vec<Label> = Vec::with_capacity(spec.total());
        let mut dct_rows: Vec<Vec<f32>> = Vec::with_capacity(spec.total());
        let mut density_rows: Vec<Vec<f32>> = Vec::with_capacity(spec.total());
        let mut signatures: Vec<Signature> = Vec::with_capacity(spec.total());
        let mut fresh_indices: Vec<usize> = Vec::new();

        let mut hotspots = 0usize;
        let mut non_hotspots = 0usize;
        let mut attempts = 0usize;
        let max_attempts = spec.total().saturating_mul(40).max(10_000);

        while hotspots < spec.hotspots || non_hotspots < spec.non_hotspots {
            if attempts > max_attempts {
                return Err(LayoutError::GenerationStalled {
                    hotspots,
                    non_hotspots,
                    attempts,
                });
            }
            let need_hs = spec.hotspots - hotspots;
            let need_nhs = spec.non_hotspots - non_hotspots;
            // Fill at most half the remaining need per round (one clip
            // minimum) so later rounds can draw duplicates of earlier clips.
            let need = need_hs + need_nhs;
            let batch = need.div_ceil(2).clamp(1, 1024);

            // Duplicates are decided serially (they need the accepted list).
            let mut dup_quota = 0usize;
            if !fresh_indices.is_empty() {
                for _ in 0..batch {
                    if rng.gen_bool(spec.dup_rate) {
                        dup_quota += 1;
                    }
                }
            }
            let mut accepted_dups = 0usize;
            while accepted_dups < dup_quota
                && (hotspots < spec.hotspots || non_hotspots < spec.non_hotspots)
            {
                let source = fresh_indices[rng.gen_range(0..fresh_indices.len())];
                let label = labels[source];
                let fits = match label {
                    Label::Hotspot => hotspots < spec.hotspots,
                    Label::NonHotspot => non_hotspots < spec.non_hotspots,
                };
                accepted_dups += 1;
                if !fits {
                    continue;
                }
                recipes.push(ClipRecipe::Duplicate { source });
                labels.push(label);
                dct_rows.push(dct_rows[source].clone());
                density_rows.push(density_rows[source].clone());
                signatures.push(signatures[source].clone());
                match label {
                    Label::Hotspot => hotspots += 1,
                    Label::NonHotspot => non_hotspots += 1,
                }
            }

            // Fresh candidates, synthesised and labelled in parallel.
            let fresh_batch = batch.saturating_sub(dup_quota).max(1);
            let specs: Vec<(ClipFamily, u64)> = (0..fresh_batch)
                .map(|_| {
                    let family = choose_family(&mut rng, spec, hotspots, non_hotspots);
                    let clip_seed = rng.gen::<u64>();
                    (family, clip_seed)
                })
                .collect();
            attempts += specs.len();
            let candidates: Vec<Candidate> = specs
                .into_par_iter()
                .map(|(family, clip_seed)| {
                    let raster = synthesize(tech, family, clip_seed);
                    let label = sim.label(&raster, core);
                    Candidate {
                        recipe: ClipRecipe::Fresh {
                            family,
                            seed: clip_seed,
                        },
                        label,
                        dct: clip_features(&extractor, &raster, core),
                        density: extractor.density_features(&raster),
                        signature: Signature::from_raster(&raster, core),
                    }
                })
                .collect();
            for c in candidates {
                let fits = match c.label {
                    Label::Hotspot => hotspots < spec.hotspots,
                    Label::NonHotspot => non_hotspots < spec.non_hotspots,
                };
                if !fits {
                    continue;
                }
                fresh_indices.push(recipes.len());
                recipes.push(c.recipe);
                labels.push(c.label);
                dct_rows.push(c.dct);
                density_rows.push(c.density);
                signatures.push(c.signature);
                match c.label {
                    Label::Hotspot => hotspots += 1,
                    Label::NonHotspot => non_hotspots += 1,
                }
            }
        }

        // Shuffle clip order so labels are not grouped by generation phase,
        // then lay clips out on a square grid for the layout map (Fig. 5).
        let mut order: Vec<usize> = (0..recipes.len()).collect();
        use rand::seq::SliceRandom;
        order.shuffle(&mut rng);
        let mut remap = vec![0usize; order.len()];
        for (new_idx, &old_idx) in order.iter().enumerate() {
            remap[old_idx] = new_idx;
        }
        let recipes: Vec<ClipRecipe> = order
            .iter()
            .map(|&i| match recipes[i] {
                ClipRecipe::Duplicate { source } => ClipRecipe::Duplicate {
                    source: remap[source],
                },
                fresh => fresh,
            })
            .collect();
        let labels: Vec<Label> = order.iter().map(|&i| labels[i]).collect();
        let dct_rows: Vec<Vec<f32>> = order.iter().map(|&i| dct_rows[i].clone()).collect();
        let density_rows: Vec<Vec<f32>> = order.iter().map(|&i| density_rows[i].clone()).collect();
        let signatures: Vec<Signature> = order.iter().map(|&i| signatures[i].clone()).collect();

        let grid = (recipes.len() as f64).sqrt().ceil() as usize;
        let edge = tech.clip_edge();
        let origins = (0..recipes.len())
            .map(|i| Point::new((i % grid) as i64 * edge, (i / grid) as i64 * edge))
            .collect();

        let dct = FeatureMatrix::from_rows(dct_rows).map_err(|e| LayoutError::BadSpec {
            detail: format!("non-uniform DCT feature widths: {e}"),
        })?;
        let density = FeatureMatrix::from_rows(density_rows).map_err(|e| LayoutError::BadSpec {
            detail: format!("non-uniform density feature widths: {e}"),
        })?;
        Ok(GeneratedBenchmark {
            spec: spec.clone(),
            recipes,
            labels,
            origins,
            dct,
            density,
            signatures,
            hotspot_count: hotspots,
        })
    }

    /// The generating specification.
    pub fn spec(&self) -> &BenchmarkSpec {
        &self.spec
    }

    /// Number of clips.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the benchmark is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Ground-truth labels (generation-time; experiments must meter access
    /// through [`GeneratedBenchmark::oracle`]).
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Hotspot clip count.
    pub fn hotspot_count(&self) -> usize {
        self.hotspot_count
    }

    /// Non-hotspot clip count.
    pub fn non_hotspot_count(&self) -> usize {
        self.len() - self.hotspot_count
    }

    /// Block-DCT features of every clip (row = clip).
    pub fn dct_features(&self) -> &FeatureMatrix {
        &self.dct
    }

    /// Coarse density features of every clip (row = clip).
    pub fn density_features(&self) -> &FeatureMatrix {
        &self.density
    }

    /// Pattern signatures of every clip.
    pub fn signatures(&self) -> &[Signature] {
        &self.signatures
    }

    /// Layout-map origin of every clip (for the Fig. 5 visualisation).
    pub fn origins(&self) -> &[Point] {
        &self.origins
    }

    /// The clip recipes (pattern provenance).
    pub fn recipes(&self) -> &[ClipRecipe] {
        &self.recipes
    }

    /// A metered labelling oracle over this benchmark's ground truth.
    pub fn oracle(&self) -> CountingOracle {
        CountingOracle::new(self.labels.clone())
    }

    /// Regenerates the mask raster of clip `index` deterministically.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn clip_raster(&self, index: usize) -> Raster {
        assert!(
            index < self.len(),
            "clip {index} out of range ({} clips)",
            self.len()
        );
        match self.recipes[index] {
            ClipRecipe::Fresh { family, seed } => synthesize(self.spec.tech, family, seed),
            ClipRecipe::Duplicate { source } => self.clip_raster(source),
        }
    }

    /// The core region shared by all clips, in clip-local coordinates.
    pub fn core(&self) -> Rect {
        core_rect(&self.spec)
    }

    /// Serialises the benchmark as JSON (features, labels, signatures,
    /// recipes — everything except rasters, which regenerate from recipes).
    /// Generation of the full-scale ICCAD12 population labels 163 400 clips
    /// through the litho simulator; caching the result makes experiment
    /// re-runs instant. A mut reference works as the writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialisation failures.
    pub fn write_json<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        serde_json::to_writer(writer, self).map_err(std::io::Error::other)
    }

    /// Loads a benchmark saved by [`GeneratedBenchmark::write_json`],
    /// validating internal consistency. A mut reference works as the reader.
    ///
    /// # Errors
    ///
    /// Returns an I/O error for unreadable input and a
    /// [`LayoutError::BadSpec`] (wrapped in `io::Error`) when the archive's
    /// counts are inconsistent (truncated or hand-edited files).
    pub fn read_json<R: std::io::Read>(reader: R) -> std::io::Result<Self> {
        let bench: GeneratedBenchmark =
            serde_json::from_reader(reader).map_err(std::io::Error::other)?;
        let n = bench.labels.len();
        let hotspots = bench.labels.iter().filter(|l| l.is_hotspot()).count();
        let consistent = bench.recipes.len() == n
            && bench.origins.len() == n
            && bench.signatures.len() == n
            && bench.dct.rows() == n
            && bench.density.rows() == n
            && bench.hotspot_count == hotspots
            && bench
                .recipes
                .iter()
                .all(|r| !matches!(r, ClipRecipe::Duplicate { source } if *source >= n));
        if !consistent {
            return Err(std::io::Error::other(LayoutError::BadSpec {
                detail: "benchmark archive is internally inconsistent".to_owned(),
            }));
        }
        Ok(bench)
    }
}

/// Combined feature vector of one clip: block-DCT features of the core crop
/// (double effective resolution where defects count) concatenated with
/// censored run-length histograms of the core. The DCT half carries the
/// spectral layout representation the hotspot-CNN literature trains on; the
/// run-length half carries the translation-invariant width/spacing view a
/// small MLP needs to generalise from the few labelled clips an active
/// learner starts with.
fn clip_features(extractor: &FeatureExtractor, raster: &Raster, core: Rect) -> Vec<f32> {
    let core_crop = raster.crop(&core).unwrap_or_else(|| raster.clone());
    let mut features = extractor.extract(&core_crop);
    features.extend(run_length_histogram(&core_crop, 0.5, &DEFAULT_RUN_BINS));
    features
}

fn core_rect(spec: &BenchmarkSpec) -> Rect {
    let lo = (spec.tech.clip_edge() - spec.tech.core_edge()) / 2;
    // core_edge is non-negative for every Tech, so spanning() needs no
    // fallible construction here.
    Rect::spanning(
        Point::new(lo, lo),
        Point::new(lo + spec.tech.core_edge(), lo + spec.tech.core_edge()),
    )
}

fn choose_family(
    rng: &mut ChaCha8Rng,
    spec: &BenchmarkSpec,
    hotspots: usize,
    non_hotspots: usize,
) -> ClipFamily {
    let need_hs = hotspots < spec.hotspots;
    let need_nhs = non_hotspots < spec.non_hotspots;
    let want_hotspot = match (need_hs, need_nhs) {
        (true, false) => true,
        (false, _) => false,
        (true, true) => {
            let remaining_hs = (spec.hotspots - hotspots) as f64;
            let remaining = (spec.total() - hotspots - non_hotspots) as f64;
            rng.gen_bool((remaining_hs / remaining).clamp(0.0, 1.0))
        }
    };
    if want_hotspot {
        if rng.gen_bool(0.5) {
            ClipFamily::Pinch
        } else {
            ClipFamily::Bridge
        }
    } else if rng.gen_bool(spec.near_miss_rate) {
        ClipFamily::NearMiss
    } else {
        ClipFamily::Safe
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> BenchmarkSpec {
        BenchmarkSpec {
            name: "test".to_owned(),
            tech: crate::Tech::Euv7,
            hotspots: 12,
            non_hotspots: 48,
            dup_rate: 0.2,
            near_miss_rate: 0.3,
        }
    }

    #[test]
    fn generates_exact_counts() {
        let bench = GeneratedBenchmark::generate(&small_spec(), 3).unwrap();
        assert_eq!(bench.len(), 60);
        assert_eq!(bench.hotspot_count(), 12);
        assert_eq!(bench.non_hotspot_count(), 48);
        let hs = bench.labels().iter().filter(|l| l.is_hotspot()).count();
        assert_eq!(hs, 12);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = GeneratedBenchmark::generate(&small_spec(), 9).unwrap();
        let b = GeneratedBenchmark::generate(&small_spec(), 9).unwrap();
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.recipes(), b.recipes());
        assert_eq!(a.dct_features(), b.dct_features());
    }

    #[test]
    fn different_seeds_differ() {
        let a = GeneratedBenchmark::generate(&small_spec(), 1).unwrap();
        let b = GeneratedBenchmark::generate(&small_spec(), 2).unwrap();
        assert_ne!(a.recipes(), b.recipes());
    }

    #[test]
    fn rasters_regenerate_and_match_labels() {
        let bench = GeneratedBenchmark::generate(&small_spec(), 5).unwrap();
        let sim = LithoSimulator::new(bench.spec().tech.litho_config());
        for i in (0..bench.len()).step_by(7) {
            let raster = bench.clip_raster(i);
            assert_eq!(
                sim.label(&raster, bench.core()),
                bench.labels()[i],
                "clip {i} label mismatch on regeneration"
            );
        }
    }

    #[test]
    fn duplicates_share_signatures() {
        let bench = GeneratedBenchmark::generate(&small_spec(), 11).unwrap();
        let mut found_dup = false;
        for (i, recipe) in bench.recipes().iter().enumerate() {
            if let ClipRecipe::Duplicate { source } = recipe {
                found_dup = true;
                assert_eq!(bench.signatures()[i], bench.signatures()[*source]);
                assert_eq!(bench.labels()[i], bench.labels()[*source]);
            }
        }
        assert!(found_dup, "expected at least one duplicate at dup_rate 0.2");
    }

    #[test]
    fn features_have_expected_shapes() {
        let bench = GeneratedBenchmark::generate(&small_spec(), 3).unwrap();
        assert_eq!(bench.dct_features().rows(), bench.len());
        assert_eq!(bench.dct_features().dim(), 148);
        assert_eq!(bench.density_features().dim(), 16);
        assert_eq!(bench.signatures().len(), bench.len());
        assert_eq!(bench.origins().len(), bench.len());
    }

    #[test]
    fn oracle_reflects_ground_truth() {
        use hotspot_litho::LithoOracle;
        let bench = GeneratedBenchmark::generate(&small_spec(), 3).unwrap();
        let mut oracle = bench.oracle();
        for i in 0..bench.len() {
            assert_eq!(oracle.query(i), bench.labels()[i]);
        }
        assert_eq!(oracle.unique_queries(), bench.len());
    }

    #[test]
    fn labels_are_shuffled() {
        // Hotspots should not all sit at the front of the index space.
        let bench = GeneratedBenchmark::generate(&small_spec(), 3).unwrap();
        let first_quarter_hs = bench.labels()[..15]
            .iter()
            .filter(|l| l.is_hotspot())
            .count();
        assert!(first_quarter_hs < 12, "labels appear sorted by class");
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let bench = GeneratedBenchmark::generate(&small_spec(), 3).unwrap();
        let mut buffer = Vec::new();
        bench.write_json(&mut buffer).unwrap();
        let back = GeneratedBenchmark::read_json(buffer.as_slice()).unwrap();
        assert_eq!(back.labels(), bench.labels());
        assert_eq!(back.recipes(), bench.recipes());
        assert_eq!(back.dct_features(), bench.dct_features());
        assert_eq!(back.signatures(), bench.signatures());
        // Rasters regenerate identically from the loaded recipes.
        assert_eq!(back.clip_raster(5), bench.clip_raster(5));
    }

    #[test]
    fn read_json_rejects_corrupted_archives() {
        let bench = GeneratedBenchmark::generate(&small_spec(), 3).unwrap();
        let mut buffer = Vec::new();
        bench.write_json(&mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        // Flip one label so the hotspot tally no longer matches.
        let corrupted = text.replacen("\"NonHotspot\"", "\"Hotspot\"", 1);
        assert!(GeneratedBenchmark::read_json(corrupted.as_bytes()).is_err());
        assert!(GeneratedBenchmark::read_json(&b"not json"[..]).is_err());
    }

    #[test]
    fn zero_hotspot_benchmark_works() {
        let spec = BenchmarkSpec {
            name: "empty-hs".to_owned(),
            tech: crate::Tech::Euv7,
            hotspots: 0,
            non_hotspots: 20,
            dup_rate: 0.1,
            near_miss_rate: 0.3,
        };
        let bench = GeneratedBenchmark::generate(&spec, 0).unwrap();
        assert_eq!(bench.hotspot_count(), 0);
        assert_eq!(bench.len(), 20);
    }
}
