use hotspot_geom::{Raster, Rect};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Edge length of the density grid a signature stores for fuzzy matching.
pub(crate) const DENSITY_EDGE: usize = 12;

/// A compact pattern signature used by the pattern-matching baselines.
///
/// * `exact_hash` — a hash of the quantised full-clip raster; equal hashes
///   mean (with overwhelming probability) identical patterns, which is the
///   clustering key of exact pattern matching.
/// * `core_density` — a `12 × 12` quantised density grid over the clip
///   *core*, the representation fuzzy matchers compare. The paper's fuzzy
///   experiments likewise restrict to the centre region of each clip.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    /// Exact-pattern cluster key.
    pub exact_hash: u64,
    /// Quantised core-density grid (row-major, 0–255).
    pub core_density: Vec<u8>,
}

impl Signature {
    /// Builds a signature for a clip raster with the given core region.
    pub fn from_raster(raster: &Raster, core: Rect) -> Self {
        let mut hasher = DefaultHasher::new();
        // Quantise before hashing so float noise cannot split clusters.
        for &px in raster.pixels() {
            ((px.clamp(0.0, 1.0) * 255.0).round() as u8).hash(&mut hasher);
        }
        let core_raster = raster
            .crop(&core)
            .unwrap_or_else(|| raster.clone())
            .resampled(DENSITY_EDGE, DENSITY_EDGE);
        let core_density = core_raster
            .pixels()
            .iter()
            .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
            .collect();
        Signature {
            exact_hash: hasher.finish(),
            core_density,
        }
    }

    /// Cosine similarity of the core-density grids, in `[0, 1]`.
    /// Two empty cores compare as identical.
    ///
    /// # Panics
    ///
    /// Panics when the grids differ in size.
    pub fn similarity(&self, other: &Signature) -> f64 {
        assert_eq!(
            self.core_density.len(),
            other.core_density.len(),
            "signature grid size mismatch"
        );
        let mut dot = 0.0f64;
        let mut na = 0.0f64;
        let mut nb = 0.0f64;
        for (&a, &b) in self.core_density.iter().zip(&other.core_density) {
            let (a, b) = (a as f64, b as f64);
            dot += a * b;
            na += a * a;
            nb += b * b;
        }
        if na <= 0.0 && nb <= 0.0 {
            return 1.0;
        }
        if na <= 0.0 || nb <= 0.0 {
            return 0.0;
        }
        dot / (na.sqrt() * nb.sqrt())
    }

    /// A pooled, quantised cluster key: the core-density grid is average-
    /// pooled down to `pool_edge × pool_edge` cells and quantised to
    /// `levels` buckets before hashing. Smaller grids and fewer levels make
    /// the key *fuzzier* — more patterns collide into one cluster. This is
    /// the O(n) stand-in for threshold-based fuzzy matching on large clip
    /// populations (see `hotspot-baselines`).
    ///
    /// # Panics
    ///
    /// Panics when `pool_edge` is zero or larger than the grid edge, or when
    /// `levels` is outside `1..=256`.
    pub fn pooled_hash(&self, pool_edge: usize, levels: u16) -> u64 {
        assert!(
            pool_edge > 0 && pool_edge <= DENSITY_EDGE,
            "pool edge must be in 1..={DENSITY_EDGE}"
        );
        assert!((1..=256).contains(&levels), "levels must be in 1..=256");
        let step = (256.0 / levels as f64).max(1.0);
        let mut hasher = DefaultHasher::new();
        for py in 0..pool_edge {
            for px in 0..pool_edge {
                // Average the source cells this pooled cell covers.
                let y0 = py * DENSITY_EDGE / pool_edge;
                let y1 = ((py + 1) * DENSITY_EDGE).div_ceil(pool_edge);
                let x0 = px * DENSITY_EDGE / pool_edge;
                let x1 = ((px + 1) * DENSITY_EDGE).div_ceil(pool_edge);
                let mut acc = 0u32;
                let mut count = 0u32;
                for y in y0..y1.min(DENSITY_EDGE) {
                    for x in x0..x1.min(DENSITY_EDGE) {
                        acc += self.core_density[y * DENSITY_EDGE + x] as u32;
                        count += 1;
                    }
                }
                let mean = acc as f64 / count.max(1) as f64;
                ((mean / step) as u16).hash(&mut hasher);
            }
        }
        hasher.finish()
    }

    /// A coarse cluster key with an edge tolerance: densities are quantised
    /// to `levels` buckets so patterns whose edges moved by a couple of
    /// nanometres still collide. This models the "e2" (edge within 2 nm)
    /// fuzzy matching mode.
    ///
    /// # Panics
    ///
    /// Panics when `levels` is zero or exceeds 256.
    pub fn tolerant_hash(&self, levels: u16) -> u64 {
        assert!((1..=256).contains(&levels), "levels must be in 1..=256");
        let step = (256 / levels as u32).max(1) as u8;
        let mut hasher = DefaultHasher::new();
        for &v in &self.core_density {
            (v / step).hash(&mut hasher);
        }
        hasher.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geom::{Raster, Rect};

    fn raster_with(xs: &[(i64, i64)]) -> Raster {
        let mut r = Raster::zeros(Rect::new(0, 0, 1200, 1200).unwrap(), 10).unwrap();
        for &(y, w) in xs {
            r.fill_rect(&Rect::new(0, y, 1200, y + w).unwrap(), 1.0);
        }
        r
    }

    fn core() -> Rect {
        Rect::new(300, 300, 900, 900).unwrap()
    }

    #[test]
    fn identical_rasters_share_exact_hash() {
        let a = Signature::from_raster(&raster_with(&[(500, 80)]), core());
        let b = Signature::from_raster(&raster_with(&[(500, 80)]), core());
        assert_eq!(a.exact_hash, b.exact_hash);
        assert!((a.similarity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn different_rasters_differ() {
        let a = Signature::from_raster(&raster_with(&[(500, 80)]), core());
        let b = Signature::from_raster(&raster_with(&[(700, 80)]), core());
        assert_ne!(a.exact_hash, b.exact_hash);
        assert!(a.similarity(&b) < 0.999);
    }

    #[test]
    fn small_shift_keeps_high_similarity() {
        let a = Signature::from_raster(&raster_with(&[(500, 80), (700, 80)]), core());
        let b = Signature::from_raster(&raster_with(&[(504, 80), (700, 80)]), core());
        assert!(a.similarity(&b) > 0.95, "{}", a.similarity(&b));
    }

    #[test]
    fn unrelated_patterns_have_low_similarity() {
        let a = Signature::from_raster(&raster_with(&[(320, 60)]), core());
        let b = Signature::from_raster(&raster_with(&[(820, 60)]), core());
        assert!(a.similarity(&b) < 0.3, "{}", a.similarity(&b));
    }

    #[test]
    fn tolerant_hash_collides_on_tiny_shifts() {
        let a = Signature::from_raster(&raster_with(&[(500, 80)]), core());
        let b = Signature::from_raster(&raster_with(&[(502, 80)]), core());
        // Coarse quantisation makes a 2 nm shift invisible.
        assert_eq!(a.tolerant_hash(4), b.tolerant_hash(4));
    }

    #[test]
    fn empty_cores_compare_equal() {
        let a = Signature::from_raster(&raster_with(&[]), core());
        let b = Signature::from_raster(&raster_with(&[]), core());
        assert_eq!(a.similarity(&b), 1.0);
    }

    #[test]
    #[should_panic(expected = "levels")]
    fn tolerant_hash_rejects_zero_levels() {
        let a = Signature::from_raster(&raster_with(&[]), core());
        let _ = a.tolerant_hash(0);
    }
}
