use crate::spec::{GeometryParams, Tech};
use hotspot_geom::{Coord, Point, Raster, Rect};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The pattern family a clip was synthesised from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClipFamily {
    /// Comfortable routing tracks; prints cleanly.
    Safe,
    /// Marginal-but-printable tracks; the hard non-hotspots.
    NearMiss,
    /// A sub-printable wire through the core (pinch hotspot).
    Pinch,
    /// A sub-resolution gap through the core (bridge hotspot).
    Bridge,
}

impl ClipFamily {
    /// Whether the family is *intended* to produce a hotspot (ground truth
    /// still comes from lithography simulation).
    pub fn is_hotspot_family(self) -> bool {
        matches!(self, ClipFamily::Pinch | ClipFamily::Bridge)
    }
}

/// The deterministic recipe that regenerates one clip's geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClipRecipe {
    /// A freshly drawn pattern.
    Fresh {
        /// Pattern family.
        family: ClipFamily,
        /// Per-clip RNG seed.
        seed: u64,
    },
    /// An exact duplicate of an earlier clip (by benchmark index). Duplicate
    /// sources always refer to `Fresh` clips.
    Duplicate {
        /// Index of the duplicated clip.
        source: usize,
    },
}

/// Synthesises the mask raster of a fresh clip.
///
/// The pattern is a stack of full-span routing tracks. Hotspot families
/// first place their defect structure centred on the clip core, then fill
/// the rest of the clip with safe tracks; `Safe`/`NearMiss` fill the whole
/// clip from their respective width/gap windows and may add perpendicular
/// tracks for variety.
pub(crate) fn synthesize(tech: Tech, family: ClipFamily, seed: u64) -> Raster {
    let g = tech.geometry();
    let edge = tech.clip_edge();
    let core_lo = (edge - tech.core_edge()) / 2;
    let core_hi = core_lo + tech.core_edge();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let transpose = rng.gen_bool(0.5);

    let mut rects: Vec<Rect> = Vec::new();
    let fill_up =
        |rects: &mut Vec<Rect>, rng: &mut ChaCha8Rng, mut y: Coord, limit: Coord, wide: bool| {
            while y < limit {
                let w = if wide {
                    snap(rng.gen_range(g.safe_width.0..=g.safe_width.1), g.snap)
                } else {
                    snap(rng.gen_range(g.near_width.0..=g.near_width.1), g.snap)
                };
                if y + w > limit {
                    break;
                }
                rects.push(rect_track(edge, y, w));
                let gap = if wide {
                    snap(
                        rng.gen_range(g.safe_gap_min..=g.safe_gap_min + g.safe_width.1),
                        g.snap,
                    )
                } else {
                    snap(rng.gen_range(g.near_gap.0..=g.near_gap.1), g.snap)
                };
                y += w + gap;
            }
        };

    match family {
        ClipFamily::Safe | ClipFamily::NearMiss => {
            let wide = family == ClipFamily::Safe;
            let start = snap(rng.gen_range(0..g.safe_width.1), g.snap);
            fill_up(&mut rects, &mut rng, start, edge, wide);
            // Perpendicular tracks for variety (only in defect-free clips —
            // a crossing wire would locally repair an injected defect).
            if rng.gen_bool(0.35) {
                let count = rng.gen_range(1..=2);
                let mut x = snap(rng.gen_range(0..edge / 2), g.snap);
                for _ in 0..count {
                    let w = snap(rng.gen_range(g.safe_width.0..=g.safe_width.1), g.snap);
                    if x + w >= edge {
                        break;
                    }
                    rects.push(rect_cross(edge, x, w));
                    x += w + snap(rng.gen_range(g.safe_gap_min * 2..edge / 2 + 1), g.snap);
                }
            }
        }
        ClipFamily::Pinch => {
            // Sub-printable wire with its axis inside the core band.
            let w = snap(rng.gen_range(g.hot_width.0..=g.hot_width.1), g.snap);
            let margin = tech.core_edge() / 4;
            let y = snap(
                rng.gen_range(core_lo + margin..core_hi - margin - w),
                g.snap,
            );
            rects.push(rect_track(edge, y, w));
            let buffer = snap(g.safe_gap_min + g.safe_width.1 / 2, g.snap);
            fill_up(&mut rects, &mut rng, y + w + buffer, edge, true);
            fill_down(&mut rects, &mut rng, y - buffer, &g, edge);
        }
        ClipFamily::Bridge => {
            // Two safe wires with a sub-resolution slot centred in the core.
            let gap = snap(rng.gen_range(g.hot_gap.0..=g.hot_gap.1), g.snap);
            let w_low = snap(rng.gen_range(g.safe_width.0..=g.safe_width.1), g.snap);
            let w_high = snap(rng.gen_range(g.safe_width.0..=g.safe_width.1), g.snap);
            let margin = tech.core_edge() / 4;
            let gap_center = snap(rng.gen_range(core_lo + margin..core_hi - margin), g.snap);
            let y_low = gap_center - gap / 2 - w_low;
            rects.push(rect_track(edge, y_low, w_low));
            rects.push(rect_track(edge, gap_center + gap - gap / 2, w_high));
            let buffer = snap(g.safe_gap_min + g.safe_width.1 / 2, g.snap);
            fill_up(
                &mut rects,
                &mut rng,
                gap_center + gap - gap / 2 + w_high + buffer,
                edge,
                true,
            );
            fill_down(&mut rects, &mut rng, y_low - buffer, &g, edge);
        }
    }

    let config = tech.litho_config();
    let window = Rect::spanning(Point::new(0, 0), Point::new(edge, edge));
    // Every `Tech` has a positive pitch and a clip that fits the raster size
    // bound; coarsening the pitch (quartering the grid each time) keeps this
    // total rather than trusting that invariant.
    let mut pitch = config.pitch.max(1);
    let mut raster = loop {
        match Raster::zeros(window, pitch) {
            Ok(raster) => break raster,
            Err(_) => pitch *= 2,
        }
    };
    for r in rects {
        let r = if transpose {
            transpose_rect(&r, edge)
        } else {
            r
        };
        if let Some(clipped) = r.intersection(&window) {
            raster.fill_rect(&clipped, 1.0);
        }
    }
    raster
}

/// Fills safe tracks downward from `top` towards the clip bottom.
fn fill_down(
    rects: &mut Vec<Rect>,
    rng: &mut ChaCha8Rng,
    top: Coord,
    g: &GeometryParams,
    edge: Coord,
) {
    let mut y_top = top;
    while y_top > 0 {
        let w = snap(rng.gen_range(g.safe_width.0..=g.safe_width.1), g.snap);
        let y = y_top - w;
        if y < 0 {
            break;
        }
        rects.push(rect_track(edge, y, w));
        let gap = snap(
            rng.gen_range(g.safe_gap_min..=g.safe_gap_min + g.safe_width.1),
            g.snap,
        );
        y_top = y - gap;
    }
}

fn rect_track(edge: Coord, y: Coord, width: Coord) -> Rect {
    Rect::spanning(Point::new(0, y), Point::new(edge, y + width))
}

fn rect_cross(edge: Coord, x: Coord, width: Coord) -> Rect {
    Rect::spanning(Point::new(x, 0), Point::new(x + width, edge))
}

fn transpose_rect(r: &Rect, _edge: Coord) -> Rect {
    Rect::spanning(Point::new(r.y0(), r.x0()), Point::new(r.y1(), r.x1()))
}

fn snap(v: Coord, grid: Coord) -> Coord {
    (v / grid) * grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_litho::{Label, LithoSimulator};

    fn label_of(tech: Tech, family: ClipFamily, seed: u64) -> Label {
        let raster = synthesize(tech, family, seed);
        let sim = LithoSimulator::new(tech.litho_config());
        let core_lo = (tech.clip_edge() - tech.core_edge()) / 2;
        let core = Rect::new(
            core_lo,
            core_lo,
            core_lo + tech.core_edge(),
            core_lo + tech.core_edge(),
        )
        .unwrap();
        sim.label(&raster, core)
    }

    #[test]
    fn synthesis_is_deterministic() {
        for family in [ClipFamily::Safe, ClipFamily::Pinch, ClipFamily::Bridge] {
            let a = synthesize(Tech::Duv28, family, 77);
            let b = synthesize(Tech::Duv28, family, 77);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthesize(Tech::Duv28, ClipFamily::Safe, 1);
        let b = synthesize(Tech::Duv28, ClipFamily::Safe, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn clips_are_nonempty() {
        for tech in [Tech::Duv28, Tech::Euv7] {
            for family in [
                ClipFamily::Safe,
                ClipFamily::NearMiss,
                ClipFamily::Pinch,
                ClipFamily::Bridge,
            ] {
                for seed in 0..5 {
                    let raster = synthesize(tech, family, seed);
                    assert!(
                        raster.density() > 0.02,
                        "{tech:?}/{family:?}/{seed} density {}",
                        raster.density()
                    );
                }
            }
        }
    }

    #[test]
    fn safe_family_rarely_hotspots() {
        for tech in [Tech::Duv28, Tech::Euv7] {
            let hot = (0..40)
                .filter(|&s| label_of(tech, ClipFamily::Safe, s) == Label::Hotspot)
                .count();
            assert!(hot <= 2, "{tech:?}: {hot}/40 safe clips were hotspots");
        }
    }

    #[test]
    fn near_miss_family_rarely_hotspots() {
        for tech in [Tech::Duv28, Tech::Euv7] {
            let hot = (100..140)
                .filter(|&s| label_of(tech, ClipFamily::NearMiss, s) == Label::Hotspot)
                .count();
            assert!(hot <= 4, "{tech:?}: {hot}/40 near-miss clips were hotspots");
        }
    }

    #[test]
    fn pinch_family_mostly_hotspots() {
        for tech in [Tech::Duv28, Tech::Euv7] {
            let hot = (0..40)
                .filter(|&s| label_of(tech, ClipFamily::Pinch, s) == Label::Hotspot)
                .count();
            assert!(
                hot >= 36,
                "{tech:?}: only {hot}/40 pinch clips were hotspots"
            );
        }
    }

    #[test]
    fn bridge_family_mostly_hotspots() {
        for tech in [Tech::Duv28, Tech::Euv7] {
            let hot = (0..40)
                .filter(|&s| label_of(tech, ClipFamily::Bridge, s) == Label::Hotspot)
                .count();
            assert!(
                hot >= 36,
                "{tech:?}: only {hot}/40 bridge clips were hotspots"
            );
        }
    }

    #[test]
    fn family_hotspot_flag() {
        assert!(ClipFamily::Pinch.is_hotspot_family());
        assert!(ClipFamily::Bridge.is_hotspot_family());
        assert!(!ClipFamily::Safe.is_hotspot_family());
        assert!(!ClipFamily::NearMiss.is_hotspot_family());
    }
}
