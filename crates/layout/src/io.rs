use crate::LayoutError;
use hotspot_geom::{Coord, GeomError, Point, Polygon, Raster, Rect};
use std::io::{BufRead, Write};

/// A clip description in the plain-text exchange format: the clip window,
/// its core edge, and the metal rectangles.
///
/// The format is line-oriented and diff-friendly — the practical analogue of
/// handing single-layer clip geometry around without a GDSII dependency:
///
/// ```text
/// # lithohd clip v1
/// clip 1200 1200 600
/// rect 0 150 1200 250
/// poly 0 420 300 420 300 520 0 520
/// ```
///
/// `clip W H CORE` gives the window size and centred core edge in
/// nanometres; each `rect x0 y0 x1 y1` adds metal, and each
/// `poly x0 y0 x1 y1 …` adds a rectilinear polygon (stored decomposed into
/// rectangles). Blank lines and `#` comments are ignored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClipFile {
    /// Window width in nanometres.
    pub width: Coord,
    /// Window height in nanometres.
    pub height: Coord,
    /// Centred core edge in nanometres.
    pub core_edge: Coord,
    /// Metal rectangles.
    pub rects: Vec<Rect>,
}

impl ClipFile {
    /// Parses the text format from a reader. A mut reference works as the
    /// reader.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::BadSpec`] for malformed lines or a missing
    /// `clip` header, and propagates I/O failures as `BadSpec` with the
    /// error text (the format is small enough that a dedicated error enum
    /// earns nothing).
    pub fn read<R: BufRead>(reader: R) -> Result<Self, LayoutError> {
        let mut header: Option<(Coord, Coord, Coord)> = None;
        let mut rects = Vec::new();
        for (number, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| LayoutError::BadSpec {
                detail: format!("I/O error reading clip file: {e}"),
            })?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let keyword = parts.next().unwrap_or_default();
            let numbers: Vec<Coord> = parts
                .map(|p| {
                    p.parse().map_err(|_| LayoutError::BadSpec {
                        detail: format!("line {}: bad number {p:?}", number + 1),
                    })
                })
                .collect::<Result<_, _>>()?;
            match (keyword, numbers.as_slice()) {
                ("clip", &[w, h, core]) => {
                    if header.replace((w, h, core)).is_some() {
                        return Err(LayoutError::BadSpec {
                            detail: format!("line {}: duplicate clip header", number + 1),
                        });
                    }
                }
                ("rect", &[x0, y0, x1, y1]) => {
                    rects.push(Rect::new(x0, y0, x1, y1).map_err(|e: GeomError| {
                        LayoutError::BadSpec {
                            detail: format!("line {}: {e}", number + 1),
                        }
                    })?);
                }
                ("poly", coords) if coords.len() >= 8 && coords.len() % 2 == 0 => {
                    let vertices: Vec<Point> = coords
                        .chunks_exact(2)
                        .map(|pair| Point::new(pair[0], pair[1]))
                        .collect();
                    let polygon =
                        Polygon::new(vertices).map_err(|e: GeomError| LayoutError::BadSpec {
                            detail: format!("line {}: {e}", number + 1),
                        })?;
                    rects.extend(polygon.to_rects());
                }
                _ => {
                    return Err(LayoutError::BadSpec {
                        detail: format!("line {}: unrecognised directive {line:?}", number + 1),
                    })
                }
            }
        }
        let (width, height, core_edge) = header.ok_or_else(|| LayoutError::BadSpec {
            detail: "clip file has no `clip W H CORE` header".to_owned(),
        })?;
        if width <= 0 || height <= 0 || core_edge < 0 || core_edge > width.min(height) {
            return Err(LayoutError::BadSpec {
                detail: format!("invalid clip header: {width} x {height}, core {core_edge}"),
            });
        }
        Ok(ClipFile {
            width,
            height,
            core_edge,
            rects,
        })
    }

    /// Writes the text format. A mut reference works as the writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(writer, "# lithohd clip v1")?;
        writeln!(
            writer,
            "clip {} {} {}",
            self.width, self.height, self.core_edge
        )?;
        for r in &self.rects {
            writeln!(writer, "rect {} {} {} {}", r.x0(), r.y0(), r.x1(), r.y1())?;
        }
        Ok(())
    }

    /// The clip window rectangle (anchored at the origin).
    pub fn window(&self) -> Rect {
        Rect::spanning(Point::new(0, 0), Point::new(self.width, self.height))
    }

    /// The centred core rectangle.
    pub fn core(&self) -> Rect {
        let x0 = (self.width - self.core_edge) / 2;
        let y0 = (self.height - self.core_edge) / 2;
        Rect::spanning(
            Point::new(x0, y0),
            Point::new(x0 + self.core_edge, y0 + self.core_edge),
        )
    }

    /// Rasterises the clip at the given pixel pitch.
    ///
    /// # Errors
    ///
    /// Propagates raster-construction failures (bad pitch, oversized).
    pub fn to_raster(&self, pitch: Coord) -> Result<Raster, GeomError> {
        let mut raster = Raster::zeros(self.window(), pitch)?;
        for r in &self.rects {
            raster.fill_rect(r, 1.0);
        }
        Ok(raster)
    }
}

/// Writes a raster as a binary PGM (P5) image, top row first, 8-bit
/// grayscale — viewable by anything that opens Netpbm.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_pgm<W: Write>(raster: &Raster, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "P5")?;
    writeln!(writer, "{} {}", raster.width(), raster.height())?;
    writeln!(writer, "255")?;
    // Raster row 0 is the bottom; images want the top row first.
    for row in (0..raster.height()).rev() {
        let line: Vec<u8> = (0..raster.width())
            .map(|col| (raster.at(row, col).clamp(0.0, 1.0) * 255.0).round() as u8)
            .collect();
        writer.write_all(&line)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClipFile {
        ClipFile {
            width: 1200,
            height: 1200,
            core_edge: 600,
            rects: vec![
                Rect::new(0, 150, 1200, 250).unwrap(),
                Rect::new(0, 640, 1200, 670).unwrap(),
            ],
        }
    }

    #[test]
    fn text_roundtrip() {
        let clip = sample();
        let mut buffer = Vec::new();
        clip.write(&mut buffer).unwrap();
        let back = ClipFile::read(buffer.as_slice()).unwrap();
        assert_eq!(clip, back);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# hello\n\nclip 100 100 50\n# body\nrect 0 0 10 10\n";
        let clip = ClipFile::read(text.as_bytes()).unwrap();
        assert_eq!(clip.rects.len(), 1);
        assert_eq!(clip.core(), Rect::new(25, 25, 75, 75).unwrap());
    }

    #[test]
    fn poly_directive_decomposes() {
        let text = "clip 100 100 50\npoly 0 0 40 0 40 10 10 10 10 30 0 30\n";
        let clip = ClipFile::read(text.as_bytes()).unwrap();
        // The L-shape decomposes into two rects.
        assert_eq!(clip.rects.len(), 2);
        let area: i128 = clip.rects.iter().map(Rect::area).sum();
        assert_eq!(area, 40 * 10 + 10 * 20);
    }

    #[test]
    fn rejects_bad_poly() {
        // Diagonal edge.
        let text = "clip 100 100 50\npoly 0 0 10 10 10 20 0 20\n";
        assert!(ClipFile::read(text.as_bytes()).is_err());
        // Odd coordinate count.
        let text = "clip 100 100 50\npoly 0 0 10 0 10 10 0\n";
        assert!(ClipFile::read(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(ClipFile::read("rect 0 0 10 10\n".as_bytes()).is_err()); // no header
        assert!(ClipFile::read("clip 100 100\n".as_bytes()).is_err()); // short header
        assert!(ClipFile::read("clip 100 100 50\nclip 100 100 50\n".as_bytes()).is_err());
        assert!(ClipFile::read("clip 100 100 50\nrect 10 10 0 0\n".as_bytes()).is_err());
        assert!(ClipFile::read("clip 100 100 50\nfrob 1 2 3\n".as_bytes()).is_err());
        assert!(ClipFile::read("clip 100 100 200\n".as_bytes()).is_err()); // core too big
        assert!(ClipFile::read("clip 100 100 50\nrect 0 0 x 10\n".as_bytes()).is_err());
    }

    #[test]
    fn raster_matches_geometry() {
        let clip = sample();
        let raster = clip.to_raster(10).unwrap();
        assert_eq!(raster.width(), 120);
        // 100 nm wire + 30 nm wire over a 1200 nm tall clip.
        let expected = (100.0 + 30.0) / 1200.0;
        assert!((raster.density() - expected).abs() < 1e-3);
    }

    #[test]
    fn pgm_has_correct_header_and_size() {
        let raster = sample().to_raster(10).unwrap();
        let mut buffer = Vec::new();
        write_pgm(&raster, &mut buffer).unwrap();
        let text = String::from_utf8_lossy(&buffer[..15]);
        assert!(text.starts_with("P5\n120 120\n255"));
        let header_len = b"P5\n120 120\n255\n".len();
        assert_eq!(buffer.len(), header_len + 120 * 120);
    }

    #[test]
    fn imported_clip_agrees_with_litho() {
        // A clip written by hand labels the same as the same geometry built
        // through the API — the exchange format is faithful.
        use hotspot_litho::{Label, LithoConfig, LithoSimulator};
        let text = "clip 1200 1200 600\nrect 0 585 1200 615\n";
        let clip = ClipFile::read(text.as_bytes()).unwrap();
        let config = LithoConfig::duv_28nm();
        let raster = clip.to_raster(config.pitch).unwrap();
        let sim = LithoSimulator::new(config);
        assert_eq!(sim.label(&raster, clip.core()), Label::Hotspot);
    }
}
