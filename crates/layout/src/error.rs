use std::fmt;

/// Error type for benchmark generation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LayoutError {
    /// A specification field was invalid.
    BadSpec {
        /// Description of the problem.
        detail: String,
    },
    /// The generator could not reach the requested label counts — the
    /// geometry parameters do not produce the required class at a workable
    /// rate under the lithography model.
    GenerationStalled {
        /// Hotspots produced so far.
        hotspots: usize,
        /// Non-hotspots produced so far.
        non_hotspots: usize,
        /// Candidate patterns tried.
        attempts: usize,
    },
    /// A geometry operation failed while synthesising a clip.
    Geometry(hotspot_geom::GeomError),
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::BadSpec { detail } => write!(f, "invalid benchmark spec: {detail}"),
            LayoutError::GenerationStalled {
                hotspots,
                non_hotspots,
                attempts,
            } => write!(
                f,
                "generation stalled after {attempts} attempts ({hotspots} hotspots, {non_hotspots} non-hotspots)"
            ),
            LayoutError::Geometry(e) => write!(f, "geometry error: {e}"),
        }
    }
}

impl std::error::Error for LayoutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LayoutError::Geometry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hotspot_geom::GeomError> for LayoutError {
    fn from(e: hotspot_geom::GeomError) -> Self {
        LayoutError::Geometry(e)
    }
}
