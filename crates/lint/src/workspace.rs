//! Workspace file discovery: which `.rs` files the default `check` scans.
//!
//! Scanned roots are `crates/`, `src/`, `tests/`, and `examples/` under the
//! workspace root. `vendor/` is excluded by design — those crates are
//! in-repo stand-ins for external dependencies and keep upstream API shapes
//! (including panicking ones); `target/` is build output; directories named
//! `fixtures` hold deliberately-bad inputs for the linter's own tests and
//! are only scanned when passed explicitly.

use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git", ".github"];

/// Roots (relative to the workspace root) that `check` walks by default.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Locates the workspace root: the nearest ancestor of `start` containing a
/// `Cargo.toml` with a `[workspace]` table.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(current) = dir {
        let manifest = current.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(current.to_path_buf());
            }
        }
        dir = current.parent();
    }
    None
}

/// All `.rs` files the default check scans, sorted for deterministic output.
pub fn discover(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for scan_root in SCAN_ROOTS {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, files)?;
            }
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovers_this_workspace_and_skips_vendor_and_fixtures() {
        let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        let files = discover(&root).expect("discovery succeeds");
        assert!(!files.is_empty());
        let as_strings: Vec<String> = files
            .iter()
            .map(|p| p.to_string_lossy().replace('\\', "/"))
            .collect();
        assert!(as_strings.iter().any(|p| p.ends_with("src/scanner.rs")));
        assert!(!as_strings.iter().any(|p| p.contains("/vendor/")));
        assert!(!as_strings.iter().any(|p| p.contains("/target/")));
        assert!(!as_strings.iter().any(|p| p.contains("/fixtures/")));
        // Sorted, so output ordering never depends on readdir order.
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
