//! A lossless Rust token scanner.
//!
//! The scanner splits a source file into contiguous byte ranges whose
//! concatenation reproduces the input exactly. It understands the lexical
//! shapes that matter for reliable pattern matching — line comments, nested
//! block comments, string/char/byte/raw-string literals, raw identifiers,
//! lifetimes, numbers — so rules never fire on text inside a comment or a
//! string. It is *not* a parser: it has no grammar, only lexemes.
//!
//! Unterminated literals and comments are tolerated (the token runs to end
//! of input); the scanner never panics on arbitrary bytes, a property pinned
//! by a proptest in `tests/scanner_props.rs`.

/// Lexical class of one [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// …` to end of line (the newline is not included).
    LineComment,
    /// `/* … */`, nesting-aware; unterminated comments run to end of input.
    BlockComment,
    /// `"…"`, `b"…"`, or `c"…"` with escapes.
    Str,
    /// `r"…"`, `r#"…"#`, `br#"…"#` with any number of hashes.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// `'label` / `'lifetime` (a quote not closing as a char literal).
    Lifetime,
    /// Identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// Numeric literal, including `0xff`, `1_000`, `2.5`, `1.5e3`, `3f64`.
    Number,
    /// Any single remaining character (operators, brackets, `#`, …).
    Punct,
}

/// One lexeme: a kind plus the byte range it covers in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte (inclusive).
    pub start: usize,
    /// Byte offset one past the last byte (exclusive).
    pub end: usize,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        &source[self.start..self.end]
    }

    /// Whether the token is comment or whitespace (no lexical significance).
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

struct Cursor<'a> {
    source: &'a str,
    /// Byte offset of the next unread character.
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn new(source: &'a str) -> Self {
        Cursor {
            source,
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.source[self.pos..].chars().next()
    }

    fn peek_at(&self, nth: usize) -> Option<char> {
        self.source[self.pos..].chars().nth(nth)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while matches!(self.peek(), Some(c) if pred(c)) {
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || !c.is_ascii()
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || !c.is_ascii()
}

/// Scans `source` into a lossless token stream: the concatenation of all
/// token texts equals the input byte-for-byte.
pub fn scan(source: &str) -> Vec<Token> {
    let mut cursor = Cursor::new(source);
    let mut tokens = Vec::new();
    while let Some(first) = cursor.peek() {
        let start = cursor.pos;
        let line = cursor.line;
        let kind = scan_one(&mut cursor, first);
        debug_assert!(cursor.pos > start, "scanner must always make progress");
        tokens.push(Token {
            kind,
            start,
            end: cursor.pos,
            line,
        });
    }
    tokens
}

fn scan_one(cursor: &mut Cursor<'_>, first: char) -> TokenKind {
    match first {
        c if c.is_whitespace() => {
            cursor.eat_while(char::is_whitespace);
            TokenKind::Whitespace
        }
        '/' => match cursor.peek_at(1) {
            Some('/') => {
                cursor.eat_while(|c| c != '\n');
                TokenKind::LineComment
            }
            Some('*') => {
                cursor.bump();
                cursor.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cursor.peek(), cursor.peek_at(1)) {
                        (Some('/'), Some('*')) => {
                            cursor.bump();
                            cursor.bump();
                            depth += 1;
                        }
                        (Some('*'), Some('/')) => {
                            cursor.bump();
                            cursor.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cursor.bump();
                        }
                        (None, _) => break, // unterminated: run to EOF
                    }
                }
                TokenKind::BlockComment
            }
            _ => {
                cursor.bump();
                TokenKind::Punct
            }
        },
        '"' => scan_string(cursor),
        '\'' => scan_quote(cursor),
        // Possible literal prefixes: r"", r#""#, b"", b'', br"", rb is not
        // a thing, c"" (C strings). A prefix not followed by its quote is an
        // ordinary identifier.
        'r' | 'b' | 'c' => scan_prefixed(cursor, first),
        c if is_ident_start(c) => {
            cursor.eat_while(is_ident_continue);
            TokenKind::Ident
        }
        c if c.is_ascii_digit() => scan_number(cursor),
        _ => {
            cursor.bump();
            TokenKind::Punct
        }
    }
}

/// A `"…"` body after any prefix: escapes skip the next character.
fn scan_string(cursor: &mut Cursor<'_>) -> TokenKind {
    cursor.bump(); // opening quote
    loop {
        match cursor.bump() {
            Some('\\') => {
                cursor.bump();
            }
            Some('"') | None => break,
            Some(_) => {}
        }
    }
    TokenKind::Str
}

/// A quote that is either a char literal or a lifetime/label.
fn scan_quote(cursor: &mut Cursor<'_>) -> TokenKind {
    cursor.bump(); // the quote
    match cursor.peek() {
        // `'\n'`, `'\''`, `'\u{1F600}'`: escape means char literal.
        Some('\\') => {
            cursor.bump();
            cursor.bump(); // the escaped character
                           // Multi-character escapes (`\u{…}`, `\x41`) run to the quote.
            cursor.eat_while(|c| c != '\'' && c != '\n');
            cursor.bump(); // closing quote (or newline on malformed input)
            TokenKind::Char
        }
        // `'a'`: one character then a closing quote.
        Some(c) if cursor.peek_at(1) == Some('\'') && c != '\'' => {
            cursor.bump();
            cursor.bump();
            TokenKind::Char
        }
        // `''` is malformed; treat the pair as an empty char literal.
        Some('\'') => {
            cursor.bump();
            TokenKind::Char
        }
        // `'label`, `'static`.
        Some(c) if is_ident_start(c) => {
            cursor.eat_while(is_ident_continue);
            TokenKind::Lifetime
        }
        _ => TokenKind::Lifetime,
    }
}

/// `r`/`b`/`c` that may prefix a literal, else an identifier.
fn scan_prefixed(cursor: &mut Cursor<'_>, first: char) -> TokenKind {
    // Count what follows the prefix without consuming.
    let rest: Vec<char> = {
        let mut it = cursor.source[cursor.pos..].chars();
        it.next(); // the prefix char itself
        it.take(2).collect()
    };
    match (first, rest.first().copied()) {
        // b'x' byte char.
        ('b', Some('\'')) => {
            cursor.bump(); // b
            scan_quote(cursor)
        }
        // b"…" / c"…" byte and C strings.
        ('b', Some('"')) | ('c', Some('"')) => {
            cursor.bump();
            scan_string(cursor)
        }
        // r"…" / r#…, br"…" / br#….
        ('r', Some('"')) | ('r', Some('#')) => scan_raw(cursor, 1),
        ('b', Some('r')) if matches!(rest.get(1), Some('"') | Some('#')) => scan_raw(cursor, 2),
        _ => {
            cursor.eat_while(is_ident_continue);
            TokenKind::Ident
        }
    }
}

/// Raw string after `prefix_len` prefix characters (`r` or `br`): counts the
/// opening hashes, then runs to a quote followed by that many hashes. A raw
/// *identifier* (`r#type`) has exactly one hash followed by an ident start,
/// not a quote, and is classified [`TokenKind::Ident`].
fn scan_raw(cursor: &mut Cursor<'_>, prefix_len: usize) -> TokenKind {
    for _ in 0..prefix_len {
        cursor.bump();
    }
    let mut hashes = 0usize;
    while cursor.peek() == Some('#') {
        cursor.bump();
        hashes += 1;
    }
    if cursor.peek() != Some('"') {
        // `r#type` raw identifier (or stray `r#`): lex as an identifier.
        cursor.eat_while(is_ident_continue);
        return TokenKind::Ident;
    }
    cursor.bump(); // opening quote
    'body: loop {
        match cursor.bump() {
            None => break 'body, // unterminated: run to EOF
            Some('"') => {
                let mut seen = 0usize;
                while seen < hashes {
                    if cursor.peek() == Some('#') {
                        cursor.bump();
                        seen += 1;
                    } else {
                        continue 'body; // not the closer; keep scanning
                    }
                }
                break 'body;
            }
            Some(_) => {}
        }
    }
    TokenKind::RawStr
}

/// A numeric literal. Handles `0x…`, `1_000u64`, `2.5`, `1.5e-3f32`. The
/// trailing-dot method call (`1.max(2)`) and range (`0..n`) forms keep the
/// dot out of the number.
fn scan_number(cursor: &mut Cursor<'_>) -> TokenKind {
    cursor.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
    // Fractional part only when the dot is followed by a digit (so `1..2`
    // and `1.max(2)` stay three tokens).
    if cursor.peek() == Some('.') && matches!(cursor.peek_at(1), Some(c) if c.is_ascii_digit()) {
        cursor.bump();
        cursor.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
        // Signed exponent: `1.5e-3` (an unsigned exponent was already
        // consumed by the alphanumeric run above, leaving us on the sign).
        if matches!(cursor.peek(), Some('+') | Some('-'))
            && preceding_is_exponent(cursor)
            && matches!(cursor.peek_at(1), Some(c) if c.is_ascii_digit())
        {
            cursor.bump();
            cursor.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
        }
    }
    TokenKind::Number
}

/// Whether the character just consumed was an exponent marker (`e`/`E`).
fn preceding_is_exponent(cursor: &Cursor<'_>) -> bool {
    cursor.source[..cursor.pos]
        .chars()
        .next_back()
        .is_some_and(|c| c == 'e' || c == 'E')
}

/// Whether a [`TokenKind::Number`] token's text reads as a float literal
/// (contains a fractional dot or an explicit `f32`/`f64` suffix).
pub fn number_is_float(text: &str) -> bool {
    text.contains('.') || text.ends_with("f32") || text.ends_with("f64")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<(TokenKind, &str)> {
        scan(source)
            .into_iter()
            .map(|t| (t.kind, t.text(source)))
            .collect()
    }

    fn round_trips(source: &str) {
        let joined: String = scan(source).iter().map(|t| t.text(source)).collect();
        assert_eq!(joined, source);
    }

    #[test]
    fn idents_and_punct() {
        let toks = kinds("let x = a.unwrap();");
        assert!(toks.contains(&(TokenKind::Ident, "unwrap")));
        assert!(toks.contains(&(TokenKind::Punct, ";")));
        round_trips("let x = a.unwrap();");
    }

    #[test]
    fn line_comment_hides_contents() {
        let src = "// thread_rng() \"quoted\" here\nlet x = 1;";
        let toks = kinds(src);
        assert_eq!(
            toks[0],
            (TokenKind::LineComment, "// thread_rng() \"quoted\" here")
        );
        assert!(!toks[1..]
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "thread_rng"));
        round_trips(src);
    }

    #[test]
    fn block_comments_nest() {
        let src = "/* outer /* inner unwrap() */ still comment */ x";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks[0].1.ends_with("still comment */"));
        assert_eq!(toks.last().unwrap(), &(TokenKind::Ident, "x"));
        round_trips(src);
    }

    #[test]
    fn strings_hide_contents_and_escapes() {
        let src = r#"let s = "call unwrap() \" and panic!";"#;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "unwrap"));
        round_trips(src);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r##"let s = r#"thread_rng() "inner" unwrap()"#;"##;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStr && t.contains("thread_rng")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "thread_rng"));
        round_trips(src);
    }

    #[test]
    fn raw_identifier_is_not_a_string() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "r#type")));
        round_trips("let r#type = 1;");
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks.contains(&(TokenKind::Lifetime, "'a")));
        assert!(toks.contains(&(TokenKind::Char, "'x'")));
        assert!(toks.contains(&(TokenKind::Char, "'\\n'")));
    }

    #[test]
    fn numbers_and_floats() {
        let toks = kinds("let a = 1.5e-3; let b = 0xff; let c = 1..10; let d = 2f64;");
        assert!(toks.contains(&(TokenKind::Number, "1.5e-3")));
        assert!(toks.contains(&(TokenKind::Number, "0xff")));
        assert!(toks.contains(&(TokenKind::Number, "1")));
        assert!(toks.contains(&(TokenKind::Number, "10")));
        assert!(toks.contains(&(TokenKind::Number, "2f64")));
        assert!(number_is_float("1.5e-3"));
        assert!(number_is_float("2f64"));
        assert!(!number_is_float("0xff"));
        round_trips("let a = 1.5e-3; let b = 0xff; let c = 1..10;");
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"bytes unwrap()\"; let b = b'x'; let c = br#\"raw unwrap()\"#;";
        let toks = kinds(src);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "unwrap"));
        assert!(toks.contains(&(TokenKind::Char, "b'x'")));
        round_trips(src);
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"open", "/* open", "r#\"open", "'", "b\"", "r#"] {
            round_trips(src);
        }
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\nb\n\nc";
        let toks: Vec<Token> = scan(src).into_iter().filter(|t| !t.is_trivia()).collect();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn multibyte_characters_keep_boundaries() {
        let src = "let café = \"héllo\"; // commenté\n'é'";
        round_trips(src);
        let toks = kinds(src);
        assert!(toks.contains(&(TokenKind::Ident, "café")));
        assert!(toks.contains(&(TokenKind::Char, "'é'")));
    }
}
