//! The rule engine: path scoping, item-tree-based test-region detection,
//! inline suppressions, and the rule catalog — the v1 token rules
//! (determinism, panic-safety, float hygiene, telemetry-name integrity,
//! `forbid(unsafe_code)` presence) plus the v2 syntax-aware families built
//! on [`crate::tree`]: concurrency (the `conc` pass: lock-order,
//! detached-spawn, unordered-merge) and canonical-purity (wall-clock-shaped
//! telemetry names must be withheld by the registry exported from
//! `telemetry::names`).

use crate::conc;
use crate::scanner::{self, Token, TokenKind};
use crate::tree::ItemTree;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// How bad a finding is. Both severities gate CI when the finding is new
/// (absent from the baseline); severity is for triage, not for exemption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Breaks a reproducibility or integrity invariant.
    Error,
    /// Undermines robustness; fix or suppress with a reason.
    Warning,
}

impl Severity {
    /// Lower-case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// Static description of one rule, driving `explain` and the catalog table.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable kebab-case rule name (used in suppressions and baselines).
    pub name: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line summary.
    pub summary: &'static str,
    /// Longer `explain` text: what it catches, why, and how to fix it.
    pub explain: &'static str,
}

/// The v1 rule catalog.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "determinism-rng",
        severity: Severity::Error,
        summary: "ambient randomness (thread_rng/from_entropy/rand::random) is banned everywhere",
        explain: "The paper's Accuracy (Eq. 1) and Litho# (Eq. 2) are only citable because every \
                  run is a pure function of its seeds. `thread_rng()`, `SeedableRng::from_entropy()` \
                  and `rand::random()` read operating-system entropy, so two runs with identical \
                  seeds diverge. Thread a seeded `ChaCha8Rng` (or a seed derived from one) instead. \
                  This rule applies to every scanned file, tests included: a nondeterministic test \
                  is a flaky test.",
    },
    RuleInfo {
        name: "determinism-clock",
        severity: Severity::Error,
        summary: "wall-clock reads (Instant::now/SystemTime::now) outside telemetry and Clock impls",
        explain: "Wall-clock reads in library code leak nondeterminism into results and journals. \
                  Time belongs in two places only: the telemetry crate (which owns timing as an \
                  explicitly non-deterministic concern, redacted by canonical journals) and the \
                  injectable `hotspot_litho::Clock` implementations (so tests substitute a \
                  `VirtualClock`). Elsewhere, accept a `Clock` or move the measurement behind \
                  telemetry; a site whose timing provably never reaches results may carry a \
                  reasoned `// lithohd-lint: allow(determinism-clock) — why` suppression.",
    },
    RuleInfo {
        name: "hash-order",
        severity: Severity::Warning,
        summary: "HashMap/HashSet in library code: iteration order is nondeterministic",
        explain: "`std::collections::HashMap`/`HashSet` iterate in randomized order (SipHash keys \
                  are seeded per process), so any iteration that reaches selection results, \
                  metrics, or journal output breaks bit-identical reproduction. Use `BTreeMap`/\
                  `BTreeSet`, or sort before iterating. Lookup-only maps are still flagged because \
                  nothing stops a later change from iterating them; switch anyway (the workspace's \
                  maps are small) or suppress with a reason.",
    },
    RuleInfo {
        name: "panic-safety",
        severity: Severity::Warning,
        summary: "unwrap/expect/panic!/unreachable!/todo! in library non-test code",
        explain: "The fault-tolerance layer (retry, quorum, degradation-aware sampling) promises \
                  that oracle faults degrade runs instead of killing them — a promise a stray \
                  `unwrap()` on a hot path silently revokes. In library crates, propagate a typed \
                  error (`OracleError`, `ActiveError`, …) or handle the case. Tests, examples, \
                  benches and binaries may panic freely (a panic there is a failed test or a CLI \
                  abort, which is the intended behavior). Grandfathered sites live in the \
                  baseline; new ones need a fix or a reasoned suppression.",
    },
    RuleInfo {
        name: "float-eq",
        severity: Severity::Warning,
        summary: "== / != against a float literal",
        explain: "Exact float comparison is almost never what a numerical pipeline wants: \
                  accumulation order, FMA contraction, or a changed optimization level flip the \
                  result. Compare against an epsilon, use `total_cmp`, or restructure. The lexical \
                  check flags comparisons where either operand is a float literal (`x == 1.0`); \
                  comparisons between float variables are out of lexical reach and remain the \
                  reviewer's job.",
    },
    RuleInfo {
        name: "telemetry-names",
        severity: Severity::Error,
        summary: "string-literal metric/span name at a telemetry call site",
        explain: "Metric and span names are an API: journal parsers, the Prometheus exporter, \
                  `lithohd-report`, and CI gates all match on them. A name spelled inline at the \
                  call site (`counter(\"litho.oracle.calls\")`) can drift from its consumers \
                  without any compiler help. Every name passed to `counter`/`gauge`/`histogram`/\
                  `span` in library code must be a constant exported from `telemetry::names`; add \
                  missing names there (and to `names::ALL`) rather than suppressing.",
    },
    RuleInfo {
        name: "telemetry-unused-name",
        severity: Severity::Warning,
        summary: "a telemetry::names constant no call site references",
        explain: "A registered name nothing emits is dead weight at best and a stale contract at \
                  worst (a dashboard or gate may still be watching for it). Remove the constant \
                  or wire the call site back up.",
    },
    RuleInfo {
        name: "forbid-unsafe",
        severity: Severity::Error,
        summary: "library crate root missing #![forbid(unsafe_code)]",
        explain: "The workspace contains no `unsafe` today; `#![forbid(unsafe_code)]` at every \
                  crate root turns that observation into a compiler-checked invariant that a \
                  future PR cannot silently regress (forbid, unlike deny, cannot be overridden \
                  by an inner allow).",
    },
    RuleInfo {
        name: "lock-order",
        severity: Severity::Error,
        summary: "cyclic Mutex/RwLock acquisition order within a crate",
        explain: "Two functions that acquire the same pair of locks in opposite orders can \
                  deadlock the moment they run concurrently — and the shard coordinator, the \
                  metrics registry, and the journal writer all run concurrently. The rule \
                  reconstructs each crate's lock acquisition graph lexically (a let-bound guard \
                  is held until its block closes, a temporary until its statement ends) and \
                  flags every cycle. Fix by choosing one global acquisition order, or narrow a \
                  guard's scope so the overlap disappears. Heuristic false positives (e.g. locks \
                  proven disjoint by construction) take a reasoned suppression at the reported \
                  acquisition site.",
    },
    RuleInfo {
        name: "detached-spawn",
        severity: Severity::Warning,
        summary: "thread::spawn handle neither joined in-function nor stored",
        explain: "A discarded `JoinHandle` means the spawned thread's panics vanish and nothing \
                  ever waits for its work — the exact failure mode the shard coordinator's \
                  dead-worker recovery exists to prevent. Join the handle, store it for a later \
                  join, or use scoped threads. A genuinely fire-and-forget thread (a daemon \
                  whose lifetime is the process) takes a reasoned suppression.",
    },
    RuleInfo {
        name: "unordered-merge",
        severity: Severity::Warning,
        summary: "channel results accumulated in arrival order without sorting",
        explain: "Worker completion order depends on scheduling, so folding channel results in \
                  arrival order makes the reduction nondeterministic — the bug class the \
                  N=1-vs-N=4 canonical-journal CI jobs catch dynamically, caught here \
                  statically. Tag results with their shard/clip ordinal and sort before \
                  reducing (the shard coordinator's merge does exactly this), or accumulate \
                  into an ordered container keyed by ordinal.",
    },
    RuleInfo {
        name: "canonical-purity",
        severity: Severity::Error,
        summary: "wall-clock-shaped telemetry name not withheld in canonical mode",
        explain: "`--canonical-journal` promises byte-identical journals for identically seeded \
                  runs; any metric or field whose value comes from a wall clock breaks that \
                  promise. `telemetry::names` exports the machine-readable withhold registry \
                  (CANONICAL_WITHHELD_* lists) that `JsonlSink` enforces at run time; this rule \
                  is its static twin, verifying that every registered or call-site name shaped \
                  like a duration (`.seconds` suffix, `elapsed_*`, `duration_*`) is covered by \
                  a withhold prefix or suffix. Fix by extending the withhold lists in \
                  `telemetry::names`, not by renaming the metric to dodge the shape check.",
    },
    RuleInfo {
        name: "suppression-reason",
        severity: Severity::Error,
        summary: "a lithohd-lint suppression without a reason",
        explain: "`// lithohd-lint: allow(rule) — reason` trades a checked invariant for a \
                  documented judgement call; without the reason it is just an unchecked \
                  invariant. Reasonless suppressions always fail the gate and are never \
                  grandfathered by a baseline.",
    },
    RuleInfo {
        name: "unused-suppression",
        severity: Severity::Warning,
        summary: "a suppression that matched no finding",
        explain: "The code it excused was fixed or moved; delete the comment so the next reader \
                  does not assume the hazard is still there.",
    },
];

/// Looks up a rule's static description.
pub fn rule_info(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

pub(crate) fn severity_of(rule: &str) -> Severity {
    rule_info(rule).map_or(Severity::Warning, |r| r.severity)
}

/// One reported violation (or suppressed would-be violation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Rule name from the catalog.
    pub rule: String,
    /// Severity at report time.
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Human message.
    pub message: String,
    /// The trimmed source line (also the baseline key).
    pub excerpt: String,
    /// The suppression reason when an inline allow matched this finding.
    pub suppression_reason: Option<String>,
}

/// Outcome of scanning a set of files.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Active findings (not suppressed), sorted by path/line/rule.
    pub findings: Vec<Finding>,
    /// Findings silenced by a reasoned inline suppression.
    pub suppressed: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// How strictly a file is scanned, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library source: every rule applies outside `#[cfg(test)]` regions.
    Library,
    /// Tests, benches, examples, and `src/bin/` binaries: only the
    /// everywhere-rules (`determinism-rng`) apply.
    Relaxed,
}

/// Classifies a workspace-relative path.
pub fn classify(rel_path: &str) -> FileClass {
    let relaxed = ["tests", "benches", "examples", "bin"];
    if rel_path
        .split('/')
        .any(|component| relaxed.contains(&component))
    {
        FileClass::Relaxed
    } else {
        FileClass::Library
    }
}

/// An inline `// lithohd-lint: allow(rule, …) — reason` comment.
#[derive(Debug, Clone)]
struct Suppression {
    rules: Vec<String>,
    reason: Option<String>,
    line: u32,
    used: std::cell::Cell<bool>,
}

const SUPPRESSION_MARKER: &str = "lithohd-lint:";

/// Doc comments never carry suppressions — they are rendered documentation,
/// and examples of the suppression syntax inside them must not take effect.
fn is_doc_comment(comment: &str) -> bool {
    comment.starts_with("///")
        || comment.starts_with("//!")
        || comment.starts_with("/**")
        || comment.starts_with("/*!")
}

fn parse_suppression(comment: &str, line: u32) -> Option<Suppression> {
    if is_doc_comment(comment) {
        return None;
    }
    let rest = comment.split(SUPPRESSION_MARKER).nth(1)?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let tail = rest[close + 1..]
        .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
        .trim();
    let reason = if tail.is_empty() {
        None
    } else {
        Some(tail.to_string())
    };
    Some(Suppression {
        rules,
        reason,
        line,
        used: std::cell::Cell::new(false),
    })
}

/// Everything the per-file pass needs in one place.
pub(crate) struct FileContext<'a> {
    pub(crate) rel_path: &'a str,
    pub(crate) source: &'a str,
    pub(crate) tokens: &'a [Token],
    /// Indices into `tokens` of non-trivia tokens.
    pub(crate) sig: Vec<usize>,
    pub(crate) class: FileClass,
    /// The brace-matched item tree built over the token stream.
    pub(crate) tree: ItemTree,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` items, derived
    /// from the tree.
    pub(crate) test_regions: Vec<(usize, usize)>,
    suppressions: Vec<Suppression>,
}

impl<'a> FileContext<'a> {
    fn new(rel_path: &'a str, source: &'a str, tokens: &'a [Token], class: FileClass) -> Self {
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_trivia())
            .map(|(i, _)| i)
            .collect();
        let tree = ItemTree::build(source, tokens, &sig);
        let test_regions = tree.test_regions();
        let suppressions = tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .filter_map(|t| parse_suppression(t.text(source), t.line))
            .collect();
        FileContext {
            rel_path,
            source,
            tokens,
            sig,
            class,
            tree,
            test_regions,
            suppressions,
        }
    }

    fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| (start..end).contains(&offset))
    }

    /// The significant token at stream position `i`, if any.
    pub(crate) fn sig_token(&self, i: usize) -> Option<&Token> {
        self.sig.get(i).map(|&idx| &self.tokens[idx])
    }

    pub(crate) fn sig_text(&self, i: usize) -> &str {
        self.sig_token(i).map_or("", |t| t.text(self.source))
    }

    /// Whether significant tokens `i` and `i + 1` touch in the source (no
    /// trivia between them) — used to recognise two-character operators.
    fn sig_adjacent(&self, i: usize) -> bool {
        match (self.sig_token(i), self.sig_token(i + 1)) {
            (Some(a), Some(b)) => a.end == b.start,
            _ => false,
        }
    }

    pub(crate) fn excerpt_at(&self, line: u32) -> String {
        self.source
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .unwrap_or("")
            .trim()
            .to_string()
    }

    pub(crate) fn finding(&self, rule: &str, token: &Token, message: String) -> Finding {
        Finding {
            rule: rule.to_string(),
            severity: severity_of(rule),
            path: self.rel_path.to_string(),
            line: token.line,
            message,
            excerpt: self.excerpt_at(token.line),
            suppression_reason: None,
        }
    }
}

/// The telemetry name registry parsed from `telemetry/src/names.rs`:
/// constant identifier → string value, plus the `&[&str]` list constants
/// that make up the canonical-mode withhold registry.
#[derive(Debug, Clone, Default)]
pub struct NameRegistry {
    /// const ident → (string value, 1-based line in names.rs).
    pub constants: BTreeMap<String, (String, u32)>,
    /// `&[&str]` const ident → (string values, 1-based line in names.rs).
    pub lists: BTreeMap<String, (Vec<String>, u32)>,
    /// Workspace-relative path of the registry file.
    pub path: String,
}

/// List-constant names making up the canonical-mode withhold registry.
const WITHHELD_PREFIXES_CONST: &str = "CANONICAL_WITHHELD_METRIC_PREFIXES";
const WITHHELD_SUFFIXES_CONST: &str = "CANONICAL_WITHHELD_METRIC_SUFFIXES";

impl NameRegistry {
    /// Parses `pub const IDENT: &str = "value";` and
    /// `pub const IDENT: &[&str] = &["a", "b"];` items from source text.
    pub fn parse(rel_path: &str, source: &str) -> Self {
        let tokens = scanner::scan(source);
        let sig: Vec<&Token> = tokens.iter().filter(|t| !t.is_trivia()).collect();
        let text = |t: &Token| t.text(source);
        let mut constants = BTreeMap::new();
        let mut lists = BTreeMap::new();
        let mut i = 0;
        while i < sig.len() {
            if text(sig[i]) != "const" || i + 1 >= sig.len() || sig[i + 1].kind != TokenKind::Ident
            {
                i += 1;
                continue;
            }
            let ident = text(sig[i + 1]).to_string();
            let line = sig[i + 1].line;
            // const IDENT : & str = "…"
            let shape = |from: usize, expect: &[&str]| {
                expect
                    .iter()
                    .enumerate()
                    .all(|(k, want)| sig.get(from + k).is_some_and(|t| text(t) == *want))
            };
            if shape(i + 2, &[":", "&", "str", "="])
                && sig.get(i + 6).is_some_and(|t| t.kind == TokenKind::Str)
            {
                let value = text(sig[i + 6]).trim_matches('"').to_string();
                constants.insert(ident, (value, line));
                i += 7;
                continue;
            }
            // const IDENT : & [ & str ] = & [ "a" , "b" , ] ;
            if shape(i + 2, &[":", "&", "[", "&", "str", "]", "=", "&", "["]) {
                let mut values = Vec::new();
                let mut j = i + 11;
                while j < sig.len() && text(sig[j]) != "]" {
                    if sig[j].kind == TokenKind::Str {
                        values.push(text(sig[j]).trim_matches('"').to_string());
                    }
                    j += 1;
                }
                lists.insert(ident, (values, line));
                i = j + 1;
                continue;
            }
            i += 2;
        }
        NameRegistry {
            constants,
            lists,
            path: rel_path.to_string(),
        }
    }

    /// The constant name registered for a string value, if any.
    pub fn constant_for(&self, value: &str) -> Option<&str> {
        self.constants
            .iter()
            .find(|(_, (v, _))| v == value)
            .map(|(k, _)| k.as_str())
    }

    fn list(&self, ident: &str) -> &[String] {
        self.lists.get(ident).map_or(&[], |(values, _)| values)
    }

    /// Whether the parsed withhold registry covers `name`: it matches a
    /// `CANONICAL_WITHHELD_METRIC_PREFIXES` prefix or a
    /// `CANONICAL_WITHHELD_METRIC_SUFFIXES` suffix. The static mirror of
    /// `telemetry::names::is_withheld_canonical_metric`.
    pub fn is_withheld_metric(&self, name: &str) -> bool {
        self.list(WITHHELD_PREFIXES_CONST)
            .iter()
            .any(|prefix| name.starts_with(prefix))
            || self
                .list(WITHHELD_SUFFIXES_CONST)
                .iter()
                .any(|suffix| name.ends_with(suffix))
    }
}

/// Whether a telemetry name is shaped like a wall-clock measurement: it
/// ends in `.seconds`, or its final dotted segment starts with `elapsed`
/// or `duration`. Such names must be withheld in canonical mode.
pub fn wall_clock_shaped(name: &str) -> bool {
    let last = name.rsplit('.').next().unwrap_or(name);
    name.ends_with(".seconds") || last.starts_with("elapsed") || last.starts_with("duration")
}

/// One file's input to [`check_files`].
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// File contents.
    pub source: String,
    /// Scanning strictness.
    pub class: FileClass,
}

/// Paths (workspace-relative) whose crate roots must carry
/// `#![forbid(unsafe_code)]`: `src/lib.rs` at the workspace root or under
/// `crates/<name>/`.
fn is_crate_root(rel_path: &str) -> bool {
    rel_path == "src/lib.rs"
        || (rel_path.starts_with("crates/")
            && rel_path.ends_with("/src/lib.rs")
            && rel_path.matches('/').count() == 3)
}

/// Runs every rule over the given files, resolving suppressions, and —
/// when a [`NameRegistry`] is supplied — checking telemetry-name integrity
/// across the whole set.
pub fn check_files(files: &[SourceFile], registry: Option<&NameRegistry>) -> CheckReport {
    let mut raw: Vec<Finding> = Vec::new();
    let mut contexts_meta: Vec<(Vec<Suppression>, String)> = Vec::new();
    let mut used_constants: BTreeSet<String> = BTreeSet::new();
    let mut lock_edges: Vec<conc::LockEdge> = Vec::new();

    for file in files {
        let tokens = scanner::scan(&file.source);
        let ctx = FileContext::new(&file.rel_path, &file.source, &tokens, file.class);
        scan_file(&ctx, registry, &mut raw, &mut used_constants);
        // Concurrency rules run on library code only; their lock edges are
        // resolved into per-crate cycles once every file is scanned.
        if ctx.class == FileClass::Library {
            let mut conc_scan = conc::analyze(&ctx);
            raw.append(&mut conc_scan.findings);
            lock_edges.append(&mut conc_scan.edges);
        }
        // Resolve suppressions against this file's raw findings now, while
        // the context is alive.
        contexts_meta.push((ctx.suppressions, file.rel_path.clone()));
    }

    raw.extend(conc::lock_cycle_findings(&lock_edges));

    // Canonical-purity over the registry itself: every registered name
    // shaped like a wall-clock measurement must be covered by the withhold
    // lists, exactly as the canonical JsonlSink would withhold it.
    if let Some(registry) = registry {
        for (constant, (value, line)) in &registry.constants {
            if wall_clock_shaped(value) && !registry.is_withheld_metric(value) {
                raw.push(Finding {
                    rule: "canonical-purity".to_string(),
                    severity: severity_of("canonical-purity"),
                    path: registry.path.clone(),
                    line: *line,
                    message: format!(
                        "registered name `{constant}` (\"{value}\") is wall-clock-shaped but \
                         no CANONICAL_WITHHELD_METRIC_* entry withholds it in canonical mode"
                    ),
                    excerpt: format!("pub const {constant}: &str = \"{value}\";"),
                    suppression_reason: None,
                });
            }
        }
    }

    // Telemetry-unused-name: registry constants nothing referenced.
    if let Some(registry) = registry {
        for (constant, (value, line)) in &registry.constants {
            if !used_constants.contains(constant) {
                raw.push(Finding {
                    rule: "telemetry-unused-name".to_string(),
                    severity: severity_of("telemetry-unused-name"),
                    path: registry.path.clone(),
                    line: *line,
                    message: format!(
                        "registered name `{constant}` (\"{value}\") has no call site referencing it"
                    ),
                    excerpt: format!("pub const {constant}: &str = \"{value}\";"),
                    suppression_reason: None,
                });
            }
        }
    }

    // Apply suppressions: an allow on line L silences matching findings on
    // line L (trailing comment) or L + 1 (comment above the code).
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for mut finding in raw {
        let matched = contexts_meta
            .iter()
            .filter(|(_, path)| *path == finding.path)
            .flat_map(|(sups, _)| sups.iter())
            .find(|s| {
                (s.line == finding.line || s.line + 1 == finding.line)
                    && s.rules.iter().any(|r| r == &finding.rule)
            });
        match matched {
            Some(suppression) => {
                suppression.used.set(true);
                match &suppression.reason {
                    Some(reason) => {
                        finding.suppression_reason = Some(reason.clone());
                        suppressed.push(finding);
                    }
                    None => {
                        // Reasonless: the suppression itself is the finding;
                        // the original violation stays active too.
                        findings.push(finding);
                    }
                }
            }
            None => findings.push(finding),
        }
    }

    // Suppression meta-findings.
    for (sups, path) in &contexts_meta {
        for suppression in sups {
            if suppression.reason.is_none() {
                findings.push(Finding {
                    rule: "suppression-reason".to_string(),
                    severity: severity_of("suppression-reason"),
                    path: path.clone(),
                    line: suppression.line,
                    message: format!(
                        "suppression of {} lacks a reason (write `// lithohd-lint: \
                         allow({}) — why`)",
                        suppression.rules.join(", "),
                        suppression.rules.join(", "),
                    ),
                    excerpt: String::new(),
                    suppression_reason: None,
                });
            } else if !suppression.used.get() {
                findings.push(Finding {
                    rule: "unused-suppression".to_string(),
                    severity: severity_of("unused-suppression"),
                    path: path.clone(),
                    line: suppression.line,
                    message: format!(
                        "suppression of {} matched no finding; delete it",
                        suppression.rules.join(", ")
                    ),
                    excerpt: String::new(),
                    suppression_reason: None,
                });
            }
        }
    }

    findings.sort_by(|a, b| {
        (&a.path, a.line, &a.rule, &a.message).cmp(&(&b.path, b.line, &b.rule, &b.message))
    });
    suppressed.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    CheckReport {
        findings,
        suppressed,
        files_scanned: files.len(),
    }
}

/// Runs the per-file rules, pushing raw findings and recording which
/// registry constants the file references.
fn scan_file(
    ctx: &FileContext<'_>,
    registry: Option<&NameRegistry>,
    out: &mut Vec<Finding>,
    used_constants: &mut BTreeSet<String>,
) {
    let strict = ctx.class == FileClass::Library;
    let in_telemetry = ctx.rel_path.starts_with("crates/telemetry/");
    let is_registry_file = registry.is_some_and(|r| r.path == ctx.rel_path);

    // forbid-unsafe: crate roots must carry the attribute.
    if is_crate_root(ctx.rel_path) {
        let has_forbid = ctx.sig.iter().enumerate().any(|(i, _)| {
            ctx.sig_text(i) == "#"
                && ctx.sig_text(i + 1) == "!"
                && ctx.sig_text(i + 2) == "["
                && ctx.sig_text(i + 3) == "forbid"
                && ctx.sig_text(i + 4) == "("
                && ctx.sig_text(i + 5) == "unsafe_code"
        });
        if !has_forbid {
            out.push(Finding {
                rule: "forbid-unsafe".to_string(),
                severity: severity_of("forbid-unsafe"),
                path: ctx.rel_path.to_string(),
                line: 1,
                message: "crate root lacks #![forbid(unsafe_code)]".to_string(),
                excerpt: String::new(),
                suppression_reason: None,
            });
        }
    }

    for i in 0..ctx.sig.len() {
        let token = &ctx.tokens[ctx.sig[i]];
        let text = token.text(ctx.source);
        let in_test = ctx.in_test_region(token.start);

        if registry.is_some() && token.kind == TokenKind::Ident {
            if let Some(registry) = registry {
                if !is_registry_file && registry.constants.contains_key(text) {
                    used_constants.insert(text.to_string());
                }
            }
        }

        // determinism-rng: banned everywhere, tests included.
        if token.kind == TokenKind::Ident {
            match text {
                "thread_rng" | "from_entropy" => {
                    out.push(ctx.finding(
                        "determinism-rng",
                        token,
                        format!("`{text}` draws OS entropy; thread a seeded RNG instead"),
                    ));
                }
                "random"
                    if ctx.sig_text(i.wrapping_sub(1)) == ":"
                        && ctx.sig_text(i.wrapping_sub(2)) == ":"
                        && ctx.sig_text(i.wrapping_sub(3)) == "rand" =>
                {
                    out.push(ctx.finding(
                        "determinism-rng",
                        token,
                        "`rand::random` draws OS entropy; thread a seeded RNG instead".to_string(),
                    ));
                }
                _ => {}
            }
        }

        // The remaining rules only run on strict (library) non-test code.
        if !strict || in_test {
            continue;
        }

        // determinism-clock.
        if token.kind == TokenKind::Ident
            && text == "now"
            && ctx.sig_text(i.wrapping_sub(1)) == ":"
            && ctx.sig_text(i.wrapping_sub(2)) == ":"
            && matches!(ctx.sig_text(i.wrapping_sub(3)), "Instant" | "SystemTime")
            && !in_telemetry
        {
            let source_type = ctx.sig_text(i - 3).to_string();
            out.push(ctx.finding(
                "determinism-clock",
                token,
                format!(
                    "`{source_type}::now()` outside telemetry/Clock impls; inject a Clock or \
                     move timing behind telemetry"
                ),
            ));
        }

        // hash-order.
        if token.kind == TokenKind::Ident && matches!(text, "HashMap" | "HashSet") {
            let ordered = if text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            out.push(ctx.finding(
                "hash-order",
                token,
                format!("`{text}` iteration order is nondeterministic; use `{ordered}` or sort"),
            ));
        }

        // panic-safety.
        if token.kind == TokenKind::Ident {
            let followed_by = |s: &str| ctx.sig_text(i + 1) == s;
            let preceded_by_dot = ctx.sig_text(i.wrapping_sub(1)) == "." && i > 0;
            match text {
                "unwrap" | "expect" if preceded_by_dot && followed_by("(") => {
                    out.push(ctx.finding(
                        "panic-safety",
                        token,
                        format!("`.{text}()` in library code; propagate a typed error instead"),
                    ));
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if followed_by("!") && ctx.sig_adjacent(i) =>
                {
                    out.push(ctx.finding(
                        "panic-safety",
                        token,
                        format!("`{text}!` in library code; return an error instead"),
                    ));
                }
                _ => {}
            }
        }

        // float-eq: `==` or `!=` with a float literal on either side.
        if (text == "=" && ctx.sig_text(i + 1) == "=" && ctx.sig_adjacent(i))
            || (text == "!" && ctx.sig_text(i + 1) == "=" && ctx.sig_adjacent(i))
        {
            // Skip the middle of `===`-like runs and `<=`/`>=`/`..=`.
            let prev = ctx.sig_text(i.wrapping_sub(1));
            if i > 0 && matches!(prev, "=" | "<" | ">" | "!" | ".") {
                continue;
            }
            let before_is_float = i > 0
                && ctx.sig_token(i - 1).is_some_and(|t| {
                    t.kind == TokenKind::Number && scanner::number_is_float(t.text(ctx.source))
                });
            let after_is_float = ctx.sig_token(i + 2).is_some_and(|t| {
                t.kind == TokenKind::Number && scanner::number_is_float(t.text(ctx.source))
            });
            if before_is_float || after_is_float {
                let op = if text == "=" { "==" } else { "!=" };
                out.push(ctx.finding(
                    "float-eq",
                    token,
                    format!("`{op}` against a float literal; compare with a tolerance"),
                ));
            }
        }

        // telemetry-names: string literal fed straight to a metric/span API.
        if token.kind == TokenKind::Ident
            && matches!(text, "counter" | "gauge" | "histogram" | "span")
            && ctx.sig_text(i + 1) == "("
            && !is_registry_file
        {
            if let Some(arg) = ctx.sig_token(i + 2) {
                if arg.kind == TokenKind::Str {
                    let value = arg.text(ctx.source).trim_matches('"').to_string();
                    let message = match registry.and_then(|r| r.constant_for(&value)) {
                        Some(constant) => format!(
                            "literal telemetry name \"{value}\"; use telemetry::names::{constant}"
                        ),
                        None => format!(
                            "literal telemetry name \"{value}\" is not registered in \
                             telemetry::names; add a constant and use it"
                        ),
                    };
                    out.push(ctx.finding("telemetry-names", token, message));
                }
            }
        }

        // canonical-purity at call sites: a literal metric name shaped like
        // a wall-clock measurement must be provably withheld by the parsed
        // withhold registry (span names are not metric names; the derived
        // `span.<name>.seconds` histogram is withheld by suffix).
        if token.kind == TokenKind::Ident
            && matches!(text, "counter" | "gauge" | "histogram")
            && ctx.sig_text(i + 1) == "("
            && !is_registry_file
        {
            if let Some(arg) = ctx.sig_token(i + 2) {
                if arg.kind == TokenKind::Str {
                    let value = arg.text(ctx.source).trim_matches('"').to_string();
                    let withheld = registry.map(|r| r.is_withheld_metric(&value));
                    if wall_clock_shaped(&value) && withheld != Some(true) {
                        let why = match withheld {
                            Some(false) => {
                                "no CANONICAL_WITHHELD_METRIC_* entry withholds it in \
                                 canonical mode"
                            }
                            _ => {
                                "no withhold registry is in scope to prove it withheld in \
                                 canonical mode"
                            }
                        };
                        out.push(ctx.finding(
                            "canonical-purity",
                            token,
                            format!("wall-clock-shaped metric name \"{value}\": {why}"),
                        ));
                    }
                }
            }
        }
    }
}

/// Reads and classifies files on disk, then runs [`check_files`].
///
/// `root` anchors relative-path computation; `paths` are the files to scan.
/// When `strict_override` is set, every file is scanned as library code
/// regardless of its path (used for explicitly passed fixture files).
pub fn check_on_disk(
    root: &Path,
    paths: &[std::path::PathBuf],
    registry: Option<&NameRegistry>,
    strict_override: bool,
) -> std::io::Result<CheckReport> {
    let mut files = Vec::new();
    for path in paths {
        let source = std::fs::read_to_string(path)?;
        let rel_path = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let class = if strict_override {
            FileClass::Library
        } else {
            classify(&rel_path)
        };
        files.push(SourceFile {
            rel_path,
            source,
            class,
        });
    }
    Ok(check_files(&files, registry))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_file(rel_path: &str, source: &str) -> SourceFile {
        SourceFile {
            rel_path: rel_path.to_string(),
            source: source.to_string(),
            class: FileClass::Library,
        }
    }

    fn rules_of(report: &CheckReport) -> Vec<&str> {
        report.findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn catalog_names_are_unique_and_explainable() {
        let mut names: Vec<&str> = RULES.iter().map(|r| r.name).collect();
        names.sort_unstable();
        let len_before = names.len();
        names.dedup();
        assert_eq!(names.len(), len_before, "duplicate rule name in catalog");
        for rule in RULES {
            assert!(!rule.explain.is_empty());
            assert!(rule_info(rule.name).is_some());
        }
    }

    #[test]
    fn flags_thread_rng_even_in_tests_dir() {
        let file = SourceFile {
            rel_path: "crates/x/tests/t.rs".to_string(),
            source: "fn f() { let mut r = thread_rng(); }".to_string(),
            class: classify("crates/x/tests/t.rs"),
        };
        let report = check_files(&[file], None);
        assert_eq!(rules_of(&report), vec!["determinism-rng"]);
    }

    #[test]
    fn relaxed_paths_skip_panic_safety() {
        let file = SourceFile {
            rel_path: "crates/x/examples/e.rs".to_string(),
            source: "fn main() { foo().unwrap(); }".to_string(),
            class: classify("crates/x/examples/e.rs"),
        };
        assert!(check_files(&[file], None).findings.is_empty());
    }

    #[test]
    fn flags_unwrap_expect_and_panic_macros_in_library_code() {
        let report = check_files(
            &[lib_file(
                "crates/x/src/a.rs",
                "fn f() { a.unwrap(); b.expect(\"msg\"); panic!(\"boom\"); todo!(); }",
            )],
            None,
        );
        assert_eq!(
            rules_of(&report),
            vec!["panic-safety"; 4],
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let report = check_files(
            &[lib_file(
                "crates/x/src/a.rs",
                "fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.unwrap_or_default(); }",
            )],
            None,
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn cfg_test_regions_are_exempt_from_panic_safety() {
        let source = "fn lib() -> u8 { 0 }\n\
                      #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { lib().unwrap(); }\n}\n";
        let report = check_files(&[lib_file("crates/x/src/a.rs", source)], None);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn code_after_a_test_region_is_strict_again() {
        let source = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n\
                      fn lib() { y.unwrap(); }\n";
        let report = check_files(&[lib_file("crates/x/src/a.rs", source)], None);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].line, 3);
    }

    #[test]
    fn flags_clock_reads_but_not_in_telemetry() {
        let lib = lib_file(
            "crates/x/src/a.rs",
            "fn f() { let t = Instant::now(); let s = SystemTime::now(); }",
        );
        let telemetry = lib_file(
            "crates/telemetry/src/span.rs",
            "fn f() { let t = Instant::now(); }",
        );
        let report = check_files(&[lib, telemetry], None);
        assert_eq!(rules_of(&report), vec!["determinism-clock"; 2]);
        assert!(report
            .findings
            .iter()
            .all(|f| f.path.starts_with("crates/x")));
    }

    #[test]
    fn flags_hash_collections_and_float_eq() {
        let report = check_files(
            &[lib_file(
                "crates/x/src/a.rs",
                "use std::collections::HashMap;\nfn f(x: f64) -> bool { x == 1.0 }",
            )],
            None,
        );
        assert_eq!(rules_of(&report), vec!["hash-order", "float-eq"]);
    }

    #[test]
    fn float_eq_ignores_integer_comparisons_and_compound_ops() {
        let report = check_files(
            &[lib_file(
                "crates/x/src/a.rs",
                "fn f(x: usize) -> bool { let y = x <= 1; let r = 0..=10; x == 1 }",
            )],
            None,
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let source = r##"
            // thread_rng() and x.unwrap() in a comment
            /* Instant::now() in /* nested */ comment */
            fn f() -> &'static str { "thread_rng() unwrap() 1.0 == 2.0" }
            fn g() -> &'static str { r#"panic!() HashMap"# }
        "##;
        let report = check_files(&[lib_file("crates/x/src/a.rs", source)], None);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn reasoned_suppressions_silence_and_are_reported() {
        let source = "fn f() { // lithohd-lint: allow(panic-safety) — demo reason\n    \
                      x.unwrap();\n}";
        let report = check_files(&[lib_file("crates/x/src/a.rs", source)], None);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(
            report.suppressed[0].suppression_reason.as_deref(),
            Some("demo reason")
        );
    }

    #[test]
    fn same_line_suppression_works() {
        let source = "fn f() { x.unwrap(); } // lithohd-lint: allow(panic-safety) — trailing";
        let report = check_files(&[lib_file("crates/x/src/a.rs", source)], None);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressed.len(), 1);
    }

    #[test]
    fn reasonless_suppression_is_itself_a_violation() {
        let source = "fn f() { // lithohd-lint: allow(panic-safety)\n    x.unwrap();\n}";
        let report = check_files(&[lib_file("crates/x/src/a.rs", source)], None);
        let rules = rules_of(&report);
        assert!(rules.contains(&"suppression-reason"), "{rules:?}");
        assert!(rules.contains(&"panic-safety"), "{rules:?}");
    }

    #[test]
    fn unused_suppression_is_flagged() {
        let source = "// lithohd-lint: allow(panic-safety) — nothing here\nfn f() {}\n";
        let report = check_files(&[lib_file("crates/x/src/a.rs", source)], None);
        assert_eq!(rules_of(&report), vec!["unused-suppression"]);
    }

    #[test]
    fn telemetry_literal_names_are_flagged_against_the_registry() {
        let registry = NameRegistry::parse(
            "crates/telemetry/src/names.rs",
            "pub const ORACLE_CALLS: &str = \"litho.oracle.calls\";\n\
             pub const UNUSED: &str = \"never.used\";\n",
        );
        let source = "fn f() {\n\
                      telemetry::counter(\"litho.oracle.calls\").incr();\n\
                      telemetry::counter(\"not.registered\").incr();\n\
                      telemetry::counter(telemetry::names::ORACLE_CALLS).incr();\n}";
        let report = check_files(&[lib_file("crates/x/src/a.rs", source)], Some(&registry));
        let rules = rules_of(&report);
        // Sorted by path: the registry file sorts before crates/x.
        assert_eq!(
            rules,
            vec![
                "telemetry-unused-name",
                "telemetry-names",
                "telemetry-names"
            ],
            "{:?}",
            report.findings
        );
        assert!(report.findings[0].message.contains("UNUSED"));
        assert!(report.findings[1].message.contains("ORACLE_CALLS"));
        assert!(report.findings[2].message.contains("not registered"));
    }

    #[test]
    fn crate_roots_require_forbid_unsafe() {
        let missing = lib_file("crates/x/src/lib.rs", "//! docs\npub fn f() {}\n");
        let present = lib_file(
            "crates/y/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
        );
        let not_a_root = lib_file("crates/x/src/util.rs", "pub fn f() {}\n");
        let report = check_files(&[missing, present, not_a_root], None);
        assert_eq!(rules_of(&report), vec!["forbid-unsafe"]);
        assert_eq!(report.findings[0].path, "crates/x/src/lib.rs");
    }

    #[test]
    fn registry_parses_consts_and_values() {
        let registry = NameRegistry::parse(
            "crates/telemetry/src/names.rs",
            "/// doc\npub const A: &str = \"a.b\";\nconst PRIVATE: &str = \"c.d\";\n\
             pub fn span_seconds(s: &str) -> String { format!(\"span.{s}.seconds\") }\n",
        );
        assert_eq!(registry.constants.len(), 2);
        assert_eq!(registry.constant_for("a.b"), Some("A"));
        assert_eq!(registry.constant_for("missing"), None);
    }
}
