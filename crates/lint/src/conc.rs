//! Concurrency rules over the item tree: lock-order, detached-spawn, and
//! unordered-merge.
//!
//! These are lexical heuristics, not a borrow checker. They reconstruct just
//! enough structure from the token stream — which locks a function holds at
//! each acquisition site, where a spawned handle goes, whether channel
//! results are sorted before reduction — to catch the bug classes the
//! N=1-vs-N=4 canonical-journal CI jobs can only catch dynamically, and they
//! lean on the same suppression mechanism as every other rule when a site is
//! a false positive.

use crate::rules::{FileContext, Finding};
use crate::scanner::TokenKind;
use std::collections::{BTreeMap, BTreeSet};

/// One observed "acquire `to` while holding `from`" ordering, attributed to
/// its source site for reporting and suppression.
#[derive(Debug, Clone)]
pub(crate) struct LockEdge {
    /// Crate key (`crates/<name>` component, or the whole path outside
    /// `crates/`): lock graphs never span crates.
    pub crate_key: String,
    /// Name of the lock held at the acquisition site.
    pub from: String,
    /// Name of the lock being acquired.
    pub to: String,
    /// Workspace-relative path of the acquisition site.
    pub path: String,
    /// 1-based line of the acquisition site.
    pub line: u32,
    /// Trimmed source line (for baseline keys and reports).
    pub excerpt: String,
}

/// Per-file concurrency analysis output.
#[derive(Debug, Default)]
pub(crate) struct ConcScan {
    /// Direct findings (detached-spawn, unordered-merge).
    pub findings: Vec<Finding>,
    /// Lock-order edges, resolved into cycles across the whole file set.
    pub edges: Vec<LockEdge>,
}

/// The crate key a path's lock graph belongs to.
pub(crate) fn crate_key(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => format!("crates/{name}"),
        _ => rel_path.to_string(),
    }
}

/// Guard-lifetime scope of one held lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scope {
    /// A temporary guard (`x.lock().field = …`): dropped at the end of the
    /// statement.
    Stmt,
    /// A let-bound guard (`let g = x.lock();`): dropped when the block at
    /// this relative depth closes.
    Block(usize),
}

/// Runs every concurrency rule over one strict file.
pub(crate) fn analyze(ctx: &FileContext<'_>) -> ConcScan {
    let mut scan = ConcScan::default();
    let has_rwlock = (0..ctx.sig.len()).any(|i| ctx.sig_text(i) == "RwLock");
    for fn_item in ctx.tree.fns() {
        if fn_item.is_test || fn_item.close_sig <= fn_item.open_sig {
            continue;
        }
        lock_edges(ctx, fn_item, has_rwlock, &mut scan.edges);
        detached_spawns(ctx, fn_item, &mut scan.findings);
        unordered_merge(ctx, fn_item, &mut scan.findings);
    }
    scan
}

/// Whether the significant token at `i` is a method call: `.name(…)`.
fn is_method_call(ctx: &FileContext<'_>, i: usize) -> bool {
    i > 0 && ctx.sig_text(i - 1) == "." && ctx.sig_text(i + 1) == "("
}

/// The receiver name of the method call at `i`: the identifier owning the
/// final `.`, seeing through one trailing call pair (`self.state().lock()`
/// names the lock `state`). `None` for receivers with no nameable base.
fn receiver_name(ctx: &FileContext<'_>, i: usize) -> Option<String> {
    let before_dot = i.checked_sub(2)?;
    let token = ctx.sig_token(before_dot)?;
    if token.kind == TokenKind::Ident {
        return Some(ctx.sig_text(before_dot).to_string());
    }
    if ctx.sig_text(before_dot) == ")" {
        // Walk back over one balanced `(…)` to the call's name.
        let mut depth = 0usize;
        let mut j = before_dot;
        loop {
            match ctx.sig_text(j) {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j = j.checked_sub(1)?;
        }
        let name_pos = j.checked_sub(1)?;
        if ctx.sig_token(name_pos)?.kind == TokenKind::Ident {
            return Some(ctx.sig_text(name_pos).to_string());
        }
    }
    None
}

/// Whether the statement containing significant position `i` begins with
/// `let` (searching back no further than `floor`).
fn statement_is_let(ctx: &FileContext<'_>, i: usize, floor: usize) -> bool {
    let mut j = i;
    while j > floor {
        match ctx.sig_text(j - 1) {
            ";" | "{" | "}" => break,
            _ => j -= 1,
        }
    }
    ctx.sig_text(j) == "let"
}

/// Receivers whose `.lock()` is standard-stream buffering, not a Mutex.
const NON_MUTEX_RECEIVERS: &[&str] = &["stdout", "stderr", "stdin"];

/// Collects "acquire B while holding A" edges from one function body using
/// the guard-lifetime heuristic: a let-bound guard is held until its block
/// closes, a temporary until its statement ends. `.read()`/`.write()` only
/// count as lock acquisitions in files that mention `RwLock` (they are
/// ubiquitous I/O methods otherwise).
fn lock_edges(
    ctx: &FileContext<'_>,
    fn_item: &crate::tree::Item,
    has_rwlock: bool,
    edges: &mut Vec<LockEdge>,
) {
    let mut held: Vec<(String, Scope)> = Vec::new();
    let mut depth = 1usize;
    for i in fn_item.open_sig + 1..fn_item.close_sig {
        match ctx.sig_text(i) {
            "{" => depth += 1,
            "}" => {
                held.retain(|(_, scope)| {
                    !matches!(scope, Scope::Block(d) if *d >= depth) && *scope != Scope::Stmt
                });
                depth = depth.saturating_sub(1);
            }
            ";" => held.retain(|(_, scope)| *scope != Scope::Stmt),
            method @ ("lock" | "read" | "write") => {
                if !is_method_call(ctx, i) || (method != "lock" && !has_rwlock) {
                    continue;
                }
                let Some(name) = receiver_name(ctx, i) else {
                    continue;
                };
                if NON_MUTEX_RECEIVERS.contains(&name.as_str()) {
                    continue;
                }
                let token = ctx.sig_token(i).copied();
                let Some(token) = token else { continue };
                for (from, _) in &held {
                    if *from != name {
                        edges.push(LockEdge {
                            crate_key: crate_key(ctx.rel_path),
                            from: from.clone(),
                            to: name.clone(),
                            path: ctx.rel_path.to_string(),
                            line: token.line,
                            excerpt: ctx.excerpt_at(token.line),
                        });
                    }
                }
                let scope = if statement_is_let(ctx, i, fn_item.open_sig) {
                    Scope::Block(depth)
                } else {
                    Scope::Stmt
                };
                if !held.iter().any(|(h, _)| *h == name) {
                    held.push((name, scope));
                }
            }
            _ => {}
        }
    }
}

/// Flags `thread::spawn(…)` whose `JoinHandle` is discarded: the call sits
/// at statement position (not let-bound, not a call argument, not returned)
/// and no `.join` follows it in the same statement. Scoped-thread spawns
/// (`s.spawn`) auto-join and are not matched.
fn detached_spawns(ctx: &FileContext<'_>, fn_item: &crate::tree::Item, out: &mut Vec<Finding>) {
    for i in fn_item.open_sig + 1..fn_item.close_sig {
        if ctx.sig_text(i) != "spawn"
            || ctx.sig_text(i + 1) != "("
            || i < 3
            || ctx.sig_text(i - 1) != ":"
            || ctx.sig_text(i - 2) != ":"
            || ctx.sig_text(i - 3) != "thread"
        {
            continue;
        }
        // Full path start: `thread::spawn` or `std::thread::spawn`.
        let path_start = if i >= 6
            && ctx.sig_text(i - 4) == ":"
            && ctx.sig_text(i - 5) == ":"
            && ctx.sig_text(i - 6) == "std"
        {
            i - 6
        } else {
            i - 3
        };
        // Statement position: nothing but the path between the previous
        // statement boundary and the call.
        let mut b = path_start;
        while b > fn_item.open_sig + 1 {
            match ctx.sig_text(b - 1) {
                ";" | "{" | "}" => break,
                _ => b -= 1,
            }
        }
        if b != path_start {
            continue; // let-bound, pushed, returned, or an argument
        }
        // Match the spawn's argument parens, then look for `.join` before
        // the statement ends.
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < fn_item.close_sig {
            match ctx.sig_text(j) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let mut joined = false;
        let mut k = j;
        while k < fn_item.close_sig && ctx.sig_text(k) != ";" {
            if ctx.sig_text(k) == "join" {
                joined = true;
                break;
            }
            k += 1;
        }
        if !joined {
            if let Some(token) = ctx.sig_token(i) {
                out.push(
                    ctx.finding(
                        "detached-spawn",
                        token,
                        "`thread::spawn` handle is discarded; join it or store it so the thread's \
                     outcome (and panics) cannot be silently lost"
                            .to_string(),
                    ),
                );
            }
        }
    }
}

/// Channel-receive method names that yield results in arrival order.
const RECV_METHODS: &[&str] = &["recv", "try_recv", "recv_timeout", "recv_deadline"];

/// Positional accumulation methods whose insertion order becomes the
/// reduction order.
const ACCUM_METHODS: &[&str] = &["push", "extend", "append"];

/// Flags functions that receive results from a channel inside a loop and
/// accumulate them positionally without any `sort*` call before reduction —
/// worker completion order is nondeterministic, so the fold's result depends
/// on scheduling unless results are re-sorted by shard/clip ordinal.
fn unordered_merge(ctx: &FileContext<'_>, fn_item: &crate::tree::Item, out: &mut Vec<Finding>) {
    let body = fn_item.open_sig + 1..fn_item.close_sig;
    let mut first_loop: Option<usize> = None;
    let mut recv_at: Option<usize> = None;
    let mut has_accum = false;
    let mut has_sort = false;
    for i in body {
        let text = ctx.sig_text(i);
        match text {
            "for" | "while" | "loop" => {
                first_loop.get_or_insert(i);
            }
            _ if RECV_METHODS.contains(&text)
                && is_method_call(ctx, i)
                && first_loop.is_some_and(|l| l < i)
                && recv_at.is_none() =>
            {
                recv_at = Some(i);
            }
            _ if ACCUM_METHODS.contains(&text) && is_method_call(ctx, i) => has_accum = true,
            _ if text.starts_with("sort") && is_method_call(ctx, i) => has_sort = true,
            _ => {}
        }
    }
    if let (Some(recv), true, false) = (recv_at, has_accum, has_sort) {
        if let Some(token) = ctx.sig_token(recv) {
            out.push(
                ctx.finding(
                    "unordered-merge",
                    token,
                    "channel results received in a loop are accumulated without sorting; sort by \
                 shard/clip ordinal before reducing, or merge into an ordered container"
                        .to_string(),
                ),
            );
        }
    }
}

/// Resolves per-crate lock graphs into cycle findings. Edges are grouped by
/// crate, deduplicated per `(from, to)` (first site wins), and every
/// elementary cycle is reported once, at the site of the edge that closes
/// it back to the cycle's lexicographically smallest lock.
pub(crate) fn lock_cycle_findings(edges: &[LockEdge]) -> Vec<Finding> {
    let mut by_crate: BTreeMap<&str, BTreeMap<&str, BTreeMap<&str, &LockEdge>>> = BTreeMap::new();
    for edge in edges {
        by_crate
            .entry(edge.crate_key.as_str())
            .or_default()
            .entry(edge.from.as_str())
            .or_default()
            .entry(edge.to.as_str())
            .or_insert(edge);
    }
    let mut findings = Vec::new();
    for graph in by_crate.values() {
        let mut seen_cycles: BTreeSet<Vec<&str>> = BTreeSet::new();
        for &start in graph.keys() {
            let mut path = vec![start];
            dfs_cycles(
                graph,
                start,
                start,
                &mut path,
                &mut seen_cycles,
                &mut findings,
            );
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings
}

fn dfs_cycles<'a>(
    graph: &BTreeMap<&'a str, BTreeMap<&'a str, &'a LockEdge>>,
    start: &'a str,
    current: &'a str,
    path: &mut Vec<&'a str>,
    seen: &mut BTreeSet<Vec<&'a str>>,
    findings: &mut Vec<Finding>,
) {
    let Some(successors) = graph.get(current) else {
        return;
    };
    for (&next, &edge) in successors {
        if next == start {
            // Report each cycle once, anchored at its smallest lock name.
            if path.iter().min() == Some(&start) {
                let mut canonical: Vec<&str> = path.clone();
                canonical.sort_unstable();
                if seen.insert(canonical) {
                    let mut display = path.join(" → ");
                    display.push_str(" → ");
                    display.push_str(start);
                    findings.push(Finding {
                        rule: "lock-order".to_string(),
                        severity: crate::rules::severity_of("lock-order"),
                        path: edge.path.clone(),
                        line: edge.line,
                        message: format!(
                            "cyclic lock acquisition order {display}; acquire locks in one \
                             global order to make deadlock impossible"
                        ),
                        excerpt: edge.excerpt.clone(),
                        suppression_reason: None,
                    });
                }
            }
        } else if !path.contains(&next) && path.len() < 16 {
            path.push(next);
            dfs_cycles(graph, start, next, path, seen, findings);
            path.pop();
        }
    }
}
