//! # hotspot-lint — workspace-wide static analysis for lithohd
//!
//! A self-contained static-analysis pass over the workspace's Rust sources,
//! enforcing the invariants the paper reproduction depends on but the
//! compiler cannot see:
//!
//! * **Determinism** — no ambient randomness ([`rules`]: `determinism-rng`),
//!   no wall-clock reads outside telemetry and the injectable `Clock`
//!   (`determinism-clock`), no order-randomized hash collections in library
//!   code (`hash-order`). Bit-identical runs under a fixed seed are what
//!   make Eq. 1 / Eq. 2 citable.
//! * **Panic-safety** — `unwrap`/`expect`/`panic!` banned in library
//!   non-test code (`panic-safety`); the fault-tolerance layer's guarantees
//!   end at the first stray panic.
//! * **Float hygiene** — `==`/`!=` against float literals (`float-eq`).
//! * **Telemetry-name integrity** — metric/span names at call sites must be
//!   `telemetry::names` constants (`telemetry-names`), and registered names
//!   must have call sites (`telemetry-unused-name`).
//! * **Concurrency discipline** (over the syntax [`tree`]) —
//!   cyclic per-crate `Mutex` acquisition orders (`lock-order`), spawned
//!   threads whose handles are dropped unjoined (`detached-spawn`), and
//!   cross-worker merges without a deterministic sort (`unordered-merge`).
//! * **Canonical purity** — wall-clock-shaped metric names (`.seconds`,
//!   `elapsed_*`, `duration_*`) must appear in the withhold registry that
//!   `JsonlSink` consults in `--canonical-journal` mode
//!   (`canonical-purity`); the rule reads the same
//!   `telemetry::names` constants the runtime does, so the static and
//!   dynamic views cannot drift apart.
//! * **`#![forbid(unsafe_code)]`** present at every crate root
//!   (`forbid-unsafe`).
//!
//! The workspace has no crates.io access, so this is built the same way as
//! `vendor/`: a small lossless token [`scanner`] (comments, strings, raw
//! strings — no false positives from text inside literals), a brace-matched
//! [`tree`] of items ([`ItemTree`]: modules, fns, impls, traits, with
//! `#[cfg(test)]` inheritance) for the rules that need syntax rather than
//! tokens, and a rule engine with path scoping (library crates strict;
//! `tests/`, `benches/`, `examples/`, `src/bin/` relaxed),
//! `#[cfg(test)]`-region detection, and inline suppressions that *require*
//! a reason:
//!
//! ```text
//! // lithohd-lint: allow(determinism-clock) — timing feeds telemetry only
//! ```
//!
//! The `lithohd-lint` binary exposes `check` (human + JSON output, exit 2
//! on findings, exit 1 on usage/I/O errors), `rules`, and
//! `explain <rule>`. There is no baseline *writer* any more: the committed
//! `lint-baseline.json` is empty, every finding is a hard failure, and the
//! [`baseline`] module only survives to read (and verify emptiness of) the
//! committed file.
//!
//! ```
//! use hotspot_lint::rules::{check_files, FileClass, SourceFile};
//!
//! let file = SourceFile {
//!     rel_path: "crates/demo/src/lib.rs".to_string(),
//!     source: "fn f(x: Option<u8>) -> u8 { x.unwrap() }".to_string(),
//!     class: FileClass::Library,
//! };
//! let report = check_files(&[file], None);
//! assert_eq!(report.findings.len(), 2); // panic-safety + missing forbid(unsafe_code)
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod baseline;
pub(crate) mod conc;
pub mod rules;
pub mod scanner;
pub mod tree;
pub mod workspace;

pub use baseline::{Baseline, BaselineEntry};
pub use rules::{
    check_files, check_on_disk, classify, rule_info, wall_clock_shaped, CheckReport, FileClass,
    Finding, NameRegistry, RuleInfo, Severity, RULES,
};
pub use tree::{Item, ItemKind, ItemTree};
