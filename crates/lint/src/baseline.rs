//! Grandfathering: a committed `lint-baseline.json` records known findings
//! so the gate only blocks *new* violations while the backlog burns down.
//!
//! Entries are keyed by `(rule, path, trimmed line text)` rather than line
//! numbers, so unrelated edits that shift code up or down do not invalidate
//! the baseline; only adding a new violating line (or copying an existing
//! one) raises the count above the grandfathered amount.

use crate::rules::Finding;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// One grandfathered finding group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineEntry {
    /// Rule name.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Trimmed text of the violating line.
    pub excerpt: String,
    /// How many findings share this key.
    pub count: usize,
}

/// The committed grandfather list.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Baseline {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Grandfathered finding groups, sorted by (rule, path, excerpt).
    pub entries: Vec<BaselineEntry>,
}

/// Reasonless suppressions are never grandfathered: they are always fresh
/// violations, whatever the baseline says.
fn baselinable(finding: &Finding) -> bool {
    finding.rule != "suppression-reason"
}

fn key(finding: &Finding) -> (String, String, String) {
    (
        finding.rule.clone(),
        finding.path.clone(),
        finding.excerpt.clone(),
    )
}

impl Baseline {
    /// Builds a baseline from the current findings.
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for finding in findings.iter().filter(|f| baselinable(f)) {
            *counts.entry(key(finding)).or_insert(0) += 1;
        }
        Baseline {
            version: 1,
            entries: counts
                .into_iter()
                .map(|((rule, path, excerpt), count)| BaselineEntry {
                    rule,
                    path,
                    excerpt,
                    count,
                })
                .collect(),
        }
    }

    /// Total grandfathered finding count.
    pub fn total(&self) -> usize {
        self.entries.iter().map(|e| e.count).sum()
    }

    /// Splits findings into `(new, grandfathered)` against this baseline.
    /// Within one key, the first `count` findings are grandfathered and the
    /// rest are new.
    pub fn partition<'a>(&self, findings: &'a [Finding]) -> (Vec<&'a Finding>, Vec<&'a Finding>) {
        let mut budget: BTreeMap<(String, String, String), usize> = self
            .entries
            .iter()
            .map(|e| ((e.rule.clone(), e.path.clone(), e.excerpt.clone()), e.count))
            .collect();
        let mut new = Vec::new();
        let mut grandfathered = Vec::new();
        for finding in findings {
            if !baselinable(finding) {
                new.push(finding);
                continue;
            }
            match budget.get_mut(&key(finding)) {
                Some(remaining) if *remaining > 0 => {
                    *remaining -= 1;
                    grandfathered.push(finding);
                }
                _ => new.push(finding),
            }
        }
        (new, grandfathered)
    }

    /// Reads a baseline file.
    pub fn read(path: &Path) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{path:?}: {e}")))
    }

    /// Writes the baseline as pretty JSON (stable order for clean diffs).
    pub fn write(&self, path: &Path) -> io::Result<()> {
        let mut text = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        text.push('\n');
        std::fs::write(path, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    fn finding(rule: &str, path: &str, line: u32, excerpt: &str) -> Finding {
        Finding {
            rule: rule.to_string(),
            severity: Severity::Warning,
            path: path.to_string(),
            line,
            message: String::new(),
            excerpt: excerpt.to_string(),
            suppression_reason: None,
        }
    }

    #[test]
    fn partition_survives_line_drift() {
        let old = [finding("panic-safety", "src/a.rs", 10, "x.unwrap();")];
        let baseline = Baseline::from_findings(&old);
        // Same violation, different line number after unrelated edits.
        let current = [finding("panic-safety", "src/a.rs", 42, "x.unwrap();")];
        let (new, grandfathered) = baseline.partition(&current);
        assert!(new.is_empty());
        assert_eq!(grandfathered.len(), 1);
    }

    #[test]
    fn extra_copies_of_a_known_violation_are_new() {
        let old = [finding("panic-safety", "src/a.rs", 1, "x.unwrap();")];
        let baseline = Baseline::from_findings(&old);
        let current = [
            finding("panic-safety", "src/a.rs", 1, "x.unwrap();"),
            finding("panic-safety", "src/a.rs", 9, "x.unwrap();"),
        ];
        let (new, grandfathered) = baseline.partition(&current);
        assert_eq!(grandfathered.len(), 1);
        assert_eq!(new.len(), 1);
    }

    #[test]
    fn reasonless_suppressions_are_never_grandfathered() {
        let old = [finding("suppression-reason", "src/a.rs", 1, "")];
        let baseline = Baseline::from_findings(&old);
        assert_eq!(baseline.total(), 0, "must not enter the baseline");
        let current = [finding("suppression-reason", "src/a.rs", 1, "")];
        let (new, _) = baseline.partition(&current);
        assert_eq!(new.len(), 1);
    }

    #[test]
    fn round_trips_through_json() {
        let baseline = Baseline::from_findings(&[
            finding("float-eq", "src/b.rs", 2, "a == 1.0"),
            finding("float-eq", "src/b.rs", 3, "a == 1.0"),
            finding(
                "hash-order",
                "src/a.rs",
                1,
                "use std::collections::HashMap;",
            ),
        ]);
        let dir = std::env::temp_dir().join(format!("lithohd-lint-bl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        baseline.write(&path).unwrap();
        let back = Baseline::read(&path).unwrap();
        assert_eq!(back, baseline);
        assert_eq!(back.total(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
