//! `lithohd-lint` — the workspace static-analysis gate.
//!
//! ```text
//! lithohd-lint check [--baseline <file>] [--json] [--root <dir>] [paths…]
//! lithohd-lint explain <rule>
//! lithohd-lint rules
//! ```
//!
//! `check` scans the workspace (or the explicitly listed files, which are
//! always scanned at library strictness — that is how the known-bad test
//! fixtures are exercised).
//!
//! Exit codes distinguish *what the linter found* from *whether it ran*:
//!
//! * `0` — scan completed, no findings (clean against the baseline);
//! * `1` — the scan itself failed: usage, I/O, or configuration error;
//! * `2` — scan completed and found violations.
//!
//! CI treats any nonzero exit as a failure but the distinction matters for
//! tooling: exit 2 means "read the findings", exit 1 means "fix the
//! invocation". The grandfather-list writer (`baseline` subcommand) is
//! gone: the committed baseline is empty and stays empty, so every finding
//! is a hard failure.

use hotspot_lint::baseline::Baseline;
use hotspot_lint::rules::{self, CheckReport, Finding, NameRegistry, Severity};
use hotspot_lint::workspace;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const REGISTRY_REL_PATH: &str = "crates/telemetry/src/names.rs";

/// The scan ran and reported violations.
const EXIT_FINDINGS: u8 = 2;
/// The scan could not run: usage, I/O, or configuration error.
const EXIT_ERROR: u8 = 1;

fn usage() -> ExitCode {
    eprintln!(
        "usage: lithohd-lint <check|explain|rules> …\n\
         \n\
         check [--baseline <file>] [--json] [--root <dir>] [paths…]\n\
         \x20   scan the workspace (or the given files, at library strictness)\n\
         explain <rule>\n\
         \x20   describe one rule: what it catches, why, how to fix\n\
         rules\n\
         \x20   list the rule catalog\n\
         \n\
         exit codes:\n\
         \x20   0  scan completed, no violations\n\
         \x20   1  usage, I/O, or configuration error (the scan did not run)\n\
         \x20   2  scan completed and found violations"
    );
    ExitCode::from(EXIT_ERROR)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("explain") => run_explain(&args[1..]),
        Some("rules") => run_rules(),
        _ => usage(),
    }
}

struct CheckArgs {
    baseline: Option<PathBuf>,
    json: bool,
    root: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn parse_check_args(args: &[String]) -> Result<CheckArgs, String> {
    let mut parsed = CheckArgs {
        baseline: None,
        json: false,
        root: None,
        paths: Vec::new(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--baseline" => {
                parsed.baseline = Some(PathBuf::from(
                    iter.next().ok_or("--baseline expects a path")?,
                ));
            }
            "--json" => parsed.json = true,
            "--root" => {
                parsed.root = Some(PathBuf::from(iter.next().ok_or("--root expects a path")?));
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag: {flag}")),
            path => parsed.paths.push(PathBuf::from(path)),
        }
    }
    Ok(parsed)
}

fn resolve_root(explicit: Option<&Path>) -> Result<PathBuf, String> {
    if let Some(root) = explicit {
        return Ok(root.to_path_buf());
    }
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    workspace::find_root(&cwd)
        .ok_or_else(|| "no workspace root found (run inside the repo or pass --root)".to_string())
}

fn load_registry(root: &Path) -> Option<NameRegistry> {
    let path = root.join(REGISTRY_REL_PATH);
    let source = std::fs::read_to_string(path).ok()?;
    Some(NameRegistry::parse(REGISTRY_REL_PATH, &source))
}

/// Scans either the whole workspace or the explicit paths.
fn scan(root: &Path, explicit: &[PathBuf]) -> Result<CheckReport, String> {
    let registry = load_registry(root);
    if explicit.is_empty() {
        let files = workspace::discover(root).map_err(|e| format!("discovery failed: {e}"))?;
        rules::check_on_disk(root, &files, registry.as_ref(), false)
    } else {
        // Explicit paths are scanned at library strictness, and without the
        // registry's cross-file bookkeeping (a lone fixture file would
        // otherwise report every registered name as unused).
        rules::check_on_disk(root, explicit, None, true)
    }
    .map_err(|e| format!("scan failed: {e}"))
}

fn run_check(args: &[String]) -> ExitCode {
    let parsed = match parse_check_args(args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("lithohd-lint check: {message}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    let root = match resolve_root(parsed.root.as_deref()) {
        Ok(root) => root,
        Err(message) => {
            eprintln!("lithohd-lint check: {message}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    let report = match scan(&root, &parsed.paths) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("lithohd-lint check: {message}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    let baseline = match &parsed.baseline {
        Some(path) => match Baseline::read(&root.join(path)) {
            Ok(baseline) => Some(baseline),
            Err(e) => {
                eprintln!("lithohd-lint check: cannot read baseline: {e}");
                return ExitCode::from(EXIT_ERROR);
            }
        },
        None => None,
    };
    let empty = Baseline::default();
    let (new, grandfathered) = baseline
        .as_ref()
        .unwrap_or(&empty)
        .partition(&report.findings);

    if parsed.json {
        print_json(&report, &new, &grandfathered);
    } else {
        print_human(&report, &new, &grandfathered, baseline.is_some());
    }
    if new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_FINDINGS)
    }
}

fn print_human(
    report: &CheckReport,
    new: &[&Finding],
    grandfathered: &[&Finding],
    had_baseline: bool,
) {
    for finding in new {
        println!(
            "{}:{}: [{}] {}: {}",
            finding.path,
            finding.line,
            finding.severity.label(),
            finding.rule,
            finding.message
        );
        if !finding.excerpt.is_empty() {
            println!("    {}", finding.excerpt);
        }
    }
    let errors = new.iter().filter(|f| f.severity == Severity::Error).count();
    println!(
        "lithohd-lint: {} file(s) scanned, {} new violation(s) ({} error(s), {} warning(s)), \
         {} grandfathered, {} suppressed",
        report.files_scanned,
        new.len(),
        errors,
        new.len() - errors,
        grandfathered.len(),
        report.suppressed.len(),
    );
    if !report.suppressed.is_empty() {
        println!("suppressions in effect:");
        for finding in &report.suppressed {
            println!(
                "    {}:{}: {} — {}",
                finding.path,
                finding.line,
                finding.rule,
                finding.suppression_reason.as_deref().unwrap_or("")
            );
        }
    }
    if had_baseline && new.is_empty() {
        println!("clean against the baseline");
    }
}

/// The machine-readable `--json` report shape.
#[derive(serde::Serialize)]
struct JsonReport {
    files_scanned: usize,
    new_violations: Vec<Finding>,
    grandfathered: Vec<Finding>,
    suppressed: Vec<Finding>,
}

fn print_json(report: &CheckReport, new: &[&Finding], grandfathered: &[&Finding]) {
    let body = JsonReport {
        files_scanned: report.files_scanned,
        new_violations: new.iter().map(|f| (*f).clone()).collect(),
        grandfathered: grandfathered.iter().map(|f| (*f).clone()).collect(),
        suppressed: report.suppressed.clone(),
    };
    match serde_json::to_string_pretty(&body) {
        Ok(text) => println!("{text}"),
        Err(e) => eprintln!("lithohd-lint check: cannot serialize report: {e}"),
    }
}

fn run_explain(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        eprintln!("usage: lithohd-lint explain <rule>");
        return ExitCode::from(EXIT_ERROR);
    };
    match rules::rule_info(name) {
        Some(rule) => {
            println!("{} [{}]", rule.name, rule.severity.label());
            println!("{}", rule.summary);
            println!();
            println!("{}", rule.explain);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "unknown rule `{name}`; known rules: {}",
                rules::RULES
                    .iter()
                    .map(|r| r.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            ExitCode::from(EXIT_ERROR)
        }
    }
}

fn run_rules() -> ExitCode {
    for rule in rules::RULES {
        println!(
            "{:<24} [{:<7}] {}",
            rule.name,
            rule.severity.label(),
            rule.summary
        );
    }
    ExitCode::SUCCESS
}
