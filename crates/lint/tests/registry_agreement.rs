//! The canonical-purity rule's *static* reading of the withhold registry
//! must agree with the *runtime* predicates in `hotspot_telemetry::names`.
//! If they ever diverge — a name the sink withholds but the linter thinks
//! leaks, or vice versa — the lint rule is either noisy or blind; this test
//! pins them together over every registered name.

use hotspot_lint::{wall_clock_shaped, NameRegistry};
use hotspot_telemetry::names;

const REGISTRY_REL_PATH: &str = "crates/telemetry/src/names.rs";

fn registry() -> NameRegistry {
    let source = include_str!("../../telemetry/src/names.rs");
    NameRegistry::parse(REGISTRY_REL_PATH, source)
}

#[test]
fn static_and_runtime_withholding_agree_on_every_registered_name() {
    let registry = registry();
    for &name in names::ALL {
        assert_eq!(
            registry.is_withheld_metric(name),
            names::is_withheld_canonical_metric(name),
            "static/runtime disagreement on {name:?}"
        );
    }
}

#[test]
fn every_wall_clock_shaped_name_is_withheld_in_canonical_mode() {
    // The registry-level canonical-purity rule in prose: any registered name
    // that looks like a wall-clock measurement must be withheld, or canonical
    // journals stop being bit-identical across machines.
    for &name in names::ALL {
        if wall_clock_shaped(name) {
            assert!(
                names::is_withheld_canonical_metric(name),
                "{name:?} is wall-clock-shaped but not withheld"
            );
        }
    }
}

#[test]
fn derived_span_histograms_are_withheld() {
    // `span_seconds` names are synthesised (`span.<name>.seconds`), never
    // registered constants, so the suffix rule is their only guard.
    for &span in [names::SPAN_NN_TRAIN, names::SPAN_SHARD_WORKER].iter() {
        assert!(names::is_withheld_canonical_metric(&names::span_seconds(
            span
        )));
    }
}
