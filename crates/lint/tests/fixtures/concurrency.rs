//! Deliberately concurrency-broken code for lithohd-lint's own tests.
//! Never compiled; only scanned. Each section trips one v2 rule.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

struct Shared {
    accounts: Mutex<Vec<u64>>,
    audit: Mutex<Vec<String>>,
}

// lock-order: transfer() acquires accounts → audit, reconcile() acquires
// audit → accounts. Run concurrently, they deadlock.
fn transfer(shared: &Shared) {
    let accounts = shared.accounts.lock().unwrap();
    let audit = shared.audit.lock().unwrap();
    drop(audit);
    drop(accounts);
}

fn reconcile(shared: &Shared) {
    let audit = shared.audit.lock().unwrap();
    let accounts = shared.accounts.lock().unwrap();
    drop(accounts);
    drop(audit);
}

// detached-spawn: the JoinHandle is discarded, so the worker's panic (and
// its result) vanish.
fn fire_and_forget(work: Vec<u64>) {
    std::thread::spawn(move || {
        let _ = work.iter().sum::<u64>();
    });
}

// unordered-merge: results are folded in arrival order; worker scheduling
// decides the outcome.
fn merge_results(rx: Receiver<(usize, f64)>, workers: usize) -> Vec<(usize, f64)> {
    let mut merged = Vec::new();
    for _ in 0..workers {
        while let Ok(outcome) = rx.recv() {
            merged.push(outcome);
        }
    }
    merged
}

// canonical-purity: a wall-clock-shaped metric name that no withhold
// registry covers would leak scheduling-dependent bytes into canonical
// journals.
fn record_latency(elapsed: f64) {
    telemetry::histogram("merge.batch.seconds").observe(elapsed);
}
