//! Known-bad fixture for the linter's own tests. Every construct below is
//! a deliberate violation; the CLI test asserts `lithohd-lint check` on
//! this file exits nonzero and names the expected rules. Never compiled.

use rand::thread_rng;
use std::collections::HashMap;

fn ambient_randomness() -> u64 {
    let mut rng = thread_rng();
    rng.gen()
}

fn float_equality(x: f64) -> bool {
    x == 0.3
}

fn wall_clock() -> std::time::Instant {
    std::time::Instant::now()
}

fn panics(v: Option<u64>) -> u64 {
    v.unwrap()
}

fn hash_order() -> HashMap<u64, u64> {
    HashMap::new()
}

fn unreasoned_suppression(v: Option<u64>) -> u64 {
    // lithohd-lint: allow(panic-safety)
    v.expect("no reason given above, so this still counts")
}
