//! End-to-end tests of the `lithohd-lint` binary: the known-bad fixture
//! must fail loudly (exit 1, expected rules named), and `explain`/`rules`
//! must describe the catalog.

use std::path::Path;
use std::process::{Command, Output};

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lithohd-lint"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn lithohd-lint")
}

#[test]
fn known_bad_fixture_fails_with_the_expected_rules() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad.rs");
    let out = lint(&["check", fixture.to_str().expect("utf-8 path")]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "determinism-rng",
        "determinism-clock",
        "float-eq",
        "panic-safety",
        "hash-order",
        "suppression-reason",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn json_output_is_machine_readable() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad.rs");
    let out = lint(&["check", "--json", fixture.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(1));
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON report");
    let new = report
        .get("new_violations")
        .and_then(|v| v.as_array())
        .expect("new_violations array");
    assert!(
        new.len() >= 6,
        "expected >= 6 violations, got {}",
        new.len()
    );
    assert_eq!(
        report.get("files_scanned").and_then(|v| v.as_u64()),
        Some(1)
    );
}

#[test]
fn explain_describes_each_rule() {
    for rule in ["determinism-rng", "telemetry-names", "forbid-unsafe"] {
        let out = lint(&["explain", rule]);
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains(rule), "{stdout}");
        assert!(stdout.len() > 80, "explanation too short:\n{stdout}");
    }
    let unknown = lint(&["explain", "no-such-rule"]);
    assert_eq!(unknown.status.code(), Some(2));
}

#[test]
fn rules_lists_the_catalog() {
    let out = lint(&["rules"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "determinism-rng",
        "determinism-clock",
        "hash-order",
        "panic-safety",
        "float-eq",
        "telemetry-names",
        "forbid-unsafe",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}
