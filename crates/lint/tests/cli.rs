//! End-to-end tests of the `lithohd-lint` binary: the known-bad fixtures
//! must fail loudly (exit 2, expected rules named), usage/config errors
//! must exit 1, and `explain`/`rules` must describe the catalog.

use std::path::Path;
use std::process::{Command, Output};

/// Exit code for "scan completed and found violations".
const EXIT_FINDINGS: i32 = 2;
/// Exit code for "usage, I/O, or configuration error".
const EXIT_ERROR: i32 = 1;

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lithohd-lint"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn lithohd-lint")
}

#[test]
fn known_bad_fixture_fails_with_the_expected_rules() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad.rs");
    let out = lint(&["check", fixture.to_str().expect("utf-8 path")]);
    assert_eq!(
        out.status.code(),
        Some(EXIT_FINDINGS),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "determinism-rng",
        "determinism-clock",
        "float-eq",
        "panic-safety",
        "hash-order",
        "suppression-reason",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn concurrency_fixture_fails_with_every_v2_rule() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/concurrency.rs");
    let out = lint(&["check", fixture.to_str().expect("utf-8 path")]);
    assert_eq!(
        out.status.code(),
        Some(EXIT_FINDINGS),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "lock-order",
        "detached-spawn",
        "unordered-merge",
        "canonical-purity",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
    assert!(
        stdout.contains("accounts → audit → accounts")
            || stdout.contains("audit → accounts → audit"),
        "cycle path missing in:\n{stdout}"
    );
}

#[test]
fn usage_and_config_errors_exit_1_not_2() {
    // No subcommand: usage error.
    let out = lint(&[]);
    assert_eq!(out.status.code(), Some(EXIT_ERROR));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("exit codes"), "{stderr}");
    assert!(
        stderr.contains("2  scan completed and found violations"),
        "{stderr}"
    );

    // Unknown flag: usage error.
    let out = lint(&["check", "--no-such-flag"]);
    assert_eq!(out.status.code(), Some(EXIT_ERROR));

    // Missing baseline file: configuration error, not findings.
    let out = lint(&["check", "--baseline", "no/such/baseline.json"]);
    assert_eq!(
        out.status.code(),
        Some(EXIT_ERROR),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Unreadable explicit path: I/O error.
    let out = lint(&["check", "no/such/file.rs"]);
    assert_eq!(out.status.code(), Some(EXIT_ERROR));
}

#[test]
fn baseline_subcommand_is_gone() {
    let out = lint(&["baseline"]);
    assert_eq!(out.status.code(), Some(EXIT_ERROR));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn json_output_is_machine_readable() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad.rs");
    let out = lint(&["check", "--json", fixture.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(EXIT_FINDINGS));
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON report");
    let new = report
        .get("new_violations")
        .and_then(|v| v.as_array())
        .expect("new_violations array");
    assert!(
        new.len() >= 6,
        "expected >= 6 violations, got {}",
        new.len()
    );
    assert_eq!(
        report.get("files_scanned").and_then(|v| v.as_u64()),
        Some(1)
    );
}

#[test]
fn explain_describes_each_rule() {
    for rule in [
        "determinism-rng",
        "telemetry-names",
        "forbid-unsafe",
        "lock-order",
        "canonical-purity",
    ] {
        let out = lint(&["explain", rule]);
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains(rule), "{stdout}");
        assert!(stdout.len() > 80, "explanation too short:\n{stdout}");
    }
    let unknown = lint(&["explain", "no-such-rule"]);
    assert_eq!(unknown.status.code(), Some(EXIT_ERROR));
}

#[test]
fn rules_lists_the_catalog() {
    let out = lint(&["rules"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "determinism-rng",
        "determinism-clock",
        "hash-order",
        "panic-safety",
        "float-eq",
        "telemetry-names",
        "forbid-unsafe",
        "lock-order",
        "detached-spawn",
        "unordered-merge",
        "canonical-purity",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}
