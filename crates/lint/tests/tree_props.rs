//! Property tests for the item-tree builder: it must never panic, its byte
//! spans must slice the source cleanly and nest properly, and
//! `#[cfg(test)]`-region detection must hold up across nested and inline
//! modules.

use hotspot_lint::scanner::{scan, Token};
use hotspot_lint::ItemTree;
use proptest::collection::vec;
use proptest::prelude::*;

fn build(source: &str) -> (ItemTree, Vec<Token>) {
    let tokens = scan(source);
    let sig: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_trivia())
        .map(|(i, _)| i)
        .collect();
    (ItemTree::build(source, &tokens, &sig), tokens)
}

/// Checks the span invariants over one sibling list, recursively: spans lie
/// inside the enclosing span, are ordered, don't overlap, and slice `source`
/// on valid char boundaries.
fn check_spans(source: &str, items: &[hotspot_lint::Item], lo: usize, hi: usize) {
    let mut cursor = lo;
    for item in items {
        assert!(item.start <= item.end, "inverted span {item:?}");
        assert!(item.start >= cursor, "overlapping siblings at {item:?}");
        assert!(item.end <= hi, "child escapes parent: {item:?}");
        assert!(
            source.is_char_boundary(item.start) && source.is_char_boundary(item.end),
            "span not on char boundary: {item:?}"
        );
        let _ = &source[item.start..item.end]; // must not panic
        check_spans(source, &item.children, item.start, item.end);
        cursor = item.end;
    }
}

/// Checks that test marking is inherited: every descendant of a test item is
/// itself a test item.
fn check_test_inheritance(items: &[hotspot_lint::Item], inside_test: bool) {
    for item in items {
        if inside_test {
            assert!(item.is_test, "non-test item inside a test item: {item:?}");
        }
        check_test_inheritance(&item.children, item.is_test);
    }
}

/// Fragments biased towards the shapes the builder must survive: item
/// keywords, attributes, braces (balanced or not), and literal noise.
const FRAGMENTS: &[&str] = &[
    "mod m {",
    "fn f() {",
    "impl T {",
    "trait Q {",
    "}",
    "{",
    "#[cfg(test)]",
    "#[cfg(not(test))]",
    "#[test]",
    "#[derive(Debug)]",
    "pub",
    "unsafe",
    ";",
    "let x = \"{ } fn mod\";",
    "// fn comment() {",
    "mod stub;",
    "match x",
    "=> {",
    "fn",
    "mod",
    "impl",
    "()",
    "\"",
    "/*",
];

fn soup(picks: &[usize]) -> String {
    picks
        .iter()
        .map(|&i| FRAGMENTS[i % FRAGMENTS.len()])
        .collect::<Vec<_>>()
        .join("\n")
}

proptest! {
    #[test]
    fn build_never_panics_on_arbitrary_unicode(
        points in vec(any::<u32>(), 0..200),
    ) {
        let source: String = points
            .iter()
            .map(|&p| char::from_u32(p % 0x0011_0000).unwrap_or('\u{FFFD}'))
            .collect();
        let (tree, _) = build(&source);
        check_spans(&source, &tree.roots, 0, source.len());
        check_test_inheritance(&tree.roots, false);
    }

    #[test]
    fn build_never_panics_on_rustish_soup(
        picks in vec(0usize..FRAGMENTS.len(), 0..40),
    ) {
        let source = soup(&picks);
        let (tree, _) = build(&source);
        check_spans(&source, &tree.roots, 0, source.len());
        check_test_inheritance(&tree.roots, false);
        // Test regions are exactly the topmost test items' spans, so they
        // must be disjoint and ordered too.
        let regions = tree.test_regions();
        for window in regions.windows(2) {
            prop_assert!(window[0].1 <= window[1].0, "overlapping regions {regions:?}");
        }
    }

    #[test]
    fn spans_start_and_end_on_token_boundaries(
        picks in vec(0usize..FRAGMENTS.len(), 0..40),
    ) {
        let source = soup(&picks);
        let (tree, tokens) = build(&source);
        let boundaries: std::collections::BTreeSet<usize> = tokens
            .iter()
            .flat_map(|t| [t.start, t.end])
            .chain([0, source.len()])
            .collect();
        for item in tree.iter() {
            prop_assert!(boundaries.contains(&item.start), "start {} off-token", item.start);
            prop_assert!(boundaries.contains(&item.end), "end {} off-token", item.end);
        }
    }
}

#[test]
fn test_regions_across_nested_and_inline_modules() {
    let source = r#"
pub fn library() {}

#[cfg(test)]
mod tests {
    mod nested {
        fn helper() { x.unwrap(); }
    }
    #[test]
    fn case() {}
}

mod inline {
    #[cfg(test)]
    mod inner_tests {
        fn f() {}
    }
    pub fn shipped() {}
}

#[cfg(not(test))]
mod production {
    fn g() {}
}
"#;
    let (tree, _) = build(source);
    let regions = tree.test_regions();
    assert_eq!(regions.len(), 2, "{regions:?}");

    // The first region is the whole `mod tests`, covering the nested module
    // and the `#[test]` fn rather than reporting them separately.
    let covered = |offset: usize| regions.iter().any(|&(s, e)| s <= offset && offset < e);
    assert!(covered(source.find("mod nested").unwrap()));
    assert!(covered(source.find("fn case").unwrap()));
    assert!(covered(source.find("mod inner_tests").unwrap()));
    assert!(!covered(source.find("pub fn library").unwrap()));
    assert!(!covered(source.find("pub fn shipped").unwrap()));
    assert!(!covered(source.find("mod production").unwrap()));
}

#[test]
fn unterminated_test_module_runs_to_eof() {
    let source = "#[cfg(test)]\nmod tests {\n    fn f() {\n"; // truncated file
    let (tree, _) = build(source);
    let regions = tree.test_regions();
    assert_eq!(regions.len(), 1);
    assert_eq!(regions[0].1, source.len());
}
