//! Property tests for the lossless scanner: on arbitrary input — valid
//! Rust or byte soup — scanning must never panic, and the token stream must
//! tile the input exactly (contiguous, gap-free byte offsets whose texts
//! concatenate back to the source).

use hotspot_lint::scanner::{scan, TokenKind};
use proptest::collection::vec;
use proptest::prelude::*;

fn assert_lossless(source: &str) {
    let tokens = scan(source);
    let mut cursor = 0usize;
    let mut rebuilt = String::with_capacity(source.len());
    for token in &tokens {
        assert_eq!(
            token.start, cursor,
            "token {:?} does not start where the previous one ended",
            token.kind
        );
        assert!(token.end > token.start, "empty token {:?}", token.kind);
        rebuilt.push_str(token.text(source));
        cursor = token.end;
    }
    assert_eq!(cursor, source.len(), "tokens do not cover the input");
    assert_eq!(rebuilt, source, "concatenated tokens differ from the input");
}

/// Lexically interesting fragments: every delimiter the scanner special-
/// cases, deliberately unbalanced so concatenations hit unterminated and
/// nested shapes.
const FRAGMENTS: &[&str] = &[
    "fn", "let", "unwrap", "()", "{", "}", "\"", "'", "\\", "//", "/*", "*/", "r#\"", "\"#", "b'",
    "0.5", "1e-9", "1e", "==", "!=", "x", " ", "\n", "\t", "é", "∑", "r#type", "c\"s\"", "'a",
    "b\"", "#", "r##\"", "\"##",
];

proptest! {
    #[test]
    fn arbitrary_unicode_never_panics_and_round_trips(
        points in vec(any::<u32>(), 0..200),
    ) {
        let source: String = points
            .iter()
            .map(|&p| char::from_u32(p % 0x0011_0000).unwrap_or('\u{FFFD}'))
            .collect();
        assert_lossless(&source);
    }

    #[test]
    fn rust_flavoured_soup_round_trips(
        picks in vec(0usize..FRAGMENTS.len(), 0..40),
    ) {
        let source: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        assert_lossless(&source);
    }
}

#[test]
fn token_kinds_cover_comments_strings_and_numbers() {
    let src = "// c\n/* b */ \"s\" 'c' 1.5 ident";
    let kinds: Vec<TokenKind> = scan(src)
        .into_iter()
        .filter(|t| !matches!(t.kind, TokenKind::Whitespace))
        .map(|t| t.kind)
        .collect();
    assert_eq!(
        kinds,
        vec![
            TokenKind::LineComment,
            TokenKind::BlockComment,
            TokenKind::Str,
            TokenKind::Char,
            TokenKind::Number,
            TokenKind::Ident,
        ]
    );
}
