use crate::ActiveError;
use hotspot_litho::{LithoOracle, OracleError};
use std::collections::BTreeSet;

/// The outcome of a fallible labelling pass ([`ActiveDataset::try_new`],
/// [`ActiveDataset::try_label_batch`]): which clips were labelled, how many
/// were hotspots, and which queries the oracle gave up on.
#[derive(Debug, Clone, Default)]
pub struct LabelBatchReport {
    /// Hotspots among the successfully labelled clips.
    pub hotspots: usize,
    /// Clips that were labelled (moved into `L` or `V`).
    pub labeled: Vec<usize>,
    /// Clips whose labels never arrived, with the terminal error. They stay
    /// in (or return to) the unlabeled pool — Algorithm 2 does not discard
    /// unselected query samples, and a failed label is treated the same way.
    pub failures: Vec<(usize, OracleError)>,
}

impl LabelBatchReport {
    /// Whether every requested label arrived.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Index bookkeeping for the active-learning split: labelled training set
/// `L`, validation set `V`, and unlabeled pool `U` over a benchmark's clip
/// indices.
///
/// Labels enter the dataset only through a metered [`LithoOracle`], so the
/// litho-clip accounting of Eq. 2 is enforced by construction.
#[derive(Debug, Clone)]
pub struct ActiveDataset {
    labeled: Vec<usize>,
    labeled_classes: Vec<usize>,
    validation: Vec<usize>,
    validation_classes: Vec<usize>,
    unlabeled: Vec<usize>,
    unlabeled_set: BTreeSet<usize>,
}

impl ActiveDataset {
    /// Builds the initial split: `initial_train` and `validation` indices are
    /// labelled through the oracle, everything else in `0..total` becomes the
    /// unlabeled pool.
    ///
    /// # Panics
    ///
    /// Panics when an index repeats across the splits or exceeds `total`.
    pub fn new<O: LithoOracle + ?Sized>(
        total: usize,
        initial_train: &[usize],
        validation: &[usize],
        oracle: &mut O,
    ) -> Self {
        let (dataset, report) = Self::try_new(total, initial_train, validation, oracle);
        if let Some((_, error)) = report.failures.first() {
            // lithohd-lint: allow(panic-safety) — documented panicking convenience API; fallible twin is `try_new`
            panic!("{error}");
        }
        dataset
    }

    /// Fallible variant of [`ActiveDataset::new`]: split members whose oracle
    /// query fails are *not* labelled — they land in the unlabeled pool and
    /// are reported in the returned [`LabelBatchReport`], so a degraded run
    /// can proceed with the split members that did label.
    ///
    /// # Panics
    ///
    /// Panics when an index repeats across the splits or exceeds `total`
    /// (caller bugs, not oracle faults).
    pub fn try_new<O: LithoOracle + ?Sized>(
        total: usize,
        initial_train: &[usize],
        validation: &[usize],
        oracle: &mut O,
    ) -> (Self, LabelBatchReport) {
        let mut seen = BTreeSet::new();
        for &i in initial_train.iter().chain(validation) {
            assert!(i < total, "split index {i} out of range ({total} clips)");
            assert!(
                seen.insert(i),
                "index {i} appears twice in the initial split"
            );
        }
        let mut report = LabelBatchReport::default();
        let mut labeled = Vec::with_capacity(initial_train.len());
        let mut labeled_classes = Vec::with_capacity(initial_train.len());
        // Both splits are labelled through the batch API so a sharded
        // oracle can fan each group out across workers; the default
        // implementation degrades to the sequential per-clip loop.
        for (&i, result) in initial_train
            .iter()
            .zip(oracle.try_query_batch(initial_train))
        {
            match result {
                Ok(label) => {
                    report.hotspots += label.is_hotspot() as usize;
                    report.labeled.push(i);
                    labeled.push(i);
                    labeled_classes.push(label.class_index());
                }
                Err(error) => {
                    seen.remove(&i);
                    report.failures.push((i, error));
                }
            }
        }
        let mut validation_kept = Vec::with_capacity(validation.len());
        let mut validation_classes = Vec::with_capacity(validation.len());
        for (&i, result) in validation.iter().zip(oracle.try_query_batch(validation)) {
            match result {
                Ok(label) => {
                    report.hotspots += label.is_hotspot() as usize;
                    report.labeled.push(i);
                    validation_kept.push(i);
                    validation_classes.push(label.class_index());
                }
                Err(error) => {
                    seen.remove(&i);
                    report.failures.push((i, error));
                }
            }
        }
        let unlabeled: Vec<usize> = (0..total).filter(|i| !seen.contains(i)).collect();
        let unlabeled_set = unlabeled.iter().copied().collect();
        (
            ActiveDataset {
                labeled,
                labeled_classes,
                validation: validation_kept,
                validation_classes,
                unlabeled,
                unlabeled_set,
            },
            report,
        )
    }

    /// Rebuilds a dataset from persisted parts (checkpoint restore). The
    /// unlabeled pool is not an input: it is recomputed as the ascending
    /// complement of `labeled ∪ validation` over `0..total`, which is exactly
    /// the invariant the labelling paths maintain (the pool starts ascending
    /// and `retain` preserves order).
    ///
    /// No oracle is involved — the class vectors are trusted as already paid
    /// for, so restoring a checkpoint never re-bills litho simulations.
    ///
    /// # Errors
    ///
    /// Returns [`ActiveError::Checkpoint`] when the parts are inconsistent:
    /// mismatched index/class lengths, an out-of-range index, a class other
    /// than 0/1, or an index appearing twice.
    pub fn from_parts(
        total: usize,
        labeled: Vec<usize>,
        labeled_classes: Vec<usize>,
        validation: Vec<usize>,
        validation_classes: Vec<usize>,
    ) -> Result<Self, ActiveError> {
        let bad = |detail: String| ActiveError::Checkpoint { detail };
        if labeled.len() != labeled_classes.len() {
            return Err(bad(format!(
                "labeled indices/classes length mismatch: {} vs {}",
                labeled.len(),
                labeled_classes.len()
            )));
        }
        if validation.len() != validation_classes.len() {
            return Err(bad(format!(
                "validation indices/classes length mismatch: {} vs {}",
                validation.len(),
                validation_classes.len()
            )));
        }
        let mut seen = BTreeSet::new();
        for &i in labeled.iter().chain(&validation) {
            if i >= total {
                return Err(bad(format!("index {i} out of range ({total} clips)")));
            }
            if !seen.insert(i) {
                return Err(bad(format!("index {i} appears twice in the split")));
            }
        }
        for &c in labeled_classes.iter().chain(&validation_classes) {
            if c > 1 {
                return Err(bad(format!("class index {c} is not a binary label")));
            }
        }
        let unlabeled: Vec<usize> = (0..total).filter(|i| !seen.contains(i)).collect();
        let unlabeled_set = unlabeled.iter().copied().collect();
        Ok(ActiveDataset {
            labeled,
            labeled_classes,
            validation,
            validation_classes,
            unlabeled,
            unlabeled_set,
        })
    }

    /// Labelled training indices.
    pub fn labeled(&self) -> &[usize] {
        &self.labeled
    }

    /// Class index (0/1) of each labelled clip, aligned with
    /// [`ActiveDataset::labeled`].
    pub fn labeled_classes(&self) -> &[usize] {
        &self.labeled_classes
    }

    /// Validation indices.
    pub fn validation(&self) -> &[usize] {
        &self.validation
    }

    /// Class index of each validation clip.
    pub fn validation_classes(&self) -> &[usize] {
        &self.validation_classes
    }

    /// Current unlabeled pool (stable order).
    pub fn unlabeled(&self) -> &[usize] {
        &self.unlabeled
    }

    /// Whether `index` is still unlabeled.
    pub fn is_unlabeled(&self, index: usize) -> bool {
        self.unlabeled_set.contains(&index)
    }

    /// Moves clips from the unlabeled pool into the labelled set, paying for
    /// their labels through the oracle. Returns how many were hotspots.
    ///
    /// # Panics
    ///
    /// Panics when an index is not currently unlabeled.
    pub fn label_batch<O: LithoOracle + ?Sized>(
        &mut self,
        batch: &[usize],
        oracle: &mut O,
    ) -> usize {
        let report = self.try_label_batch(batch, oracle);
        if let Some((_, error)) = report.failures.first() {
            // lithohd-lint: allow(panic-safety) — documented panicking convenience API; fallible twin is `try_label_batch`
            panic!("{error}");
        }
        report.hotspots
    }

    /// Fallible variant of [`ActiveDataset::label_batch`]: clips whose label
    /// never arrives stay in the unlabeled pool (they may be re-selected and
    /// re-tried on a later iteration) and are reported as failures, letting
    /// the caller proceed with the partial batch.
    ///
    /// # Panics
    ///
    /// Panics when an index is not currently unlabeled (a caller bug).
    pub fn try_label_batch<O: LithoOracle + ?Sized>(
        &mut self,
        batch: &[usize],
        oracle: &mut O,
    ) -> LabelBatchReport {
        let mut report = LabelBatchReport::default();
        let mut requested = BTreeSet::new();
        for &i in batch {
            assert!(
                self.unlabeled_set.contains(&i),
                "clip {i} is not in the unlabeled pool"
            );
            assert!(requested.insert(i), "clip {i} appears twice in the batch");
        }
        for (&i, result) in batch.iter().zip(oracle.try_query_batch(batch)) {
            match result {
                Ok(label) => {
                    self.unlabeled_set.remove(&i);
                    report.hotspots += label.is_hotspot() as usize;
                    report.labeled.push(i);
                    self.labeled.push(i);
                    self.labeled_classes.push(label.class_index());
                }
                Err(error) => report.failures.push((i, error)),
            }
        }
        if !report.labeled.is_empty() {
            self.unlabeled.retain(|i| self.unlabeled_set.contains(i));
        }
        report
    }

    /// Hotspots in the labelled training set (`#HS_Train` of Eq. 1).
    pub fn train_hotspots(&self) -> usize {
        self.labeled_classes.iter().filter(|&&c| c == 1).count()
    }

    /// Hotspots in the validation set (`#HS_Val` of Eq. 1).
    pub fn validation_hotspots(&self) -> usize {
        self.validation_classes.iter().filter(|&&c| c == 1).count()
    }

    /// Whether the labelled set contains both classes (needed before the
    /// classifier can be trained meaningfully).
    pub fn has_both_classes(&self) -> bool {
        self.train_hotspots() > 0 && self.train_hotspots() < self.labeled.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_litho::{CountingOracle, FaultRates, FaultyOracle, Label};

    fn oracle() -> CountingOracle {
        // Clips 0..10; indices 0, 3, 6, 9 are hotspots.
        CountingOracle::new(
            (0..10)
                .map(|i| {
                    if i % 3 == 0 {
                        Label::Hotspot
                    } else {
                        Label::NonHotspot
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn initial_split_pays_for_labels() {
        let mut o = oracle();
        let ds = ActiveDataset::new(10, &[0, 1], &[2, 3], &mut o);
        assert_eq!(o.unique_queries(), 4);
        assert_eq!(ds.labeled(), &[0, 1]);
        assert_eq!(ds.labeled_classes(), &[1, 0]);
        assert_eq!(ds.validation_classes(), &[0, 1]);
        assert_eq!(ds.unlabeled().len(), 6);
        assert_eq!(ds.train_hotspots(), 1);
        assert_eq!(ds.validation_hotspots(), 1);
    }

    #[test]
    fn label_batch_moves_and_counts() {
        let mut o = oracle();
        let mut ds = ActiveDataset::new(10, &[0], &[1], &mut o);
        let hs = ds.label_batch(&[6, 7], &mut o);
        assert_eq!(hs, 1);
        assert_eq!(ds.labeled(), &[0, 6, 7]);
        assert!(!ds.is_unlabeled(6));
        assert!(ds.is_unlabeled(8));
        assert_eq!(o.unique_queries(), 4);
    }

    #[test]
    fn has_both_classes_tracks_composition() {
        let mut o = oracle();
        let mut ds = ActiveDataset::new(10, &[0], &[1], &mut o);
        assert!(!ds.has_both_classes()); // only a hotspot so far
        ds.label_batch(&[2], &mut o);
        assert!(ds.has_both_classes());
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_split_index_panics() {
        let mut o = oracle();
        let _ = ActiveDataset::new(10, &[0, 1], &[1], &mut o);
    }

    #[test]
    #[should_panic(expected = "not in the unlabeled pool")]
    fn labelling_a_labeled_clip_panics() {
        let mut o = oracle();
        let mut ds = ActiveDataset::new(10, &[0], &[1], &mut o);
        ds.label_batch(&[0], &mut o);
    }

    #[test]
    fn unlabeled_order_is_stable() {
        let mut o = oracle();
        let mut ds = ActiveDataset::new(10, &[5], &[], &mut o);
        ds.label_batch(&[3, 8], &mut o);
        assert_eq!(ds.unlabeled(), &[0, 1, 2, 4, 6, 7, 9]);
    }

    #[test]
    fn from_parts_reconstructs_a_labelled_dataset_without_the_oracle() {
        let mut o = oracle();
        let mut ds = ActiveDataset::new(10, &[5], &[2], &mut o);
        ds.label_batch(&[3, 8], &mut o);
        let rebuilt = ActiveDataset::from_parts(
            10,
            ds.labeled().to_vec(),
            ds.labeled_classes().to_vec(),
            ds.validation().to_vec(),
            ds.validation_classes().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt.labeled(), ds.labeled());
        assert_eq!(rebuilt.labeled_classes(), ds.labeled_classes());
        assert_eq!(rebuilt.validation(), ds.validation());
        assert_eq!(rebuilt.validation_classes(), ds.validation_classes());
        assert_eq!(rebuilt.unlabeled(), ds.unlabeled());
        assert_eq!(o.unique_queries(), 4, "from_parts must not re-bill");
    }

    #[test]
    fn from_parts_rejects_inconsistent_parts() {
        // Length mismatch.
        assert!(ActiveDataset::from_parts(10, vec![0], vec![], vec![], vec![]).is_err());
        // Out of range.
        assert!(ActiveDataset::from_parts(10, vec![10], vec![0], vec![], vec![]).is_err());
        // Duplicate across splits.
        assert!(ActiveDataset::from_parts(10, vec![1], vec![0], vec![1], vec![0]).is_err());
        // Non-binary class.
        assert!(ActiveDataset::from_parts(10, vec![1], vec![2], vec![], vec![]).is_err());
    }

    fn broken_oracle(clips: &[usize]) -> FaultyOracle<CountingOracle> {
        FaultyOracle::new(oracle(), FaultRates::default(), 0)
            .with_permanent_failures(clips.iter().copied())
    }

    #[test]
    fn try_new_returns_failed_split_members_to_the_pool() {
        let mut o = broken_oracle(&[1, 3]);
        let (ds, report) = ActiveDataset::try_new(10, &[0, 1], &[2, 3], &mut o);
        assert_eq!(ds.labeled(), &[0]);
        assert_eq!(ds.validation(), &[2]);
        assert_eq!(report.labeled, &[0, 2]);
        assert_eq!(report.failures.len(), 2);
        assert!(ds.is_unlabeled(1) && ds.is_unlabeled(3));
        assert_eq!(ds.unlabeled().len(), 8);
    }

    #[test]
    fn try_label_batch_keeps_failed_clips_unlabeled() {
        let mut o = broken_oracle(&[7]);
        let (mut ds, _) = ActiveDataset::try_new(10, &[0], &[1], &mut o);
        let report = ds.try_label_batch(&[6, 7, 8], &mut o);
        assert_eq!(report.labeled, &[6, 8]);
        assert_eq!(report.hotspots, 1); // clip 6 is a hotspot
        assert_eq!(report.failures.len(), 1);
        assert!(!report.is_complete());
        assert!(ds.is_unlabeled(7), "failed clip stays in the pool");
        assert_eq!(ds.labeled(), &[0, 6, 8]);
        // The failed clip can be re-attempted later without panicking.
        let again = ds.try_label_batch(&[7], &mut o);
        assert_eq!(again.failures.len(), 1);
    }

    #[test]
    #[should_panic(expected = "permanent simulation failure")]
    fn infallible_label_batch_panics_on_oracle_faults() {
        let mut o = broken_oracle(&[9]);
        let (mut ds, _) = ActiveDataset::try_new(10, &[0], &[1], &mut o);
        let _ = ds.label_batch(&[9], &mut o);
    }
}
