use hotspot_litho::LithoOracle;
use std::collections::HashSet;

/// Index bookkeeping for the active-learning split: labelled training set
/// `L`, validation set `V`, and unlabeled pool `U` over a benchmark's clip
/// indices.
///
/// Labels enter the dataset only through a metered [`LithoOracle`], so the
/// litho-clip accounting of Eq. 2 is enforced by construction.
#[derive(Debug, Clone)]
pub struct ActiveDataset {
    labeled: Vec<usize>,
    labeled_classes: Vec<usize>,
    validation: Vec<usize>,
    validation_classes: Vec<usize>,
    unlabeled: Vec<usize>,
    unlabeled_set: HashSet<usize>,
}

impl ActiveDataset {
    /// Builds the initial split: `initial_train` and `validation` indices are
    /// labelled through the oracle, everything else in `0..total` becomes the
    /// unlabeled pool.
    ///
    /// # Panics
    ///
    /// Panics when an index repeats across the splits or exceeds `total`.
    pub fn new<O: LithoOracle>(
        total: usize,
        initial_train: &[usize],
        validation: &[usize],
        oracle: &mut O,
    ) -> Self {
        let mut seen = HashSet::with_capacity(initial_train.len() + validation.len());
        for &i in initial_train.iter().chain(validation) {
            assert!(i < total, "split index {i} out of range ({total} clips)");
            assert!(
                seen.insert(i),
                "index {i} appears twice in the initial split"
            );
        }
        let labeled_classes = initial_train
            .iter()
            .map(|&i| oracle.query(i).class_index())
            .collect();
        let validation_classes = validation
            .iter()
            .map(|&i| oracle.query(i).class_index())
            .collect();
        let unlabeled: Vec<usize> = (0..total).filter(|i| !seen.contains(i)).collect();
        let unlabeled_set = unlabeled.iter().copied().collect();
        ActiveDataset {
            labeled: initial_train.to_vec(),
            labeled_classes,
            validation: validation.to_vec(),
            validation_classes,
            unlabeled,
            unlabeled_set,
        }
    }

    /// Labelled training indices.
    pub fn labeled(&self) -> &[usize] {
        &self.labeled
    }

    /// Class index (0/1) of each labelled clip, aligned with
    /// [`ActiveDataset::labeled`].
    pub fn labeled_classes(&self) -> &[usize] {
        &self.labeled_classes
    }

    /// Validation indices.
    pub fn validation(&self) -> &[usize] {
        &self.validation
    }

    /// Class index of each validation clip.
    pub fn validation_classes(&self) -> &[usize] {
        &self.validation_classes
    }

    /// Current unlabeled pool (stable order).
    pub fn unlabeled(&self) -> &[usize] {
        &self.unlabeled
    }

    /// Whether `index` is still unlabeled.
    pub fn is_unlabeled(&self, index: usize) -> bool {
        self.unlabeled_set.contains(&index)
    }

    /// Moves clips from the unlabeled pool into the labelled set, paying for
    /// their labels through the oracle. Returns how many were hotspots.
    ///
    /// # Panics
    ///
    /// Panics when an index is not currently unlabeled.
    pub fn label_batch<O: LithoOracle>(&mut self, batch: &[usize], oracle: &mut O) -> usize {
        let mut hotspots = 0;
        for &i in batch {
            assert!(
                self.unlabeled_set.remove(&i),
                "clip {i} is not in the unlabeled pool"
            );
            let label = oracle.query(i);
            hotspots += label.is_hotspot() as usize;
            self.labeled.push(i);
            self.labeled_classes.push(label.class_index());
        }
        if !batch.is_empty() {
            self.unlabeled.retain(|i| self.unlabeled_set.contains(i));
        }
        hotspots
    }

    /// Hotspots in the labelled training set (`#HS_Train` of Eq. 1).
    pub fn train_hotspots(&self) -> usize {
        self.labeled_classes.iter().filter(|&&c| c == 1).count()
    }

    /// Hotspots in the validation set (`#HS_Val` of Eq. 1).
    pub fn validation_hotspots(&self) -> usize {
        self.validation_classes.iter().filter(|&&c| c == 1).count()
    }

    /// Whether the labelled set contains both classes (needed before the
    /// classifier can be trained meaningfully).
    pub fn has_both_classes(&self) -> bool {
        self.train_hotspots() > 0 && self.train_hotspots() < self.labeled.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_litho::{CountingOracle, Label};

    fn oracle() -> CountingOracle {
        // Clips 0..10; indices 0, 3, 6, 9 are hotspots.
        CountingOracle::new(
            (0..10)
                .map(|i| {
                    if i % 3 == 0 {
                        Label::Hotspot
                    } else {
                        Label::NonHotspot
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn initial_split_pays_for_labels() {
        let mut o = oracle();
        let ds = ActiveDataset::new(10, &[0, 1], &[2, 3], &mut o);
        assert_eq!(o.unique_queries(), 4);
        assert_eq!(ds.labeled(), &[0, 1]);
        assert_eq!(ds.labeled_classes(), &[1, 0]);
        assert_eq!(ds.validation_classes(), &[0, 1]);
        assert_eq!(ds.unlabeled().len(), 6);
        assert_eq!(ds.train_hotspots(), 1);
        assert_eq!(ds.validation_hotspots(), 1);
    }

    #[test]
    fn label_batch_moves_and_counts() {
        let mut o = oracle();
        let mut ds = ActiveDataset::new(10, &[0], &[1], &mut o);
        let hs = ds.label_batch(&[6, 7], &mut o);
        assert_eq!(hs, 1);
        assert_eq!(ds.labeled(), &[0, 6, 7]);
        assert!(!ds.is_unlabeled(6));
        assert!(ds.is_unlabeled(8));
        assert_eq!(o.unique_queries(), 4);
    }

    #[test]
    fn has_both_classes_tracks_composition() {
        let mut o = oracle();
        let mut ds = ActiveDataset::new(10, &[0], &[1], &mut o);
        assert!(!ds.has_both_classes()); // only a hotspot so far
        ds.label_batch(&[2], &mut o);
        assert!(ds.has_both_classes());
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_split_index_panics() {
        let mut o = oracle();
        let _ = ActiveDataset::new(10, &[0, 1], &[1], &mut o);
    }

    #[test]
    #[should_panic(expected = "not in the unlabeled pool")]
    fn labelling_a_labeled_clip_panics() {
        let mut o = oracle();
        let mut ds = ActiveDataset::new(10, &[0], &[1], &mut o);
        ds.label_batch(&[0], &mut o);
    }

    #[test]
    fn unlabeled_order_is_stable() {
        let mut o = oracle();
        let mut ds = ActiveDataset::new(10, &[5], &[], &mut o);
        ds.label_batch(&[3, 8], &mut o);
        assert_eq!(ds.unlabeled(), &[0, 1, 2, 4, 6, 7, 9]);
    }
}
