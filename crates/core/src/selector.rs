use crate::{
    diversity_scores, entropy_weights, normalize_scores, uncertainty_scores, AblationConfig,
    WeightMode,
};
use hotspot_nn::Matrix;
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Everything a batch selector may inspect about the current query set `Q`.
///
/// Rows of `logits` / `probabilities` / `embeddings` correspond 1:1 to query
/// clips; returned indices are positions in this query set, not benchmark
/// indices.
#[derive(Debug)]
pub struct SelectionContext<'a> {
    /// Raw model logits of the query clips (`n × 2`).
    pub logits: &'a Matrix,
    /// Calibrated two-class probabilities, row-major `n × 2` (Eq. 5).
    pub probabilities: &'a [f32],
    /// Penultimate-layer embeddings of the query clips.
    pub embeddings: &'a Matrix,
    /// Batch size to select.
    pub k: usize,
    /// Decision boundary `h` of Eq. 6.
    pub boundary_h: f32,
    /// Weighting mode for combining the two scores.
    pub weight_mode: WeightMode,
    /// Component ablation switches.
    pub ablation: AblationConfig,
    /// Deterministic seed for stochastic selectors.
    pub rng_seed: u64,
}

impl SelectionContext<'_> {
    /// Number of query clips.
    pub fn len(&self) -> usize {
        self.logits.rows()
    }

    /// Whether the query set is empty.
    pub fn is_empty(&self) -> bool {
        self.logits.rows() == 0
    }
}

/// A batch-mode selection strategy: picks up to `k` query-set rows to label.
pub trait BatchSelector: std::fmt::Debug {
    /// Selects query-set indices (unique, at most `ctx.k`).
    fn select(&mut self, ctx: &SelectionContext<'_>) -> Vec<usize>;

    /// Short name used in experiment tables.
    fn name(&self) -> &'static str;

    /// The `(ω₁, ω₂)` weights of the most recent selection, when the
    /// strategy computes any (only the entropy selector does).
    fn last_weights(&self) -> Option<(f64, f64)> {
        None
    }
}

/// Algorithm 1 of the paper: the entropy-based batch selector combining
/// calibrated hotspot-aware uncertainty with min-distance diversity under
/// dynamic entropy weights.
#[derive(Debug, Default, Clone)]
pub struct EntropySelector {
    last_weights: Option<(f64, f64)>,
}

impl EntropySelector {
    /// Creates the selector.
    pub fn new() -> Self {
        EntropySelector { last_weights: None }
    }
}

impl BatchSelector for EntropySelector {
    fn select(&mut self, ctx: &SelectionContext<'_>) -> Vec<usize> {
        if ctx.is_empty() || ctx.k == 0 {
            return Vec::new();
        }
        let use_u = ctx.ablation.uncertainty;
        let use_d = ctx.ablation.diversity;
        let f = if use_u {
            uncertainty_scores(ctx.probabilities, ctx.boundary_h)
        } else {
            vec![0.0; ctx.len()]
        };
        let d = if use_d {
            diversity_scores(ctx.embeddings)
        } else {
            vec![0.0; ctx.len()]
        };
        let scores = match (use_u, use_d) {
            (true, false) => normalize_scores(&f),
            (false, true) => normalize_scores(&d),
            _ => {
                let (w1, w2) = match ctx.weight_mode {
                    WeightMode::Entropy => entropy_weights(&f, &d),
                    WeightMode::Fixed { omega2 } => (1.0 - omega2, omega2),
                };
                self.last_weights = Some((w1, w2));
                let nf = normalize_scores(&f);
                let nd = normalize_scores(&d);
                nf.iter()
                    .zip(&nd)
                    .map(|(&a, &b)| (w1 * a as f64 + w2 * b as f64) as f32)
                    .collect()
            }
        };
        let picked = top_k(&scores, ctx.k);
        record_selection(self.name(), ctx.len(), picked.len());
        picked
    }

    fn name(&self) -> &'static str {
        "entropy"
    }

    fn last_weights(&self) -> Option<(f64, f64)> {
        self.last_weights
    }
}

/// The "TS" baseline of Table II: calibrated uncertainty only (temperature
/// scaling without the diversity term or entropy weighting).
#[derive(Debug, Default, Clone)]
pub struct UncertaintySelector;

impl UncertaintySelector {
    /// Creates the selector.
    pub fn new() -> Self {
        UncertaintySelector
    }
}

impl BatchSelector for UncertaintySelector {
    fn select(&mut self, ctx: &SelectionContext<'_>) -> Vec<usize> {
        if ctx.is_empty() || ctx.k == 0 {
            return Vec::new();
        }
        let f = uncertainty_scores(ctx.probabilities, ctx.boundary_h);
        let picked = top_k(&f, ctx.k);
        record_selection(self.name(), ctx.len(), picked.len());
        picked
    }

    fn name(&self) -> &'static str {
        "ts"
    }
}

/// Uniform random batch selection — the weakest sensible baseline.
#[derive(Debug, Default, Clone)]
pub struct RandomSelector;

impl RandomSelector {
    /// Creates the selector.
    pub fn new() -> Self {
        RandomSelector
    }
}

impl BatchSelector for RandomSelector {
    fn select(&mut self, ctx: &SelectionContext<'_>) -> Vec<usize> {
        let mut rng = ChaCha8Rng::seed_from_u64(ctx.rng_seed);
        let mut indices: Vec<usize> = (0..ctx.len()).collect();
        indices.shuffle(&mut rng);
        indices.truncate(ctx.k);
        record_selection(self.name(), ctx.len(), indices.len());
        indices
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Records a completed batch selection: accumulates the pool size into the
/// `selector.query.size` counter and emits a debug event. Selector
/// implementations (here and in the baselines crate) call this once per
/// [`BatchSelector::select`] so query volume is comparable across methods.
pub fn record_selection(name: &'static str, pool: usize, picked: usize) {
    hotspot_telemetry::counter(hotspot_telemetry::names::SELECTOR_QUERY_SIZE).add(pool as u64);
    hotspot_telemetry::counter(hotspot_telemetry::names::SELECTOR_BATCHES).incr();
    hotspot_telemetry::debug(
        "selector",
        "batch selected",
        &[
            ("selector", name.into()),
            ("pool", (pool as u64).into()),
            ("picked", (picked as u64).into()),
        ],
    );
}

/// Indices of the `k` largest scores, ties broken towards lower index.
pub(crate) fn top_k(scores: &[f32], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order.truncate(k);
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn context<'a>(
        logits: &'a Matrix,
        probabilities: &'a [f32],
        embeddings: &'a Matrix,
        k: usize,
    ) -> SelectionContext<'a> {
        SelectionContext {
            logits,
            probabilities,
            embeddings,
            k,
            boundary_h: 0.4,
            weight_mode: WeightMode::Entropy,
            ablation: AblationConfig::default(),
            rng_seed: 7,
        }
    }

    /// Four query clips: two confident non-hotspots (one a duplicate),
    /// one boundary-hovering hotspot-like sample, one confident hotspot.
    fn fixture() -> (Matrix, Vec<f32>, Matrix) {
        let logits = Matrix::from_rows(&[
            vec![3.0, -3.0],
            vec![3.0, -3.0],
            vec![0.1, -0.1],
            vec![-3.0, 3.0],
        ])
        .unwrap();
        let probabilities = vec![
            0.95, 0.05, //
            0.95, 0.05, //
            0.55, 0.45, //
            0.05, 0.95,
        ];
        let embeddings = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ])
        .unwrap();
        (logits, probabilities, embeddings)
    }

    #[test]
    fn entropy_selector_prefers_uncertain_and_diverse() {
        let (logits, probs, emb) = fixture();
        let ctx = context(&logits, &probs, &emb, 2);
        let picked = EntropySelector::new().select(&ctx);
        assert_eq!(picked.len(), 2);
        // The boundary sample (2) must be picked; the duplicate pair (0, 1)
        // must not be picked together.
        assert!(picked.contains(&2), "{picked:?}");
        assert!(!(picked.contains(&0) && picked.contains(&1)), "{picked:?}");
    }

    #[test]
    fn entropy_selector_records_weights() {
        let (logits, probs, emb) = fixture();
        let ctx = context(&logits, &probs, &emb, 2);
        let mut sel = EntropySelector::new();
        let _ = sel.select(&ctx);
        let (w1, w2) = sel.last_weights().expect("weights recorded");
        assert!((w1 + w2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ablation_without_diversity_ranks_by_uncertainty() {
        let (logits, probs, emb) = fixture();
        let mut ctx = context(&logits, &probs, &emb, 1);
        ctx.ablation.diversity = false;
        let picked = EntropySelector::new().select(&ctx);
        assert_eq!(picked, vec![2]);
    }

    #[test]
    fn ablation_without_uncertainty_ranks_by_diversity() {
        let (logits, probs, emb) = fixture();
        let mut ctx = context(&logits, &probs, &emb, 2);
        ctx.ablation.uncertainty = false;
        let picked = EntropySelector::new().select(&ctx);
        // Duplicates (0, 1) score zero diversity; the two singletons win.
        assert!(picked.contains(&2) && picked.contains(&3), "{picked:?}");
    }

    #[test]
    fn fixed_weights_mode_applies() {
        let (logits, probs, emb) = fixture();
        let mut ctx = context(&logits, &probs, &emb, 2);
        ctx.weight_mode = WeightMode::Fixed { omega2: 1.0 };
        let picked = EntropySelector::new().select(&ctx);
        // ω₂ = 1 is pure diversity.
        assert!(
            picked.contains(&2) && picked.contains(&3) || picked.contains(&3),
            "{picked:?}"
        );
        assert!(!(picked.contains(&0) && picked.contains(&1)));
    }

    #[test]
    fn ts_selector_ignores_diversity() {
        let (logits, probs, emb) = fixture();
        let ctx = context(&logits, &probs, &emb, 2);
        let picked = UncertaintySelector::new().select(&ctx);
        // Top-2 by hotspot-aware uncertainty: boundary sample then the
        // confident hotspot (both take the σ⁽⁰⁾ + h branch).
        assert_eq!(picked, vec![2, 3]);
    }

    #[test]
    fn random_selector_is_deterministic_per_seed() {
        let (logits, probs, emb) = fixture();
        let ctx = context(&logits, &probs, &emb, 2);
        let a = RandomSelector::new().select(&ctx);
        let b = RandomSelector::new().select(&ctx);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn empty_query_set_selects_nothing() {
        let logits = Matrix::zeros(0, 2);
        let emb = Matrix::zeros(0, 3);
        let ctx = context(&logits, &[], &emb, 3);
        assert!(EntropySelector::new().select(&ctx).is_empty());
        assert!(UncertaintySelector::new().select(&ctx).is_empty());
        assert!(RandomSelector::new().select(&ctx).is_empty());
    }

    #[test]
    fn k_larger_than_pool_returns_all() {
        let (logits, probs, emb) = fixture();
        let ctx = context(&logits, &probs, &emb, 99);
        let picked = EntropySelector::new().select(&ctx);
        assert_eq!(picked.len(), 4);
    }

    #[test]
    fn top_k_tie_breaks_to_lower_index() {
        assert_eq!(top_k(&[0.5, 0.9, 0.5], 2), vec![1, 0]);
    }
}
