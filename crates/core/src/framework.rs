use crate::{
    diversity_scores, uncertainty_scores, ActiveDataset, ActiveError, BatchSelector,
    CheckpointHook, DatasetCheckpoint, HotspotModel, NoCheckpoint, PshdMetrics, RunCheckpoint,
    SamplingConfig, SelectionContext,
};
use hotspot_calibration::{ReliabilityDiagram, Temperature};
use hotspot_gmm::{GaussianMixture, GmmConfig};
use hotspot_layout::GeneratedBenchmark;
use hotspot_litho::{Label, LithoOracle, OracleStats};
use hotspot_nn::Matrix;
use hotspot_telemetry as telemetry;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Telemetry of one sampling iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Iteration number (1-based).
    pub iteration: usize,
    /// Fitted softmax temperature for this iteration.
    pub temperature: f64,
    /// Dynamic `(ω₁, ω₂)` if the selector reports them.
    pub weights: Option<(f64, f64)>,
    /// Hotspots found in the sampled batch.
    pub batch_hotspots: usize,
    /// Labelled-set size after the iteration.
    pub labeled_size: usize,
    /// Final training loss of the update step.
    pub train_loss: f64,
    /// Validation ECE at this iteration's fitted temperature (Eq. 3).
    pub ece: f64,
    /// Batch members whose label never arrived; they were returned to the
    /// unlabeled pool and the iteration proceeded with the partial batch.
    pub failed_labels: usize,
}

/// Fault-handling telemetry of one full run: what the degradation-aware
/// Algorithm-2 loop absorbed instead of aborting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct RunFaultStats {
    /// Labelling attempts that terminally failed; the affected clips were
    /// returned to the unlabeled pool (initial split, top-up, and batch
    /// members combined).
    pub label_failures: usize,
    /// Oracle retries absorbed during this run (retry-wrapper meter delta).
    pub oracle_retries: usize,
    /// Oracle giveups during this run (retry-wrapper meter delta).
    pub oracle_giveups: usize,
    /// Quorum votes cast during this run.
    pub quorum_votes: usize,
    /// Training updates rolled back because the loss went non-finite.
    pub nan_rollbacks: usize,
    /// Temperature fits that failed and fell back to `T = 1`.
    pub temperature_fallbacks: usize,
}

impl RunFaultStats {
    /// Whether the run had to degrade: labels were lost, a training update
    /// was rolled back, or calibration fell back to the identity
    /// temperature. Absorbed retries and quorum votes alone do not degrade
    /// a run — they only cost simulations.
    pub fn is_degraded(&self) -> bool {
        self.label_failures > 0
            || self.oracle_giveups > 0
            || self.nan_rollbacks > 0
            || self.temperature_fallbacks > 0
    }
}

/// The result of one full PSHD run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Evaluation metrics (Eq. 1–2).
    pub metrics: PshdMetrics,
    /// Per-iteration telemetry.
    pub history: Vec<IterationStats>,
    /// Temperature used for the final detection pass.
    pub final_temperature: f64,
    /// Validation ECE before calibration (T = 1).
    pub ece_before: f64,
    /// Validation ECE after temperature scaling.
    pub ece_after: f64,
    /// Name of the batch selector used.
    pub selector: String,
    /// Wall-clock time of the PSHD computation (excluding benchmark
    /// generation; litho cost is counted in clips, not seconds).
    pub elapsed: Duration,
    /// Benchmark indices of labelled clips (train + validation) — the
    /// litho-sampled positions of Fig. 5.
    pub sampled_indices: Vec<usize>,
    /// Benchmark indices the detector flagged in the unlabeled pool.
    pub predicted_hotspots: Vec<usize>,
    /// This run's oracle-meter delta (cross-checks Eq. 2: `unique` equals
    /// train + val labels plus billable quorum re-simulations).
    pub oracle_stats: OracleStats,
    /// Process-unique id tagging this run's telemetry events.
    pub run_id: u64,
    /// What the fault-tolerance layer absorbed during this run.
    pub fault_stats: RunFaultStats,
    /// Whether the run degraded (lost labels, rolled back a divergent
    /// update, or fell back to `T = 1`); see [`RunFaultStats::is_degraded`].
    pub degraded: bool,
}

/// Algorithm 2 of the paper: the overall pattern-sampling and hotspot-
/// detection flow.
///
/// See the [crate-level example](crate) for usage and DESIGN.md for the
/// paper-to-code mapping.
#[derive(Debug, Clone)]
pub struct SamplingFramework {
    config: SamplingConfig,
}

impl SamplingFramework {
    /// Creates a framework with the given configuration.
    pub fn new(config: SamplingConfig) -> Self {
        SamplingFramework { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SamplingConfig {
        &self.config
    }

    /// Runs the full flow on a generated benchmark with the given batch
    /// selector, deterministically in `seed`, against the benchmark's own
    /// fault-free metered oracle.
    ///
    /// # Errors
    ///
    /// Returns [`ActiveError::BenchmarkTooSmall`] when the initial split
    /// does not fit, and propagates substrate errors.
    pub fn run(
        &self,
        bench: &GeneratedBenchmark,
        selector: &mut dyn BatchSelector,
        seed: u64,
    ) -> Result<RunOutcome, ActiveError> {
        self.run_with_oracle(bench, selector, seed, &mut bench.oracle())
    }

    /// Runs the full flow against an explicit oracle — the degradation-aware
    /// entry point for fault-tolerant deployments (wrap the benchmark oracle
    /// in [`hotspot_litho::FaultyOracle`] / [`hotspot_litho::RetryOracle`]).
    ///
    /// The loop does not die on oracle faults: batch members whose label
    /// terminally fails are returned to the unlabeled pool (Algorithm 2
    /// keeps unselected query samples, and a failed label is treated the
    /// same way), the iteration proceeds with the partial batch, a
    /// non-finite training loss rolls the model back to its last good
    /// snapshot, and a failed temperature fit falls back to `T = 1`. The
    /// outcome's [`RunOutcome::fault_stats`] and [`RunOutcome::degraded`]
    /// report what was absorbed.
    ///
    /// For exact per-run Eq. 2 accounting pass a fresh oracle (or accept
    /// that [`RunOutcome::oracle_stats`] is the meter *delta* over this
    /// run).
    ///
    /// # Errors
    ///
    /// Returns [`ActiveError::BenchmarkTooSmall`] when the initial split
    /// does not fit, and propagates substrate errors.
    pub fn run_with_oracle<O: LithoOracle + ?Sized>(
        &self,
        bench: &GeneratedBenchmark,
        selector: &mut dyn BatchSelector,
        seed: u64,
        oracle: &mut O,
    ) -> Result<RunOutcome, ActiveError> {
        self.run_with_oracle_checkpointed(bench, selector, seed, oracle, &mut NoCheckpoint)
    }

    /// [`SamplingFramework::run_with_oracle`] with durable-run support: the
    /// [`CheckpointHook`] is offered a [`RunCheckpoint`] at each iteration
    /// boundary and may supply one to resume from.
    ///
    /// A resumed run skips the whole pre-loop phase — no re-billed split
    /// labels, no duplicate journal events — and continues bit-identically
    /// to the uninterrupted run: same selections, same metrics, same Eq. 2
    /// Litho#. The framework validates that the checkpoint matches this
    /// run's seed and benchmark shape, and that the oracle accepts its
    /// persisted cache, refusing to resume otherwise.
    ///
    /// # Errors
    ///
    /// Everything [`SamplingFramework::run_with_oracle`] returns, plus
    /// [`ActiveError::Checkpoint`] for mismatched or unusable resume state
    /// and whatever [`CheckpointHook::save`] propagates.
    pub fn run_with_oracle_checkpointed<O: LithoOracle + ?Sized>(
        &self,
        bench: &GeneratedBenchmark,
        selector: &mut dyn BatchSelector,
        seed: u64,
        oracle: &mut O,
        hook: &mut dyn CheckpointHook,
    ) -> Result<RunOutcome, ActiveError> {
        // lithohd-lint: allow(determinism-clock) — wall-clock run duration is reported, never branched on
        let start = Instant::now();
        let config = &self.config;
        let total = bench.len();
        if total < config.initial_split() + 2 {
            return Err(ActiveError::BenchmarkTooSmall {
                clips: total,
                required: config.initial_split() + 2,
            });
        }
        let resume_cp = match hook.resume() {
            Some(cp) => {
                validate_checkpoint(&cp, total, seed, config)?;
                Some(cp)
            }
            None => None,
        };
        // A resumed run keeps the interrupted run's id so its journal trail
        // reads as one run.
        let run_id = resume_cp
            .as_ref()
            .map_or_else(telemetry::next_run_id, |cp| cp.run_id);
        let _run_span = telemetry::span(telemetry::names::SPAN_RUN)
            .with("run_id", run_id)
            .with("selector", selector.name());

        // Standardised DCT features for the classifier; raw density features
        // for the mixture model. Both are unlabeled-data statistics, so no
        // label information leaks into preprocessing. Recomputed on resume
        // too: a pure function of the benchmark, emitting no telemetry.
        let dct = bench.dct_features();
        let (mean, std) = dct.column_stats();
        let standardized = dct.standardized(&mean, &std);
        let features = Matrix::from_flat(dct.rows(), dct.dim(), standardized.as_slice().to_vec());

        let state = match resume_cp {
            Some(cp) => resume_loop_state(cp, config, oracle, &features, seed, run_id)?,
            None => fresh_loop_state(bench, config, oracle, &features, seed, run_id, selector)?,
        };
        let LoopState {
            oracle_calls_before,
            stats_before,
            mut fault_stats,
            gmm,
            by_score,
            mut dataset,
            mut model,
            rng,
            ece_before,
            mut history,
            mut cold_batches,
            next_iteration,
            finished,
        } = state;

        #[allow(unused_assignments)] // re-fitted after the loop for detection
        let mut temperature = Temperature::identity();
        // Lines 6–13: iterative batch sampling. An empty range means the
        // checkpoint already covered every iteration (or the cold-batch stop
        // already fired); the run goes straight to detection.
        let last_iteration = if finished { 0 } else { config.iterations };
        for iteration in next_iteration..=last_iteration {
            let _iter_span = telemetry::span(telemetry::names::SPAN_ITERATION)
                .with("iteration", iteration as u64);
            // Line 7: query pool = n lowest-GMM-likelihood unlabeled clips.
            let query: Vec<usize> = by_score
                .iter()
                .copied()
                .filter(|&i| dataset.is_unlabeled(i))
                .take(config.query_pool)
                .collect();
            if query.is_empty() {
                break;
            }
            // Line 8: temperature fit on the validation set.
            temperature =
                self.fit_temperature_guarded(&model, &features, &dataset, run_id, &mut fault_stats);
            let (val_logits, _) = model.predict(&features.gather_rows(dataset.validation()));
            let diagram =
                validation_diagram(&val_logits, dataset.validation_classes(), temperature);
            emit_calibration_bins(run_id, "iteration", iteration, &diagram);
            let ece = diagram.ece();
            // Line 9: entropy sampling over the query set.
            let qx = features.gather_rows(&query);
            let (logits, embeddings) = model.predict(&qx);
            let probabilities = temperature.probabilities_batch(logits.as_slice(), 2);
            let ctx = SelectionContext {
                logits: &logits,
                probabilities: &probabilities,
                embeddings: &embeddings,
                k: config.batch,
                boundary_h: config.boundary_h,
                weight_mode: config.weight_mode,
                ablation: config.ablation,
                rng_seed: seed ^ iteration as u64,
            };
            let picked_local = {
                let _select_span =
                    telemetry::span(telemetry::names::SPAN_SELECT).with("pool", query.len() as u64);
                selector.select(&ctx)
            };
            let batch: Vec<usize> = picked_local.iter().map(|&i| query[i]).collect();
            if batch.is_empty() {
                break;
            }
            // Selection provenance for offline selection maps: one debug
            // event per pick with the scores the selector weighed. Scoring
            // is recomputed here, so gate on an attached sink to keep the
            // no-telemetry path free of the extra O(pool²) diversity pass.
            if telemetry::has_sinks() {
                let unc = uncertainty_scores(&probabilities, config.boundary_h);
                let div = diversity_scores(&embeddings);
                for (rank, &local) in picked_local.iter().enumerate() {
                    telemetry::debug(
                        "core.framework",
                        telemetry::names::EVENT_CLIP_SELECTED,
                        &[
                            ("run_id", run_id.into()),
                            ("iteration", (iteration as u64).into()),
                            ("clip", (query[local] as u64).into()),
                            ("rank", (rank as u64).into()),
                            ("uncertainty", f64::from(unc[local]).into()),
                            ("diversity", f64::from(div[local]).into()),
                        ],
                    );
                }
            }
            // Lines 10–12: pay for labels, extend L, update the model. A
            // label that never arrives does not abort the run: the clip
            // stays in the pool and the iteration proceeds with the partial
            // batch.
            let report = dataset.try_label_batch(&batch, oracle);
            let batch_hotspots = report.hotspots;
            let failed_labels = report.failures.len();
            if failed_labels > 0 {
                fault_stats.label_failures += failed_labels;
                telemetry::warn(
                    "core.framework",
                    "batch labels lost; proceeding with partial batch",
                    &[
                        ("run_id", run_id.into()),
                        ("iteration", (iteration as u64).into()),
                        ("failed", (failed_labels as u64).into()),
                        ("labeled", (report.labeled.len() as u64).into()),
                    ],
                );
            }
            let train_loss = if report.labeled.is_empty() {
                // The whole batch failed: nothing new to fit, skip the
                // update and carry the previous loss forward for the stats.
                history
                    .last()
                    .map_or(0.0, |s: &IterationStats| s.train_loss)
            } else {
                let x = features.gather_rows(dataset.labeled());
                guarded_train(
                    &mut model,
                    &x,
                    dataset.labeled_classes(),
                    config.update_epochs,
                    seed ^ (iteration as u64) << 8,
                    run_id,
                    &mut fault_stats,
                )?
            };
            let weights = selector.last_weights();
            let stats = IterationStats {
                iteration,
                temperature: temperature.value(),
                weights,
                batch_hotspots,
                labeled_size: dataset.labeled().len(),
                train_loss,
                ece,
                failed_labels,
            };
            emit_iteration(run_id, &stats, batch.len());
            history.push(stats);
            // Optional termination condition: the sampler has gone cold. The
            // tally is updated *before* any checkpoint so a resumed run
            // re-derives the same stop decision from `cold_batches` alone.
            let mut stop = false;
            if let Some(limit) = config.stop_after_cold_batches {
                if batch_hotspots == 0 {
                    cold_batches += 1;
                    stop = cold_batches >= limit;
                } else {
                    cold_batches = 0;
                }
            }
            if hook.wants_save(iteration) {
                let checkpoint = RunCheckpoint {
                    iteration,
                    seed,
                    run_id,
                    total,
                    by_score: by_score.clone(),
                    dataset: DatasetCheckpoint {
                        labeled: dataset.labeled().to_vec(),
                        labeled_classes: dataset.labeled_classes().to_vec(),
                        validation: dataset.validation().to_vec(),
                        validation_classes: dataset.validation_classes().to_vec(),
                    },
                    model: model.state(),
                    gmm: gmm.clone(),
                    temperature: temperature.value(),
                    ece_before,
                    history: history.clone(),
                    cold_batches,
                    fault_stats,
                    stats_before,
                    oracle_calls_before,
                    rng: rng.stream_state(),
                    oracle: oracle.state_snapshot(),
                };
                hook.save(&checkpoint)?;
            }
            if stop {
                break;
            }
        }

        // Final calibration and full-chip detection on the remaining pool.
        temperature =
            self.fit_temperature_guarded(&model, &features, &dataset, run_id, &mut fault_stats);
        let (val_logits, _) = model.predict(&features.gather_rows(dataset.validation()));
        let after_diagram =
            validation_diagram(&val_logits, dataset.validation_classes(), temperature);
        emit_calibration_bins(run_id, "after", 0, &after_diagram);
        let ece_after = after_diagram.ece();

        let pool = dataset.unlabeled().to_vec();
        let (mut hits, mut false_alarms) = (0usize, 0usize);
        let mut predicted_hotspots = Vec::new();
        {
            let _detect_span =
                telemetry::span(telemetry::names::SPAN_DETECT).with("pool", pool.len() as u64);
            if !pool.is_empty() {
                let (logits, _) = model.predict_pool(&features.gather_rows(&pool));
                let probabilities = temperature.probabilities_batch(logits.as_slice(), 2);
                for (row, &clip) in pool.iter().enumerate() {
                    let p_hotspot = probabilities[row * 2 + 1];
                    if p_hotspot >= config.detect_threshold {
                        predicted_hotspots.push(clip);
                        match bench.labels()[clip] {
                            Label::Hotspot => hits += 1,
                            Label::NonHotspot => false_alarms += 1,
                        }
                    }
                }
            }
        }
        // Eq. 2 bills each false alarm as one wasted verification simulation
        // on top of the train/val labels the oracle already metered; bill
        // the counter the same way so the journal snapshot equals Litho#.
        telemetry::counter(telemetry::names::ORACLE_CALLS).add(false_alarms as u64);
        if false_alarms > 0 {
            telemetry::debug(
                "core.framework",
                "billed false alarms as verification simulations (Eq. 2)",
                &[
                    ("run_id", run_id.into()),
                    ("false_alarms", (false_alarms as u64).into()),
                ],
            );
        }

        // This run's billable simulations, as metered by the oracle itself.
        // Quorum re-labelling votes bill beyond the train/val labels; those
        // extra simulations fold into Eq. 2 so Litho# stays honest under a
        // fault-tolerant oracle.
        let oracle_stats = oracle.stats().delta_since(&stats_before);
        let extra_simulations = oracle_stats
            .unique
            .saturating_sub(dataset.labeled().len() + dataset.validation().len());
        // Eq. 1 counts labelled-set hotspots against *ground truth*, not the
        // labels the oracle reported: a simulated clip is physically revealed
        // even when a fault corrupted the recorded label (the dataset's
        // observed tallies could otherwise exceed the benchmark total under
        // silent flips). Identical to the observed counts in a fault-free run.
        let truth_hotspots = |indices: &[usize]| {
            indices
                .iter()
                .filter(|&&i| bench.labels()[i] == Label::Hotspot)
                .count()
        };
        let metrics = PshdMetrics::compute_with_extra(
            dataset.labeled().len(),
            dataset.validation().len(),
            truth_hotspots(dataset.labeled()),
            truth_hotspots(dataset.validation()),
            hits,
            false_alarms,
            bench.hotspot_count(),
            extra_simulations,
        );
        let mut sampled_indices = dataset.labeled().to_vec();
        sampled_indices.extend_from_slice(dataset.validation());

        // Consistency check: this run's counter delta should equal the
        // oracle's unique-query meter plus the billed false alarms — i.e.
        // Litho# of Eq. 2. Concurrent runs (parallel tests) share the
        // process-wide counter, so the delta may legitimately exceed the
        // expectation; falling short would be an instrumentation bug.
        let oracle_delta =
            telemetry::counter(telemetry::names::ORACLE_CALLS).get() - oracle_calls_before;
        let expected_calls = (oracle_stats.unique + false_alarms) as u64;
        debug_assert!(
            oracle_delta >= expected_calls,
            "litho.oracle.calls advanced by {oracle_delta}, expected at least {expected_calls}"
        );
        if oracle_delta != expected_calls {
            telemetry::warn(
                "core.framework",
                "litho.oracle.calls delta differs from oracle stats (concurrent runs?)",
                &[
                    ("run_id", run_id.into()),
                    ("delta", oracle_delta.into()),
                    ("expected", expected_calls.into()),
                ],
            );
        }

        fault_stats.oracle_retries = oracle_stats.retries;
        fault_stats.oracle_giveups = oracle_stats.giveups;
        fault_stats.quorum_votes = oracle_stats.quorum_votes;
        let degraded = fault_stats.is_degraded();

        telemetry::info(
            "core.framework",
            telemetry::names::EVENT_RUN_COMPLETE,
            &[
                ("run_id", run_id.into()),
                ("selector", selector.name().into()),
                ("litho", (metrics.litho as u64).into()),
                ("accuracy", metrics.accuracy.into()),
                ("false_alarms", (false_alarms as u64).into()),
                ("ece_before", ece_before.into()),
                ("ece_after", ece_after.into()),
                ("degraded", degraded.into()),
                ("label_failures", (fault_stats.label_failures as u64).into()),
                ("oracle_retries", (fault_stats.oracle_retries as u64).into()),
                ("oracle_giveups", (fault_stats.oracle_giveups as u64).into()),
                ("quorum_votes", (fault_stats.quorum_votes as u64).into()),
                ("elapsed_ms", (start.elapsed().as_millis() as u64).into()),
            ],
        );
        Ok(RunOutcome {
            metrics,
            history,
            final_temperature: temperature.value(),
            ece_before,
            ece_after,
            selector: selector.name().to_owned(),
            elapsed: start.elapsed(),
            sampled_indices,
            predicted_hotspots,
            oracle_stats,
            run_id,
            fault_stats,
            degraded,
        })
    }

    /// [`SamplingFramework::fit_temperature`] with a degradation guard: a
    /// failed fit (e.g. a diverged model producing non-finite logits) falls
    /// back to the identity temperature `T = 1` instead of aborting the run.
    fn fit_temperature_guarded(
        &self,
        model: &HotspotModel,
        features: &Matrix,
        dataset: &ActiveDataset,
        run_id: u64,
        fault_stats: &mut RunFaultStats,
    ) -> Temperature {
        match self.fit_temperature(model, features, dataset) {
            Ok(temperature) => temperature,
            Err(error) => {
                fault_stats.temperature_fallbacks += 1;
                telemetry::warn(
                    "core.framework",
                    "temperature fit failed; falling back to T = 1",
                    &[
                        ("run_id", run_id.into()),
                        ("error", error.to_string().into()),
                    ],
                );
                Temperature::identity()
            }
        }
    }

    fn fit_temperature(
        &self,
        model: &HotspotModel,
        features: &Matrix,
        dataset: &ActiveDataset,
    ) -> Result<Temperature, ActiveError> {
        if !self.config.ablation.calibration || dataset.validation().is_empty() {
            return Ok(Temperature::identity());
        }
        let (logits, _) = model.predict(&features.gather_rows(dataset.validation()));
        Ok(Temperature::fit(
            logits.as_slice(),
            2,
            dataset.validation_classes(),
        )?)
    }
}

/// Algorithm 2 loop state at the top of the iteration loop — either built
/// fresh by the pre-loop phase or reinstated from a [`RunCheckpoint`].
struct LoopState {
    /// Process-wide `litho.oracle.calls` reading at (original) run start.
    oracle_calls_before: u64,
    /// Oracle meter reading at (original) run start.
    stats_before: OracleStats,
    fault_stats: RunFaultStats,
    gmm: GaussianMixture,
    by_score: Vec<usize>,
    dataset: ActiveDataset,
    model: HotspotModel,
    rng: ChaCha8Rng,
    ece_before: f64,
    history: Vec<IterationStats>,
    cold_batches: usize,
    /// First iteration the loop should execute (1 fresh, `k + 1` resumed).
    next_iteration: usize,
    /// The cold-batch stop already fired before the checkpoint; skip the
    /// loop entirely and go straight to detection.
    finished: bool,
}

/// The pre-loop phase of Algorithm 2 (lines 1–5): GMM scoring, the initial
/// split, class top-up, and the first model fit, all paid for through the
/// oracle.
fn fresh_loop_state<O: LithoOracle + ?Sized>(
    bench: &GeneratedBenchmark,
    config: &SamplingConfig,
    oracle: &mut O,
    features: &Matrix,
    seed: u64,
    run_id: u64,
    selector: &dyn BatchSelector,
) -> Result<LoopState, ActiveError> {
    let total = bench.len();
    // The oracle-call counter is process-wide and monotonic (parallel
    // runs share it); this run's share is the delta from here.
    let oracle_calls_before = telemetry::counter(telemetry::names::ORACLE_CALLS).get();
    telemetry::info(
        "core.framework",
        "run started",
        &[
            ("run_id", run_id.into()),
            ("selector", selector.name().into()),
            ("seed", seed.into()),
            ("clips", (total as u64).into()),
            ("iterations", (config.iterations as u64).into()),
        ],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Likewise the oracle's own meter may carry history from earlier
    // runs; everything this run bills is the delta from here.
    let stats_before = oracle.stats();
    let mut fault_stats = RunFaultStats::default();

    // Algorithm 2 line 1: posterior scores from the Gaussian mixture.
    let gmm = GaussianMixture::fit(
        bench.density_features().as_slice(),
        bench.density_features().dim(),
        &GmmConfig {
            components: config.gmm_components.min(total),
            seed,
            ..GmmConfig::default()
        },
    )?;
    let scores = gmm.score_samples(bench.density_features().as_slice());
    let mut by_score: Vec<usize> = (0..total).collect();
    by_score.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    // Line 2: split. The lowest-likelihood (hotspot-like) clips seed the
    // training set; the validation set is a seeded random draw from the
    // rest (the paper leaves V₀'s construction unspecified).
    let initial_train: Vec<usize> = by_score[..config.initial_train.min(total)].to_vec();
    let mut remaining: Vec<usize> = by_score[config.initial_train.min(total)..].to_vec();
    remaining.shuffle(&mut rng);
    let validation: Vec<usize> = remaining[..config.validation.min(remaining.len())].to_vec();
    let (mut dataset, split_report) =
        ActiveDataset::try_new(total, &initial_train, &validation, oracle);
    if !split_report.is_complete() {
        fault_stats.label_failures += split_report.failures.len();
        telemetry::warn(
            "core.framework",
            "initial split degraded: failed labels returned to the pool",
            &[
                ("run_id", run_id.into()),
                ("failed", (split_report.failures.len() as u64).into()),
                ("labeled", (split_report.labeled.len() as u64).into()),
            ],
        );
    }

    // The paper trains a discriminative model on L₀, which presumes both
    // classes are present; when the GMM seed set is single-class we pay
    // for random extra labels until it is not (or a small budget runs
    // out). This divergence is documented here because the paper is
    // silent on the degenerate case.
    let mut top_up_budget = config.initial_train * 2;
    while !dataset.has_both_classes() && top_up_budget > 0 && !dataset.unlabeled().is_empty() {
        let pool = dataset.unlabeled();
        let pick = pool[rng.gen_range(0..pool.len())];
        let report = dataset.try_label_batch(&[pick], oracle);
        fault_stats.label_failures += report.failures.len();
        top_up_budget -= 1;
    }

    // Lines 3–5: initialise and fit the model.
    let mut model = HotspotModel::new(
        features.cols(),
        seed ^ 0xabcd_1234,
        config.init_sigma,
        config.learning_rate,
        config.train_batch,
    );
    if !dataset.labeled().is_empty() {
        let x = features.gather_rows(dataset.labeled());
        guarded_train(
            &mut model,
            &x,
            dataset.labeled_classes(),
            config.initial_epochs,
            seed,
            run_id,
            &mut fault_stats,
        )?;
    }

    // ECE before calibration, for the Fig. 2 comparison. The per-bin events
    // belong to the pre-loop phase, so (like `run started`) they are emitted
    // only here and never on resume.
    let (val_logits, _) = model.predict(&features.gather_rows(dataset.validation()));
    let before_diagram = validation_diagram(
        &val_logits,
        dataset.validation_classes(),
        Temperature::identity(),
    );
    emit_calibration_bins(run_id, "before", 0, &before_diagram);
    let ece_before = before_diagram.ece();

    Ok(LoopState {
        oracle_calls_before,
        stats_before,
        fault_stats,
        gmm,
        by_score,
        dataset,
        model,
        rng,
        ece_before,
        history: Vec::with_capacity(config.iterations),
        cold_batches: 0,
        next_iteration: 1,
        finished: false,
    })
}

/// Reinstates loop state from a validated [`RunCheckpoint`]. Emits no
/// `core.framework` events and pays for no labels: the pre-loop phase
/// already ran in the interrupted process, its events survive in that
/// process's journal, and every persisted label was already billed.
fn resume_loop_state<O: LithoOracle + ?Sized>(
    cp: RunCheckpoint,
    config: &SamplingConfig,
    oracle: &mut O,
    features: &Matrix,
    seed: u64,
    run_id: u64,
) -> Result<LoopState, ActiveError> {
    if let Some(snapshot) = &cp.oracle {
        if !oracle.restore_state(snapshot) {
            return Err(ActiveError::Checkpoint {
                detail: "oracle refused state restore; resuming would re-bill cached labels"
                    .to_owned(),
            });
        }
    }
    let dataset = ActiveDataset::from_parts(
        cp.total,
        cp.dataset.labeled,
        cp.dataset.labeled_classes,
        cp.dataset.validation,
        cp.dataset.validation_classes,
    )?;
    let mut model = HotspotModel::new(
        features.cols(),
        seed ^ 0xabcd_1234,
        config.init_sigma,
        config.learning_rate,
        config.train_batch,
    );
    model.restore_state(&cp.model)?;
    let rng = ChaCha8Rng::from_stream_state(cp.rng).ok_or_else(|| ActiveError::Checkpoint {
        detail: "invalid RNG keystream state".to_owned(),
    })?;
    // Provenance, not run semantics: the `store.checkpoint` target is
    // withheld from canonical journals so interrupted-and-resumed runs stay
    // byte-identical to uninterrupted ones.
    telemetry::info(
        "store.checkpoint",
        "run resumed from checkpoint",
        &[
            ("run_id", run_id.into()),
            ("iteration", (cp.iteration as u64).into()),
            ("labeled", (dataset.labeled().len() as u64).into()),
        ],
    );
    let finished = config
        .stop_after_cold_batches
        .is_some_and(|limit| cp.cold_batches >= limit);
    Ok(LoopState {
        oracle_calls_before: cp.oracle_calls_before,
        stats_before: cp.stats_before,
        fault_stats: cp.fault_stats,
        gmm: cp.gmm,
        by_score: cp.by_score,
        dataset,
        model,
        rng,
        ece_before: cp.ece_before,
        history: cp.history,
        cold_batches: cp.cold_batches,
        next_iteration: cp.iteration + 1,
        finished,
    })
}

/// Rejects a checkpoint that does not belong to this run: resuming under a
/// different seed or benchmark would silently diverge instead of continuing
/// the interrupted trajectory.
fn validate_checkpoint(
    cp: &RunCheckpoint,
    total: usize,
    seed: u64,
    config: &SamplingConfig,
) -> Result<(), ActiveError> {
    let bad = |detail: String| ActiveError::Checkpoint { detail };
    if cp.seed != seed {
        return Err(bad(format!(
            "checkpoint was taken under seed {}, not {seed}",
            cp.seed
        )));
    }
    if cp.total != total {
        return Err(bad(format!(
            "checkpoint covers {} clips, benchmark has {total}",
            cp.total
        )));
    }
    if cp.by_score.len() != total {
        return Err(bad(format!(
            "checkpoint score order covers {} clips, benchmark has {total}",
            cp.by_score.len()
        )));
    }
    if cp.iteration == 0 || cp.iteration > config.iterations {
        return Err(bad(format!(
            "checkpoint iteration {} outside the configured 1..={} loop",
            cp.iteration, config.iterations
        )));
    }
    Ok(())
}

/// Trains with a divergence guard: when the update produces a non-finite
/// loss, the model rolls back to its pre-update weights (the last good
/// snapshot) and the last finite epoch loss is reported instead, so NaN
/// never reaches the stats or the JSONL journal.
#[allow(clippy::too_many_arguments)]
fn guarded_train(
    model: &mut HotspotModel,
    x: &Matrix,
    classes: &[usize],
    epochs: usize,
    shuffle_seed: u64,
    run_id: u64,
    fault_stats: &mut RunFaultStats,
) -> Result<f64, ActiveError> {
    let before = model.snapshot();
    let report = model.train(x, classes, epochs, shuffle_seed)?;
    let loss = report.final_loss();
    if loss.is_finite() {
        return Ok(loss);
    }
    fault_stats.nan_rollbacks += 1;
    model.restore(&before)?;
    telemetry::warn(
        "core.framework",
        "training diverged (non-finite loss); rolled back to last good weights",
        &[
            ("run_id", run_id.into()),
            ("epochs", (epochs as u64).into()),
        ],
    );
    Ok(report
        .epoch_losses
        .iter()
        .copied()
        .rev()
        .find(|l| l.is_finite())
        .unwrap_or(0.0))
}

/// Per-iteration journal event: the Algorithm 2 loop state the paper's
/// figures are built from (temperature → Eq. 4, ω₁/ω₂ → Eq. 13).
fn emit_iteration(run_id: u64, stats: &IterationStats, batch_size: usize) {
    let mut fields = vec![
        ("run_id", telemetry::FieldValue::U64(run_id)),
        ("iteration", (stats.iteration as u64).into()),
        ("temperature", stats.temperature.into()),
        ("ece", stats.ece.into()),
        ("batch_size", (batch_size as u64).into()),
        ("batch_hotspots", (stats.batch_hotspots as u64).into()),
        ("labeled_size", (stats.labeled_size as u64).into()),
        ("train_loss", stats.train_loss.into()),
        ("failed_labels", (stats.failed_labels as u64).into()),
    ];
    if let Some((w1, w2)) = stats.weights {
        fields.push(("omega1", w1.into()));
        fields.push(("omega2", w2.into()));
    }
    telemetry::info(
        "core.framework",
        telemetry::names::EVENT_ITERATION_COMPLETE,
        &fields,
    );
}

/// Reliability diagram (10 bins, Fig. 2) of argmax predictions on the
/// validation set at a given temperature. Its `.ece()` is the scalar the
/// trajectory plots track; its bins feed `calibration bin` journal events.
fn validation_diagram(
    logits: &Matrix,
    truth: &[usize],
    temperature: Temperature,
) -> ReliabilityDiagram {
    if truth.is_empty() {
        return ReliabilityDiagram::from_predictions(&[], &[], 10);
    }
    let probabilities = temperature.probabilities_batch(logits.as_slice(), 2);
    ReliabilityDiagram::from_binary_probabilities(&probabilities, truth, 10)
}

/// Per-bin journal events for one calibration measurement: one `calibration
/// bin` event per occupied bin, so offline tools can redraw the reliability
/// diagram without the validation set. `stage` is `"before"`, `"iteration"`,
/// or `"after"`; `iteration` is 0 outside the loop. Debug level: console
/// sinks filter it out, journals keep it.
fn emit_calibration_bins(
    run_id: u64,
    stage: &'static str,
    iteration: usize,
    diagram: &ReliabilityDiagram,
) {
    if !telemetry::has_sinks() {
        return;
    }
    for (index, bin) in diagram.bins().iter().enumerate() {
        if bin.count == 0 {
            continue;
        }
        telemetry::debug(
            "core.framework",
            telemetry::names::EVENT_CALIBRATION_BIN,
            &[
                ("run_id", run_id.into()),
                ("stage", stage.into()),
                ("iteration", (iteration as u64).into()),
                ("bin", (index as u64).into()),
                ("lower", bin.lower.into()),
                ("upper", bin.upper.into()),
                ("count", (bin.count as u64).into()),
                ("confidence", bin.mean_confidence.into()),
                ("accuracy", bin.accuracy.into()),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EntropySelector, RandomSelector, UncertaintySelector};
    use hotspot_layout::BenchmarkSpec;

    fn small_bench() -> GeneratedBenchmark {
        let spec = BenchmarkSpec {
            name: "unit".to_owned(),
            tech: hotspot_layout::Tech::Euv7,
            hotspots: 30,
            non_hotspots: 270,
            dup_rate: 0.15,
            near_miss_rate: 0.3,
        };
        GeneratedBenchmark::generate(&spec, 11).unwrap()
    }

    fn small_config(total: usize) -> SamplingConfig {
        let mut c = SamplingConfig::for_benchmark(total);
        c.iterations = 4;
        c.initial_epochs = 30;
        c.update_epochs = 10;
        c
    }

    #[test]
    fn full_run_produces_consistent_metrics() {
        let bench = small_bench();
        let framework = SamplingFramework::new(small_config(bench.len()));
        let outcome = framework
            .run(&bench, &mut EntropySelector::new(), 3)
            .unwrap();
        let m = &outcome.metrics;
        assert!(m.accuracy > 0.3, "accuracy {}", m.accuracy);
        assert!(m.accuracy <= 1.0);
        // Eq. 2 cross-check: litho = train + val + FA, and the oracle paid
        // exactly for train + val.
        assert_eq!(m.litho, m.train_size + m.validation_size + m.false_alarms);
        assert_eq!(
            outcome.oracle_stats.unique,
            m.train_size + m.validation_size
        );
        assert!(!outcome.history.is_empty());
        assert_eq!(outcome.selector, "entropy");
        // A fault-free oracle leaves no degradation trace.
        assert!(!outcome.degraded);
        assert_eq!(outcome.fault_stats, RunFaultStats::default());
        assert_eq!(m.extra_simulations, 0);
    }

    #[test]
    fn faulty_run_completes_deterministically_with_exact_accounting() {
        use hotspot_litho::{FaultRates, FaultyOracle, RetryOracle, RetryPolicy, VirtualClock};
        let bench = small_bench();
        let framework = SamplingFramework::new(small_config(bench.len()));
        let run = |seed: u64| {
            let rates = FaultRates {
                transient: 0.2,
                flip: 0.02,
                ..FaultRates::default()
            };
            let flaky = FaultyOracle::new(bench.oracle(), rates, 77);
            let mut oracle =
                RetryOracle::with_clock(flaky, RetryPolicy::default(), VirtualClock::new())
                    .with_quorum(3);
            framework
                .run_with_oracle(&bench, &mut EntropySelector::new(), seed, &mut oracle)
                .unwrap()
        };
        let a = run(3);
        let b = run(3);
        assert_eq!(a.metrics, b.metrics, "faulty runs must be bit-identical");
        assert_eq!(a.sampled_indices, b.sampled_indices);
        assert_eq!(a.fault_stats, b.fault_stats);
        assert!(a.fault_stats.oracle_retries > 0, "{:?}", a.fault_stats);
        assert!(a.fault_stats.quorum_votes > 0, "{:?}", a.fault_stats);
        // Eq. 2 under quorum: every billable re-simulation is accounted for.
        let m = &a.metrics;
        assert_eq!(
            m.litho,
            m.train_size + m.validation_size + m.false_alarms + m.extra_simulations
        );
        assert_eq!(
            a.oracle_stats.unique,
            m.train_size + m.validation_size + m.extra_simulations
        );
    }

    #[test]
    fn permanent_failures_return_clips_to_the_pool_and_degrade() {
        use hotspot_litho::{FaultRates, FaultyOracle, RetryOracle, RetryPolicy, VirtualClock};
        let bench = small_bench();
        let framework = SamplingFramework::new(small_config(bench.len()));
        let broken: Vec<usize> = (0..bench.len()).step_by(7).collect();
        let flaky = FaultyOracle::new(bench.oracle(), FaultRates::default(), 5)
            .with_permanent_failures(broken.iter().copied());
        let mut oracle =
            RetryOracle::with_clock(flaky, RetryPolicy::no_retries(), VirtualClock::new());
        let outcome = framework
            .run_with_oracle(&bench, &mut EntropySelector::new(), 3, &mut oracle)
            .unwrap();
        assert!(outcome.degraded);
        assert!(outcome.fault_stats.label_failures > 0);
        assert!(outcome.fault_stats.oracle_giveups > 0);
        for i in &outcome.sampled_indices {
            assert!(!broken.contains(i), "broken clip {i} got a label");
        }
        let failed: usize = outcome.history.iter().map(|s| s.failed_labels).sum();
        assert!(failed <= outcome.fault_stats.label_failures);
    }

    #[test]
    fn quorum_giveups_bill_nothing_and_clips_stay_selectable() {
        use hotspot_litho::{
            FaultRates, FaultyOracle, OracleError, OracleStats, RetryOracle, RetryPolicy,
            VirtualClock,
        };
        use std::collections::BTreeSet;

        /// Logs each framework-level `try_query` outcome while delegating
        /// to the wrapped retry stack, so the test can see which clips gave
        /// up and whether any of them were queried (reselected) again.
        struct RecordingOracle<O> {
            inner: O,
            log: Vec<(usize, bool)>,
        }
        impl<O: LithoOracle> LithoOracle for RecordingOracle<O> {
            fn try_query(&mut self, index: usize) -> Result<Label, OracleError> {
                let result = self.inner.try_query(index);
                self.log.push((index, result.is_ok()));
                result
            }
            fn resimulate(&mut self, index: usize) -> Result<Label, OracleError> {
                self.inner.resimulate(index)
            }
            fn unique_queries(&self) -> usize {
                self.inner.unique_queries()
            }
            fn total_queries(&self) -> usize {
                self.inner.total_queries()
            }
            fn stats(&self) -> OracleStats {
                self.inner.stats()
            }
        }

        let bench = small_bench();
        let framework = SamplingFramework::new(small_config(bench.len()));
        let rates = FaultRates {
            transient: 0.6,
            ..FaultRates::default()
        };
        let flaky = FaultyOracle::new(bench.oracle(), rates, 41);
        let stack = RetryOracle::with_clock(flaky, RetryPolicy::no_retries(), VirtualClock::new())
            .with_quorum(3);
        let mut oracle = RecordingOracle {
            inner: stack,
            log: Vec::new(),
        };
        let outcome = framework
            .run_with_oracle(&bench, &mut EntropySelector::new(), 3, &mut oracle)
            .unwrap();
        assert!(
            outcome.fault_stats.oracle_giveups > 0,
            "{:?}",
            outcome.fault_stats
        );
        assert!(
            outcome.fault_stats.quorum_votes > 0,
            "{:?}",
            outcome.fault_stats
        );

        // Un-billed: the oracle paid for exactly the labels that arrived
        // (train + validation) plus quorum re-simulations — the Eq. 2
        // identity leaves no room for a billed give-up.
        let m = &outcome.metrics;
        assert_eq!(
            m.litho,
            m.train_size + m.validation_size + m.false_alarms + m.extra_simulations
        );
        assert_eq!(
            outcome.oracle_stats.unique,
            m.train_size + m.validation_size + m.extra_simulations
        );

        // Returned to the pool and re-selectable: some clip that gave up
        // was queried again by a later selection and labelled successfully
        // (the fault schedule is per-attempt, so fresh attempts can pass).
        let mut gave_up: BTreeSet<usize> = BTreeSet::new();
        let mut relabelled: BTreeSet<usize> = BTreeSet::new();
        for &(clip, ok) in &oracle.log {
            if !ok {
                gave_up.insert(clip);
            } else if gave_up.contains(&clip) {
                relabelled.insert(clip);
            }
        }
        assert!(
            !relabelled.is_empty(),
            "no given-up clip was ever reselected and relabelled"
        );
        assert!(
            relabelled
                .iter()
                .any(|clip| outcome.sampled_indices.contains(clip)),
            "a recovered clip must end up in the labelled set"
        );
        // A clip that never recovered must not be in the labelled set.
        for clip in gave_up.difference(&relabelled) {
            assert!(
                !outcome.sampled_indices.contains(clip),
                "clip {clip} gave up on every attempt but got a label"
            );
        }
    }

    #[test]
    fn run_is_deterministic() {
        let bench = small_bench();
        let framework = SamplingFramework::new(small_config(bench.len()));
        let a = framework
            .run(&bench, &mut EntropySelector::new(), 5)
            .unwrap();
        let b = framework
            .run(&bench, &mut EntropySelector::new(), 5)
            .unwrap();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.sampled_indices, b.sampled_indices);
    }

    #[test]
    fn different_selectors_run() {
        let bench = small_bench();
        let framework = SamplingFramework::new(small_config(bench.len()));
        for (name, selector) in [
            (
                "entropy",
                &mut EntropySelector::new() as &mut dyn BatchSelector,
            ),
            ("ts", &mut UncertaintySelector::new()),
            ("random", &mut RandomSelector::new()),
        ] {
            let outcome = framework.run(&bench, selector, 7).unwrap();
            assert_eq!(outcome.selector, name);
            assert!(
                outcome.metrics.accuracy > 0.2,
                "{name}: {}",
                outcome.metrics.accuracy
            );
        }
    }

    #[test]
    fn calibration_reduces_or_matches_ece_on_average() {
        // A single run can go either way; check the average over seeds.
        let bench = small_bench();
        let framework = SamplingFramework::new(small_config(bench.len()));
        let (mut before, mut after) = (0.0, 0.0);
        for seed in 0..3 {
            let o = framework
                .run(&bench, &mut EntropySelector::new(), seed)
                .unwrap();
            before += o.ece_before;
            after += o.ece_after;
        }
        assert!(after <= before + 0.05, "ECE before {before} after {after}");
    }

    #[test]
    fn too_small_benchmark_is_rejected() {
        let bench = small_bench();
        let mut config = small_config(bench.len());
        config.initial_train = bench.len();
        config.validation = bench.len();
        let framework = SamplingFramework::new(config);
        assert!(matches!(
            framework.run(&bench, &mut EntropySelector::new(), 0),
            Err(ActiveError::BenchmarkTooSmall { .. })
        ));
    }

    #[test]
    fn history_tracks_growing_labeled_set() {
        let bench = small_bench();
        let framework = SamplingFramework::new(small_config(bench.len()));
        let outcome = framework
            .run(&bench, &mut EntropySelector::new(), 9)
            .unwrap();
        for pair in outcome.history.windows(2) {
            assert!(pair[1].labeled_size > pair[0].labeled_size);
        }
        for stat in &outcome.history {
            assert!(stat.temperature > 0.0);
            assert!(stat.ece >= 0.0 && stat.ece <= 1.0);
        }
    }

    #[test]
    fn runs_get_distinct_run_ids() {
        let bench = small_bench();
        let framework = SamplingFramework::new(small_config(bench.len()));
        let a = framework
            .run(&bench, &mut EntropySelector::new(), 5)
            .unwrap();
        let b = framework
            .run(&bench, &mut EntropySelector::new(), 5)
            .unwrap();
        assert_ne!(a.run_id, b.run_id);
    }

    #[test]
    fn ablation_without_calibration_keeps_identity_temperature() {
        let bench = small_bench();
        let config = small_config(bench.len()).without_calibration();
        let framework = SamplingFramework::new(config);
        let outcome = framework
            .run(&bench, &mut EntropySelector::new(), 2)
            .unwrap();
        assert_eq!(outcome.final_temperature, 1.0);
    }

    #[test]
    fn resume_from_any_checkpoint_reproduces_the_uninterrupted_run() {
        use crate::MemoryCheckpoints;
        let bench = small_bench();
        let framework = SamplingFramework::new(small_config(bench.len()));
        // Reference run, checkpointing every iteration.
        let mut hook = MemoryCheckpoints::every(1);
        let mut oracle = bench.oracle();
        let reference = framework
            .run_with_oracle_checkpointed(
                &bench,
                &mut EntropySelector::new(),
                3,
                &mut oracle,
                &mut hook,
            )
            .unwrap();
        assert_eq!(hook.saved.len(), reference.history.len());
        // Resume from every iteration boundary with a fresh process-like
        // oracle; each resumed run must land on the identical outcome.
        for cp in &hook.saved {
            let mut resumed_hook = MemoryCheckpoints::resuming_from(cp.clone(), 0);
            let mut fresh_oracle = bench.oracle();
            let resumed = framework
                .run_with_oracle_checkpointed(
                    &bench,
                    &mut EntropySelector::new(),
                    3,
                    &mut fresh_oracle,
                    &mut resumed_hook,
                )
                .unwrap();
            assert_eq!(
                resumed.metrics, reference.metrics,
                "at iteration {}",
                cp.iteration
            );
            assert_eq!(resumed.history, reference.history);
            assert_eq!(resumed.sampled_indices, reference.sampled_indices);
            assert_eq!(resumed.predicted_hotspots, reference.predicted_hotspots);
            assert_eq!(resumed.final_temperature, reference.final_temperature);
            assert_eq!(resumed.ece_before, reference.ece_before);
            assert_eq!(resumed.ece_after, reference.ece_after);
            assert_eq!(resumed.run_id, reference.run_id, "resume keeps the run id");
            // Eq. 2: the resumed run re-bills nothing — its oracle delta
            // (restored meter → final meter, anchored at the original run
            // start) equals the uninterrupted run's exactly.
            assert_eq!(resumed.oracle_stats, reference.oracle_stats);
            assert_eq!(resumed.metrics.litho, reference.metrics.litho);
        }
    }

    #[test]
    fn resume_reproduces_a_faulty_run_and_its_schedule() {
        use crate::MemoryCheckpoints;
        use hotspot_litho::{FaultRates, FaultyOracle, RetryOracle, RetryPolicy, VirtualClock};
        let bench = small_bench();
        let framework = SamplingFramework::new(small_config(bench.len()));
        let rates = FaultRates {
            transient: 0.2,
            flip: 0.02,
            ..FaultRates::default()
        };
        let make_oracle = || {
            RetryOracle::with_clock(
                FaultyOracle::new(bench.oracle(), rates, 77),
                RetryPolicy::default(),
                VirtualClock::new(),
            )
            .with_quorum(3)
        };
        let mut hook = MemoryCheckpoints::every(1);
        let mut oracle = make_oracle();
        let reference = framework
            .run_with_oracle_checkpointed(
                &bench,
                &mut EntropySelector::new(),
                3,
                &mut oracle,
                &mut hook,
            )
            .unwrap();
        let mid = &hook.saved[hook.saved.len() / 2];
        let mut resumed_hook = MemoryCheckpoints::resuming_from(mid.clone(), 0);
        let mut fresh = make_oracle();
        let resumed = framework
            .run_with_oracle_checkpointed(
                &bench,
                &mut EntropySelector::new(),
                3,
                &mut fresh,
                &mut resumed_hook,
            )
            .unwrap();
        // The per-clip attempt counters travelled with the checkpoint, so
        // the deterministic fault schedule stays aligned across the resume.
        assert_eq!(resumed.metrics, reference.metrics);
        assert_eq!(resumed.history, reference.history);
        assert_eq!(resumed.fault_stats, reference.fault_stats);
        assert_eq!(resumed.oracle_stats, reference.oracle_stats);
    }

    #[test]
    fn mismatched_checkpoints_are_refused() {
        use crate::MemoryCheckpoints;
        let bench = small_bench();
        let framework = SamplingFramework::new(small_config(bench.len()));
        let mut hook = MemoryCheckpoints::every(1);
        let mut oracle = bench.oracle();
        framework
            .run_with_oracle_checkpointed(
                &bench,
                &mut EntropySelector::new(),
                3,
                &mut oracle,
                &mut hook,
            )
            .unwrap();
        let cp = hook.saved[0].clone();
        // Wrong seed.
        let mut wrong_seed = MemoryCheckpoints::resuming_from(cp.clone(), 0);
        assert!(matches!(
            framework.run_with_oracle_checkpointed(
                &bench,
                &mut EntropySelector::new(),
                4,
                &mut bench.oracle(),
                &mut wrong_seed,
            ),
            Err(ActiveError::Checkpoint { .. })
        ));
        // Corrupted shape.
        let mut bad = cp;
        bad.by_score.pop();
        let mut bad_hook = MemoryCheckpoints::resuming_from(bad, 0);
        assert!(matches!(
            framework.run_with_oracle_checkpointed(
                &bench,
                &mut EntropySelector::new(),
                3,
                &mut bench.oracle(),
                &mut bad_hook,
            ),
            Err(ActiveError::Checkpoint { .. })
        ));
    }

    #[test]
    fn cold_batch_termination_shortens_the_loop() {
        let bench = small_bench();
        let mut config = small_config(bench.len());
        config.iterations = 12;
        let full = SamplingFramework::new(config.clone())
            .run(&bench, &mut EntropySelector::new(), 4)
            .unwrap();
        config.stop_after_cold_batches = Some(1);
        let stopped = SamplingFramework::new(config)
            .run(&bench, &mut EntropySelector::new(), 4)
            .unwrap();
        // Identical up to the stop point, then truncated.
        assert!(stopped.history.len() <= full.history.len());
        for (a, b) in stopped.history.iter().zip(&full.history) {
            assert_eq!(a, b);
        }
        if stopped.history.len() < full.history.len() {
            assert_eq!(stopped.history.last().unwrap().batch_hotspots, 0);
            assert!(stopped.metrics.litho <= full.metrics.litho);
        }
    }
}
