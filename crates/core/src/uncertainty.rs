/// Binary Best-versus-Second-Best uncertainty (Eq. 3):
/// `uᵢ = 1 − |σ(z)⁽⁰⁾ − σ(z)⁽¹⁾|` for each row of two-class probabilities.
///
/// # Panics
///
/// Panics when `probabilities.len()` is odd.
///
/// ```
/// use hotspot_active::bvsb_scores;
/// let scores = bvsb_scores(&[0.5, 0.5, 0.9, 0.1]);
/// assert!(scores[0] > scores[1]); // the 50/50 sample is maximally uncertain
/// ```
pub fn bvsb_scores(probabilities: &[f32]) -> Vec<f32> {
    assert_eq!(
        probabilities.len() % 2,
        0,
        "expected two-class probability rows"
    );
    probabilities
        .chunks_exact(2)
        .map(|p| 1.0 - (p[0] - p[1]).abs())
        .collect()
}

/// Hotspot-aware calibrated uncertainty (Eq. 6).
///
/// For each two-class probability row `(σ⁽⁰⁾, σ⁽¹⁾)` (class 1 = hotspot) and
/// decision boundary `h`:
///
/// ```text
///   uᵢ = σ⁽⁰⁾ + h   if σ⁽¹⁾ > h     (hotspot-like: score in (h, 1 + h − …])
///   uᵢ = σ⁽¹⁾       otherwise       (non-hotspot-like: score below h)
/// ```
///
/// The score peaks just above the boundary (maximally uncertain *and*
/// hotspot-like) and ranks every hotspot-like sample above every
/// non-hotspot-like one, matching the paper's intent of preferring samples
/// that are both near the boundary and in hotspot regions.
///
/// `probabilities` should already be temperature-calibrated (Eq. 5);
/// pass raw softmax outputs to reproduce the uncalibrated ablation.
///
/// # Panics
///
/// Panics when `probabilities.len()` is odd or `h` is outside `(0, 1)`.
///
/// ```
/// use hotspot_active::uncertainty_scores;
/// // P(hotspot) = 0.45 (just above h) scores higher than P(hotspot) = 0.95.
/// let scores = uncertainty_scores(&[0.55, 0.45, 0.05, 0.95], 0.4);
/// assert!(scores[0] > scores[1]);
/// ```
pub fn uncertainty_scores(probabilities: &[f32], h: f32) -> Vec<f32> {
    assert_eq!(
        probabilities.len() % 2,
        0,
        "expected two-class probability rows"
    );
    assert!(h > 0.0 && h < 1.0, "boundary h must lie in (0, 1), got {h}");
    probabilities
        .chunks_exact(2)
        .map(|p| if p[1] > h { p[0] + h } else { p[1] })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bvsb_peaks_at_even_split() {
        let s = bvsb_scores(&[0.5, 0.5, 0.7, 0.3, 1.0, 0.0]);
        assert!((s[0] - 1.0).abs() < 1e-6);
        assert!((s[1] - 0.6).abs() < 1e-6);
        assert!(s[2].abs() < 1e-6);
    }

    #[test]
    fn hotspot_like_scores_exceed_non_hotspot_like() {
        // Every sample with P(hs) > h must outrank every sample below h.
        let probs = [
            0.55f32, 0.45, // just above h
            0.05, 0.95, // confident hotspot
            0.61, 0.39, // just below h
            0.99, 0.01, // confident non-hotspot
        ];
        let s = uncertainty_scores(&probs, 0.4);
        assert!(s[0] > s[2] && s[0] > s[3]);
        assert!(s[1] > s[2] && s[1] > s[3]);
    }

    #[test]
    fn score_decreases_with_hotspot_confidence_above_h() {
        let s = uncertainty_scores(&[0.55, 0.45, 0.3, 0.7, 0.05, 0.95], 0.4);
        assert!(s[0] > s[1]);
        assert!(s[1] > s[2]);
    }

    #[test]
    fn score_increases_towards_h_from_below() {
        let s = uncertainty_scores(&[0.9, 0.1, 0.7, 0.3, 0.61, 0.39], 0.4);
        assert!(s[0] < s[1]);
        assert!(s[1] < s[2]);
    }

    #[test]
    fn boundary_value_is_not_hotspot_like() {
        // Eq. 6 uses a strict inequality: σ⁽¹⁾ = h takes the lower branch.
        let s = uncertainty_scores(&[0.6, 0.4], 0.4);
        assert!((s[0] - 0.4).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "two-class")]
    fn odd_length_panics() {
        let _ = uncertainty_scores(&[0.5, 0.5, 0.1], 0.4);
    }

    #[test]
    #[should_panic(expected = "boundary h")]
    fn bad_h_panics() {
        let _ = uncertainty_scores(&[0.5, 0.5], 1.0);
    }

    proptest! {
        #[test]
        fn prop_scores_bounded(p1 in 0.0f32..=1.0) {
            let probs = [1.0 - p1, p1];
            let s = uncertainty_scores(&probs, 0.4);
            prop_assert!((0.0..=1.4 + 1e-6).contains(&s[0]));
        }

        #[test]
        fn prop_hotspot_branch_dominates(p_low in 0.0f32..0.4, p_high in 0.4001f32..=1.0) {
            let s = uncertainty_scores(&[1.0 - p_low, p_low, 1.0 - p_high, p_high], 0.4);
            prop_assert!(s[1] > s[0]);
        }

        #[test]
        fn prop_bvsb_symmetric(p in 0.0f32..=1.0) {
            let a = bvsb_scores(&[p, 1.0 - p]);
            let b = bvsb_scores(&[1.0 - p, p]);
            prop_assert!((a[0] - b[0]).abs() < 1e-6);
        }
    }
}
