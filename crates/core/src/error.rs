use std::fmt;

/// Error type for the active-learning framework.
#[derive(Debug)]
#[non_exhaustive]
pub enum ActiveError {
    /// The benchmark is too small for the configured split sizes.
    BenchmarkTooSmall {
        /// Clips available.
        clips: usize,
        /// Clips the initial split requires.
        required: usize,
    },
    /// The classifier substrate failed.
    Nn(hotspot_nn::NnError),
    /// GMM fitting failed.
    Gmm(hotspot_gmm::GmmError),
    /// Temperature calibration failed.
    Calibration(hotspot_calibration::CalibrationError),
    /// A checkpoint could not be saved, or a resumed checkpoint does not
    /// match the run it is being applied to.
    Checkpoint {
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for ActiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActiveError::BenchmarkTooSmall { clips, required } => write!(
                f,
                "benchmark of {clips} clips is smaller than the initial split of {required}"
            ),
            ActiveError::Nn(e) => write!(f, "classifier error: {e}"),
            ActiveError::Gmm(e) => write!(f, "mixture-model error: {e}"),
            ActiveError::Calibration(e) => write!(f, "calibration error: {e}"),
            ActiveError::Checkpoint { detail } => write!(f, "checkpoint error: {detail}"),
        }
    }
}

impl std::error::Error for ActiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ActiveError::Nn(e) => Some(e),
            ActiveError::Gmm(e) => Some(e),
            ActiveError::Calibration(e) => Some(e),
            ActiveError::BenchmarkTooSmall { .. } | ActiveError::Checkpoint { .. } => None,
        }
    }
}

impl From<hotspot_nn::NnError> for ActiveError {
    fn from(e: hotspot_nn::NnError) -> Self {
        ActiveError::Nn(e)
    }
}

impl From<hotspot_gmm::GmmError> for ActiveError {
    fn from(e: hotspot_gmm::GmmError) -> Self {
        ActiveError::Gmm(e)
    }
}

impl From<hotspot_calibration::CalibrationError> for ActiveError {
    fn from(e: hotspot_calibration::CalibrationError) -> Self {
        ActiveError::Calibration(e)
    }
}
