use hotspot_nn::Matrix;

/// Pairwise difference matrix `D` (Eq. 8): `D_ij = 1 − x̂ᵢᵀ·x̂ⱼ` over
/// ℓ2-normalised rows of `embeddings`. `D_ii = 0`; values fall in `[0, 2]`
/// (cosine distance).
///
/// ```
/// use hotspot_nn::Matrix;
/// use hotspot_active::diversity_matrix;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let e = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]])?;
/// let d = diversity_matrix(&e);
/// assert!((d[1] - 1.0).abs() < 1e-6); // orthogonal features: distance 1
/// # Ok(())
/// # }
/// ```
pub fn diversity_matrix(embeddings: &Matrix) -> Vec<f32> {
    record_diversity_kernel(embeddings.rows(), embeddings.cols());
    let normalized = l2_normalize_rows(embeddings);
    let n = normalized.rows();
    let mut d = vec![0.0f32; n * n];
    for i in 0..n {
        let a = normalized.row(i);
        for j in (i + 1)..n {
            let b = normalized.row(j);
            let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
            let dist = 1.0 - dot;
            d[i * n + j] = dist;
            d[j * n + i] = dist;
        }
    }
    d
}

/// Diversity score of every row (Eq. 7): the distance to its nearest
/// neighbour, `dᵢ = min_{j≠i} D_ij`. Isolated samples score high and are
/// preferred; a single-sample set scores `[1.0]` by convention (maximally
/// diverse).
///
/// Runs in O(n²·dim) directly on the embeddings without materialising `D`,
/// which is the efficiency claim of Fig. 3(b).
pub fn diversity_scores(embeddings: &Matrix) -> Vec<f32> {
    record_diversity_kernel(embeddings.rows(), embeddings.cols());
    let normalized = l2_normalize_rows(embeddings);
    let n = normalized.rows();
    if n == 1 {
        return vec![1.0];
    }
    let mut scores = vec![f32::MAX; n];
    for i in 0..n {
        let a = normalized.row(i);
        for j in (i + 1)..n {
            let b = normalized.row(j);
            let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
            let dist = 1.0 - dot;
            if dist < scores[i] {
                scores[i] = dist;
            }
            if dist < scores[j] {
                scores[j] = dist;
            }
        }
    }
    scores
}

/// Books one pairwise-cosine pass into the `kernel.diversity.*` performance
/// counters (ROADMAP item 1 hot loop): n·(n−1)/2 dot products of `dim`
/// multiply–adds each plus the ℓ2 row normalisation, over one normalised
/// copy of the embedding matrix. One counter update per call.
fn record_diversity_kernel(n: usize, dim: usize) {
    use hotspot_telemetry::{counter, names};
    let pairs = (n * n.saturating_sub(1) / 2) as u64;
    let dim = dim as u64;
    counter(names::KERNEL_DIVERSITY_CALLS).incr();
    counter(names::KERNEL_DIVERSITY_ELEMENTS).add(pairs);
    counter(names::KERNEL_DIVERSITY_FLOPS).add(pairs * 2 * dim + 3 * n as u64 * dim);
    counter(names::KERNEL_DIVERSITY_BYTES).add(4 * 2 * n as u64 * dim);
}

fn l2_normalize_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        let norm: f32 = row.iter().map(|&v| v * v).sum::<f32>().sqrt();
        if norm > 1e-12 {
            for v in row.iter_mut() {
                *v /= norm;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn m(rows: &[Vec<f32>]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn identical_rows_have_zero_diversity() {
        let s = diversity_scores(&m(&[vec![1.0, 2.0], vec![1.0, 2.0], vec![-3.0, 1.0]]));
        assert!(s[0].abs() < 1e-6);
        assert!(s[1].abs() < 1e-6);
        assert!(s[2] > 0.5);
    }

    #[test]
    fn scaled_rows_are_equivalent() {
        // Cosine distance ignores magnitude.
        let s = diversity_scores(&m(&[vec![1.0, 0.0], vec![5.0, 0.0], vec![0.0, 1.0]]));
        assert!(s[0].abs() < 1e-6);
        assert!(s[1].abs() < 1e-6);
    }

    #[test]
    fn outlier_scores_highest() {
        let s = diversity_scores(&m(&[
            vec![1.0, 0.0],
            vec![0.98, 0.2],
            vec![0.95, 0.3],
            vec![-1.0, 0.0],
        ]));
        let max_idx = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(max_idx, 3);
    }

    #[test]
    fn matrix_diagonal_is_zero_and_symmetric() {
        let d = diversity_matrix(&m(&[vec![1.0, 0.0], vec![0.6, 0.8], vec![0.0, 1.0]]));
        for i in 0..3 {
            assert!(d[i * 3 + i].abs() < 1e-6);
            for j in 0..3 {
                assert!((d[i * 3 + j] - d[j * 3 + i]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn scores_match_matrix_minimum() {
        let e = m(&[
            vec![1.0, 0.2],
            vec![0.3, 0.9],
            vec![-0.8, 0.1],
            vec![0.5, 0.5],
        ]);
        let d = diversity_matrix(&e);
        let s = diversity_scores(&e);
        for i in 0..4 {
            let min_row = (0..4)
                .filter(|&j| j != i)
                .map(|j| d[i * 4 + j])
                .fold(f32::MAX, f32::min);
            assert!((s[i] - min_row).abs() < 1e-6, "row {i}");
        }
    }

    #[test]
    fn single_sample_is_maximally_diverse() {
        assert_eq!(diversity_scores(&m(&[vec![3.0, 4.0]])), vec![1.0]);
    }

    #[test]
    fn zero_rows_do_not_crash() {
        let s = diversity_scores(&m(&[vec![0.0, 0.0], vec![1.0, 0.0]]));
        assert_eq!(s.len(), 2);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    proptest! {
        #[test]
        fn prop_scores_in_cosine_range(rows in proptest::collection::vec(
            proptest::collection::vec(-5.0f32..5.0, 3), 2..12,
        )) {
            let s = diversity_scores(&m(&rows));
            for &v in &s {
                prop_assert!((-1e-5..=2.0 + 1e-5).contains(&v));
            }
        }

        #[test]
        fn prop_adding_duplicate_zeroes_its_score(rows in proptest::collection::vec(
            proptest::collection::vec(0.1f32..5.0, 3), 2..8,
        )) {
            let mut with_dup = rows.clone();
            with_dup.push(rows[0].clone());
            let s = diversity_scores(&m(&with_dup));
            prop_assert!(s[0].abs() < 1e-5);
            prop_assert!(s[with_dup.len() - 1].abs() < 1e-5);
        }
    }
}
