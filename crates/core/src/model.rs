use crate::ActiveError;
use hotspot_nn::{
    Adam, AdamState, Dense, InitRng, Matrix, NetworkSnapshot, Relu, Sequential,
    SoftmaxCrossEntropy, TrainConfig, TrainReport, Trainer,
};

/// The complete trainable state of a [`HotspotModel`]: weights, optimiser
/// moments, and the training-step counter. Unlike the rollback-only
/// [`HotspotModel::snapshot`], restoring this resumes training *exactly* —
/// the next update applies the same Adam bias correction and moment history
/// as the uninterrupted model would.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelState {
    /// Layer weights (the rollback snapshot).
    pub snapshot: NetworkSnapshot,
    /// Adam step counter and per-parameter moments.
    pub optimizer: AdamState,
    /// Training invocations so far ([`HotspotModel::steps_trained`]).
    pub steps_trained: usize,
}

/// The hotspot classifier: a DCT-feature MLP with a 32-dimensional
/// penultimate embedding, class-weighted loss, and Adam training.
///
/// Architecture: `input → 64 → 32 → 2`, ReLU activations. The 32-wide layer
/// feeds both the logits and the diversity metric (its activations are the
/// Eq. 7 features). The paper's TensorFlow CNN plays the same role; see
/// DESIGN.md for the substitution rationale.
#[derive(Debug)]
pub struct HotspotModel {
    net: Sequential,
    input_dim: usize,
    embedding_dim: usize,
    learning_rate: f64,
    train_batch: usize,
    optimizer: Adam,
    steps_trained: usize,
}

impl HotspotModel {
    /// Builds a freshly initialised model (`w ~ N(0, σ)` scaled by fan-in)
    /// with the standard `input → 64 → 32 → 2` architecture.
    ///
    /// # Panics
    ///
    /// Panics when `input_dim` is zero or `sigma` is not positive.
    pub fn new(
        input_dim: usize,
        seed: u64,
        sigma: f64,
        learning_rate: f64,
        train_batch: usize,
    ) -> Self {
        HotspotModel::with_architecture(
            input_dim,
            &[64, 32],
            seed,
            sigma,
            learning_rate,
            train_batch,
        )
    }

    /// Builds a model with explicit hidden-layer widths. The final hidden
    /// width is the embedding dimension the diversity metric runs on.
    ///
    /// # Panics
    ///
    /// Panics when `input_dim` is zero, `hidden` is empty or contains a
    /// zero, or `sigma` is not positive.
    pub fn with_architecture(
        input_dim: usize,
        hidden: &[usize],
        seed: u64,
        sigma: f64,
        learning_rate: f64,
        train_batch: usize,
    ) -> Self {
        assert!(input_dim > 0, "input dimension must be positive");
        assert!(!hidden.is_empty(), "need at least one hidden layer");
        assert!(
            hidden.iter().all(|&w| w > 0),
            "hidden widths must be positive"
        );
        let mut rng = InitRng::seeded(seed, sigma);
        let mut net = Sequential::new();
        let mut previous = input_dim;
        for &width in hidden {
            net.push(Dense::new(previous, width, &mut rng));
            net.push(Relu::new());
            previous = width;
        }
        net.push(Dense::new(previous, 2, &mut rng));
        HotspotModel {
            net,
            input_dim,
            embedding_dim: previous,
            learning_rate,
            train_batch,
            optimizer: Adam::new(learning_rate),
            steps_trained: 0,
        }
    }

    /// Width of the penultimate embedding (the diversity-metric space).
    pub fn embedding_dim(&self) -> usize {
        self.embedding_dim
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Total training invocations so far.
    pub fn steps_trained(&self) -> usize {
        self.steps_trained
    }

    /// Class weights `n / (2 n_c)` for an imbalanced label set, clamped to
    /// `[0.5, 10]`; a single-class set falls back to uniform weights.
    pub fn class_weights(labels: &[usize]) -> Vec<f32> {
        let n = labels.len() as f32;
        let n1 = labels.iter().filter(|&&l| l == 1).count() as f32;
        let n0 = n - n1;
        // lithohd-lint: allow(float-eq) — exact zero-norm guard; any nonzero norm must take the divide
        if n0 == 0.0 || n1 == 0.0 {
            return vec![1.0, 1.0];
        }
        vec![
            (n / (2.0 * n0)).clamp(0.5, 10.0),
            (n / (2.0 * n1)).clamp(0.5, 10.0),
        ]
    }

    /// Trains (or fine-tunes — the optimiser state persists across calls,
    /// matching Algorithm 2's incremental "update" step) on the labelled set.
    ///
    /// # Errors
    ///
    /// Propagates classifier errors (empty set, shape mismatches).
    pub fn train(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        epochs: usize,
        shuffle_seed: u64,
    ) -> Result<TrainReport, ActiveError> {
        let loss = SoftmaxCrossEntropy::weighted(Self::class_weights(labels));
        let trainer = Trainer::new(TrainConfig {
            epochs,
            batch_size: self.train_batch,
            shuffle_seed,
            loss_target: Some(1e-3),
        });
        let report = trainer.fit(&mut self.net, x, labels, &loss, &mut self.optimizer)?;
        self.steps_trained += 1;
        let _ = self.learning_rate;
        Ok(report)
    }

    /// Captures the current weights, for divergence rollback: a training
    /// step that produces a non-finite loss can be undone by restoring the
    /// last good snapshot.
    pub fn snapshot(&self) -> NetworkSnapshot {
        self.net.snapshot()
    }

    /// Restores weights captured by [`HotspotModel::snapshot`]. The Adam
    /// state is kept — after a divergence the next update re-estimates its
    /// moments from fresh gradients anyway.
    ///
    /// # Errors
    ///
    /// Propagates snapshot/architecture mismatches.
    pub fn restore(&mut self, snapshot: &NetworkSnapshot) -> Result<(), ActiveError> {
        self.net.load_snapshot(snapshot)?;
        Ok(())
    }

    /// Captures the full trainable state — weights *and* optimiser moments —
    /// for checkpointing. See [`ModelState`].
    pub fn state(&self) -> ModelState {
        ModelState {
            snapshot: self.net.snapshot(),
            optimizer: self.optimizer.state(),
            steps_trained: self.steps_trained,
        }
    }

    /// Restores state captured by [`HotspotModel::state`] into a model of the
    /// same architecture (build it with the same constructor arguments
    /// first). Training then continues bit-identically to a model that was
    /// never interrupted.
    ///
    /// # Errors
    ///
    /// Propagates snapshot/architecture mismatches.
    pub fn restore_state(&mut self, state: &ModelState) -> Result<(), ActiveError> {
        self.net.load_snapshot(&state.snapshot)?;
        self.optimizer.restore_state(&state.optimizer);
        self.steps_trained = state.steps_trained;
        Ok(())
    }

    /// Raw logits and penultimate embeddings of a clip batch.
    pub fn predict(&self, x: &Matrix) -> (Matrix, Matrix) {
        self.net.infer_with_embedding(x)
    }

    /// Pool-scale prediction in chunks (parallel when cores allow).
    pub fn predict_pool(&self, x: &Matrix) -> (Matrix, Matrix) {
        self.net.infer_pool(x, 2048)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_data() -> (Matrix, Vec<usize>) {
        // Class 1 iff the first feature is large.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let hot = i % 3 == 0;
            let base = if hot { 2.0 } else { -2.0 };
            rows.push(vec![
                base + (i % 5) as f32 * 0.1,
                (i % 7) as f32 * 0.1,
                -(i % 4) as f32 * 0.1,
            ]);
            labels.push(hot as usize);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn learns_toy_separation() {
        let (x, y) = toy_data();
        let mut model = HotspotModel::new(3, 1, 1.0, 1e-2, 16);
        model.train(&x, &y, 80, 0).unwrap();
        let (logits, _) = model.predict(&x);
        let predictions = logits.argmax_rows();
        let correct = predictions.iter().zip(&y).filter(|(a, b)| a == b).count();
        assert!(correct >= 57, "only {correct}/60 correct");
    }

    #[test]
    fn embedding_width_is_32() {
        let model = HotspotModel::new(5, 2, 1.0, 1e-3, 8);
        let (logits, emb) = model.predict(&Matrix::zeros(3, 5));
        assert_eq!(logits.cols(), 2);
        assert_eq!(emb.cols(), 32);
        assert_eq!(model.embedding_dim(), 32);
    }

    #[test]
    fn custom_architecture_controls_embedding() {
        let model = HotspotModel::with_architecture(5, &[48, 24, 12], 2, 1.0, 1e-3, 8);
        let (logits, emb) = model.predict(&Matrix::zeros(2, 5));
        assert_eq!(logits.cols(), 2);
        assert_eq!(emb.cols(), 12);
        assert_eq!(model.embedding_dim(), 12);
    }

    #[test]
    #[should_panic(expected = "at least one hidden layer")]
    fn rejects_empty_architecture() {
        let _ = HotspotModel::with_architecture(5, &[], 0, 1.0, 1e-3, 8);
    }

    #[test]
    fn class_weights_counter_imbalance() {
        let labels = [0usize; 90]
            .iter()
            .chain([1usize; 10].iter())
            .copied()
            .collect::<Vec<_>>();
        let w = HotspotModel::class_weights(&labels);
        assert!(w[1] > w[0]);
        assert!((w[0] - 100.0 / 180.0).abs() < 1e-5);
        assert!((w[1] - 5.0).abs() < 1e-5);
    }

    #[test]
    fn single_class_weights_are_uniform() {
        assert_eq!(HotspotModel::class_weights(&[0, 0, 0]), vec![1.0, 1.0]);
        assert_eq!(HotspotModel::class_weights(&[1]), vec![1.0, 1.0]);
    }

    #[test]
    fn incremental_training_improves_on_new_data() {
        let (x, y) = toy_data();
        let mut model = HotspotModel::new(3, 1, 1.0, 1e-2, 16);
        let first = model.train(&x, &y, 10, 0).unwrap();
        let second = model.train(&x, &y, 10, 1).unwrap();
        assert!(second.final_loss() <= first.epoch_losses[0]);
        assert_eq!(model.steps_trained(), 2);
    }

    #[test]
    fn pool_prediction_matches_direct() {
        let (x, _) = toy_data();
        let model = HotspotModel::new(3, 9, 1.0, 1e-3, 8);
        let (a, ea) = model.predict(&x);
        let (b, eb) = model.predict_pool(&x);
        assert_eq!(a, b);
        assert_eq!(ea, eb);
    }

    #[test]
    fn snapshot_restore_rolls_back_training() {
        let (x, y) = toy_data();
        let mut model = HotspotModel::new(3, 1, 1.0, 1e-2, 16);
        model.train(&x, &y, 10, 0).unwrap();
        let snap = model.snapshot();
        let (before, _) = model.predict(&x);
        model.train(&x, &y, 10, 1).unwrap();
        let (after, _) = model.predict(&x);
        assert_ne!(before, after, "training must move the weights");
        model.restore(&snap).unwrap();
        let (restored, _) = model.predict(&x);
        assert_eq!(before, restored, "restore must reproduce the snapshot");
    }

    #[test]
    fn full_state_restore_resumes_training_bit_identically() {
        let (x, y) = toy_data();
        // Reference: train 10 + 10 epochs without interruption.
        let mut reference = HotspotModel::new(3, 1, 1.0, 1e-2, 16);
        reference.train(&x, &y, 10, 0).unwrap();
        let state = reference.state();
        reference.train(&x, &y, 10, 1).unwrap();
        // Resumed: fresh same-architecture model, restore, continue.
        let mut resumed = HotspotModel::new(3, 99, 1.0, 1e-2, 16);
        resumed.restore_state(&state).unwrap();
        resumed.train(&x, &y, 10, 1).unwrap();
        assert_eq!(reference.predict(&x).0, resumed.predict(&x).0);
        assert_eq!(reference.steps_trained(), resumed.steps_trained());
        // The weight-only rollback snapshot would NOT reproduce this: Adam's
        // moments and step counter change the continued trajectory.
        let mut weights_only = HotspotModel::new(3, 99, 1.0, 1e-2, 16);
        weights_only.restore(&state.snapshot).unwrap();
        weights_only.train(&x, &y, 10, 1).unwrap();
        assert_ne!(reference.predict(&x).0, weights_only.predict(&x).0);
    }

    #[test]
    fn deterministic_in_seed() {
        let (x, y) = toy_data();
        let mut m1 = HotspotModel::new(3, 5, 1.0, 1e-2, 16);
        let mut m2 = HotspotModel::new(3, 5, 1.0, 1e-2, 16);
        m1.train(&x, &y, 5, 3).unwrap();
        m2.train(&x, &y, 5, 3).unwrap();
        assert_eq!(m1.predict(&x).0, m2.predict(&x).0);
    }
}
