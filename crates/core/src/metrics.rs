use serde::{Deserialize, Serialize};
use std::fmt;

/// PSHD evaluation metrics (Eq. 1–2 of the paper).
///
/// * `accuracy = (#HS_Train + #HS_Val + #Hits) / #HS_Total` — hotspots that
///   were either paid for during sampling or correctly predicted at
///   detection time, over all hotspots in the benchmark.
/// * `litho = #Tr + #Val + #FA + #Extra` — every simulation that had to be
///   paid for: the training set, the validation set, each false alarm
///   (which a real flow must verify), and any extra billable re-simulations
///   (quorum re-labelling votes under a fault-tolerant oracle; zero in a
///   fault-free run).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PshdMetrics {
    /// Detection accuracy in `[0, 1]` (Eq. 1).
    pub accuracy: f64,
    /// Lithography simulation overhead (Eq. 2).
    pub litho: usize,
    /// Hotspots correctly predicted in the unlabeled set.
    pub hits: usize,
    /// Non-hotspots falsely reported in the unlabeled set.
    pub false_alarms: usize,
    /// Hotspots in the final training set.
    pub train_hotspots: usize,
    /// Hotspots in the validation set.
    pub validation_hotspots: usize,
    /// Total hotspots in the benchmark.
    pub total_hotspots: usize,
    /// Final training-set size.
    pub train_size: usize,
    /// Validation-set size.
    pub validation_size: usize,
    /// Extra billable re-simulations beyond the labelled sets and false
    /// alarms (quorum votes under a fault-tolerant oracle).
    pub extra_simulations: usize,
}

impl PshdMetrics {
    /// Computes the metrics from the run's raw counts.
    ///
    /// # Panics
    ///
    /// Panics when the hotspot tallies exceed `total_hotspots` (which would
    /// indicate double counting upstream).
    #[allow(clippy::too_many_arguments)]
    pub fn compute(
        train_size: usize,
        validation_size: usize,
        train_hotspots: usize,
        validation_hotspots: usize,
        hits: usize,
        false_alarms: usize,
        total_hotspots: usize,
    ) -> Self {
        Self::compute_with_extra(
            train_size,
            validation_size,
            train_hotspots,
            validation_hotspots,
            hits,
            false_alarms,
            total_hotspots,
            0,
        )
    }

    /// [`PshdMetrics::compute`] with `extra_simulations` additional billable
    /// re-simulations folded into Eq. 2 (quorum re-labelling votes).
    ///
    /// # Panics
    ///
    /// Same contract as [`PshdMetrics::compute`].
    #[allow(clippy::too_many_arguments)]
    pub fn compute_with_extra(
        train_size: usize,
        validation_size: usize,
        train_hotspots: usize,
        validation_hotspots: usize,
        hits: usize,
        false_alarms: usize,
        total_hotspots: usize,
        extra_simulations: usize,
    ) -> Self {
        let found = train_hotspots + validation_hotspots + hits;
        assert!(
            found <= total_hotspots || total_hotspots == 0,
            "counted {found} hotspots but the benchmark only has {total_hotspots}"
        );
        let accuracy = if total_hotspots == 0 {
            1.0
        } else {
            found as f64 / total_hotspots as f64
        };
        PshdMetrics {
            accuracy,
            litho: train_size + validation_size + false_alarms + extra_simulations,
            hits,
            false_alarms,
            train_hotspots,
            validation_hotspots,
            total_hotspots,
            train_size,
            validation_size,
            extra_simulations,
        }
    }
}

impl fmt::Display for PshdMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "acc {:.2}% litho {} (train {}, val {}, FA {})",
            self.accuracy * 100.0,
            self.litho,
            self.train_size,
            self.validation_size,
            self.false_alarms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_one_and_two() {
        let m = PshdMetrics::compute(100, 50, 10, 5, 25, 7, 50);
        assert!((m.accuracy - 0.8).abs() < 1e-12);
        assert_eq!(m.litho, 157);
    }

    #[test]
    fn perfect_run() {
        let m = PshdMetrics::compute(10, 5, 3, 1, 6, 0, 10);
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.litho, 15);
    }

    #[test]
    fn zero_hotspot_benchmark_counts_as_perfect() {
        let m = PshdMetrics::compute(10, 5, 0, 0, 0, 2, 0);
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.litho, 17);
    }

    #[test]
    #[should_panic(expected = "only has 3")]
    fn overcounting_panics() {
        let _ = PshdMetrics::compute(1, 1, 5, 5, 5, 0, 3);
    }

    #[test]
    fn display_mentions_accuracy_and_litho() {
        let m = PshdMetrics::compute(10, 5, 2, 1, 2, 3, 10);
        let s = m.to_string();
        assert!(s.contains("acc") && s.contains("litho 18"));
    }

    #[test]
    fn quorum_votes_bill_into_litho() {
        let m = PshdMetrics::compute_with_extra(100, 50, 10, 5, 25, 7, 50, 40);
        assert_eq!(m.litho, 197);
        assert_eq!(m.extra_simulations, 40);
        assert_eq!(
            m.accuracy,
            PshdMetrics::compute(100, 50, 10, 5, 25, 7, 50).accuracy
        );
    }
}
