use serde::{Deserialize, Serialize};

/// How the two score components are combined into the entropy-based score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WeightMode {
    /// Dynamic entropy weighting (Eq. 10–13) — the paper's method.
    Entropy,
    /// Fixed diversity weight `ω₂` (and `ω₁ = 1 − ω₂`), for the Fig. 6(a)
    /// comparison.
    Fixed {
        /// The diversity weight in `[0, 1]`.
        omega2: f64,
    },
}

/// Ablation switches for the Table III study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AblationConfig {
    /// Use the uncertainty component ("w/o.U" disables it).
    pub uncertainty: bool,
    /// Use the diversity component ("w/o.D" disables it).
    pub diversity: bool,
    /// Use temperature calibration of the uncertainty probabilities.
    pub calibration: bool,
}

impl Default for AblationConfig {
    /// The full framework.
    fn default() -> Self {
        AblationConfig {
            uncertainty: true,
            diversity: true,
            calibration: true,
        }
    }
}

/// Configuration of the overall sampling framework (Algorithm 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Initial labelled training-set size `|L₀|`.
    pub initial_train: usize,
    /// Validation-set size `|V₀|` (used only for temperature fitting).
    pub validation: usize,
    /// Query-pool size `n` drawn each iteration from the lowest GMM scores.
    pub query_pool: usize,
    /// Batch size `k` sampled from the query pool each iteration.
    pub batch: usize,
    /// Number of sampling iterations `N`.
    pub iterations: usize,
    /// Decision boundary `h` of the hotspot-aware uncertainty (Eq. 6);
    /// the paper fixes 0.4 for imbalanced data.
    pub boundary_h: f32,
    /// Weight initialisation σ (Algorithm 2, `w ~ N(0, σ)`).
    pub init_sigma: f64,
    /// GMM components for the query-pool model.
    pub gmm_components: usize,
    /// Epochs for the initial fit.
    pub initial_epochs: usize,
    /// Epochs for each incremental update.
    pub update_epochs: usize,
    /// Mini-batch size for training.
    pub train_batch: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// How to weight uncertainty vs diversity.
    pub weight_mode: WeightMode,
    /// Component ablation switches.
    pub ablation: AblationConfig,
    /// Detection threshold on the calibrated hotspot probability for the
    /// final full-chip prediction; the paper reuses `h`.
    pub detect_threshold: f32,
    /// Optional early termination: stop the sampling loop after this many
    /// consecutive iterations whose batches contained no hotspot. The paper
    /// leaves its "termination condition" unspecified beyond the iteration
    /// count `N`; this is the natural budget-saving rule (`None` = run all
    /// `N` iterations).
    pub stop_after_cold_batches: Option<usize>,
}

impl SamplingConfig {
    /// Sensible defaults scaled to a benchmark of `total` clips, matching
    /// the paper's labelling-budget profile: small ICCAD16-style benchmarks
    /// spend roughly half their clips on litho-labelled data, the large
    /// ICCAD12 population around 5 %.
    pub fn for_benchmark(total: usize) -> Self {
        let initial_train = (total / 50).clamp(20, 2000);
        let validation = (total / 50).clamp(20, 500);
        let batch = (total / 25).clamp(10, 600);
        SamplingConfig {
            initial_train,
            validation,
            query_pool: (batch * 8).min(total),
            batch,
            iterations: 10,
            boundary_h: 0.4,
            init_sigma: 1.0,
            gmm_components: 4,
            initial_epochs: 80,
            update_epochs: 30,
            train_batch: 32,
            learning_rate: 1e-3,
            weight_mode: WeightMode::Entropy,
            ablation: AblationConfig::default(),
            detect_threshold: 0.4,
            stop_after_cold_batches: None,
        }
    }

    /// Total labelled clips the initial split consumes.
    pub fn initial_split(&self) -> usize {
        self.initial_train + self.validation
    }

    /// Returns a copy with the Table III "w/o.D" switch set.
    pub fn without_diversity(mut self) -> Self {
        self.ablation.diversity = false;
        self
    }

    /// Returns a copy with the Table III "w/o.U" switch set.
    pub fn without_uncertainty(mut self) -> Self {
        self.ablation.uncertainty = false;
        self
    }

    /// Returns a copy with the entropy weighting replaced by fixed equal
    /// weights (Table III's "w/o.E" column).
    pub fn without_entropy_weighting(mut self) -> Self {
        self.weight_mode = WeightMode::Fixed { omega2: 0.5 };
        self
    }

    /// Returns a copy with calibration disabled (raw softmax confidences).
    pub fn without_calibration(mut self) -> Self {
        self.ablation.calibration = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_benchmark_scales() {
        let small = SamplingConfig::for_benchmark(1000);
        let large = SamplingConfig::for_benchmark(160_000);
        assert!(small.initial_train < large.initial_train);
        assert!(small.batch < large.batch);
        assert!(small.query_pool <= 1000);
    }

    #[test]
    fn ablation_builders_flip_switches() {
        let c = SamplingConfig::for_benchmark(1000);
        assert!(!c.clone().without_diversity().ablation.diversity);
        assert!(!c.clone().without_uncertainty().ablation.uncertainty);
        assert!(!c.clone().without_calibration().ablation.calibration);
        assert!(matches!(
            c.without_entropy_weighting().weight_mode,
            WeightMode::Fixed { omega2 } if (omega2 - 0.5).abs() < 1e-12
        ));
    }

    #[test]
    fn cold_batch_termination_defaults_off() {
        assert_eq!(
            SamplingConfig::for_benchmark(1000).stop_after_cold_batches,
            None
        );
    }

    #[test]
    fn paper_constants() {
        let c = SamplingConfig::for_benchmark(5000);
        assert!((c.boundary_h - 0.4).abs() < 1e-6);
        assert_eq!(c.weight_mode, WeightMode::Entropy);
    }
}
