//! Active entropy sampling with model calibration — the core contribution of
//! the DAC 2021 paper.
//!
//! The crate implements, faithfully to the paper's equations:
//!
//! * **Calibrated hotspot-aware uncertainty** (Eq. 3–6) — temperature-scaled
//!   softmax probabilities converted to a score that peaks just above the
//!   decision boundary `h = 0.4` and prefers hotspot-like samples
//!   ([`uncertainty_scores`]).
//! * **Min-distance diversity** (Eq. 7–8) — `dᵢ = min_j (1 − x̂ᵢᵀx̂ⱼ)` over
//!   ℓ2-normalised penultimate-layer embeddings ([`diversity_scores`]),
//!   replacing the QP formulation of Yang et al. \[14\].
//! * **Entropy weighting** (Eq. 10–13) — per-iteration dynamic weights from
//!   the dispersion of the two score distributions ([`entropy_weights`]).
//! * **Entropy-based sampling** (Algorithm 1) — [`EntropySelector`].
//! * **The overall sampling framework** (Algorithm 2) — [`SamplingFramework`]:
//!   GMM-driven split and query pools, iterative selection, litho-metered
//!   labelling, and full-chip detection with PSHD metrics (Eq. 1–2).
//!
//! # Example
//!
//! ```no_run
//! use hotspot_active::{SamplingConfig, SamplingFramework, EntropySelector};
//! use hotspot_layout::{BenchmarkSpec, GeneratedBenchmark};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = GeneratedBenchmark::generate(&BenchmarkSpec::iccad16_2(), 1)?;
//! let config = SamplingConfig::for_benchmark(bench.len());
//! let framework = SamplingFramework::new(config);
//! let outcome = framework.run(&bench, &mut EntropySelector::new(), 42)?;
//! println!("accuracy {:.2}%, litho {}", outcome.metrics.accuracy * 100.0, outcome.metrics.litho);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod checkpoint;
mod config;
mod dataset;
mod diversity;
mod error;
mod framework;
mod metrics;
mod model;
mod selector;
mod uncertainty;
mod weighting;

pub use checkpoint::{
    CheckpointHook, DatasetCheckpoint, MemoryCheckpoints, NoCheckpoint, RunCheckpoint,
};
pub use config::{AblationConfig, SamplingConfig, WeightMode};
pub use dataset::{ActiveDataset, LabelBatchReport};
pub use diversity::{diversity_matrix, diversity_scores};
pub use error::ActiveError;
pub use framework::{IterationStats, RunFaultStats, RunOutcome, SamplingFramework};
pub use metrics::PshdMetrics;
pub use model::{HotspotModel, ModelState};
pub use selector::{
    record_selection, BatchSelector, EntropySelector, RandomSelector, SelectionContext,
    UncertaintySelector,
};
pub use uncertainty::{bvsb_scores, uncertainty_scores};
pub use weighting::{entropy_weights, normalize_scores};
