/// Min–max normalisation (Eq. 10): scales a score vector to `[0, 1]`.
/// A constant vector normalises to all zeros (no information).
///
/// ```
/// use hotspot_active::normalize_scores;
/// assert_eq!(normalize_scores(&[2.0, 4.0, 3.0]), vec![0.0, 1.0, 0.5]);
/// ```
pub fn normalize_scores(scores: &[f32]) -> Vec<f32> {
    let min = scores.iter().copied().fold(f32::MAX, f32::min);
    let max = scores.iter().copied().fold(f32::MIN, f32::max);
    if scores.is_empty() || (max - min).abs() < 1e-12 {
        return vec![0.0; scores.len()];
    }
    scores.iter().map(|&v| (v - min) / (max - min)).collect()
}

/// Entropy weighting (Eq. 10–13): returns the dynamic weights `(ω₁, ω₂)` of
/// the uncertainty and diversity scores for this iteration.
///
/// For each index, the normalised scores are turned into proportions `q`
/// (Eq. 11) whose entropy `E = −(1/ln n) Σ q ln q` (Eq. 12) measures how
/// *uninformative* that index is: an evenly-spread index carries entropy → 1
/// and is down-weighted, a concentrated index discriminates strongly and is
/// up-weighted (Eq. 13). Degenerate cases (both indices uninformative)
/// fall back to equal weights.
///
/// # Panics
///
/// Panics when the two score vectors differ in length.
///
/// ```
/// use hotspot_active::entropy_weights;
/// // Uncertainty is flat (no information); diversity discriminates.
/// let (w1, w2) = entropy_weights(&[0.5, 0.5, 0.5], &[0.0, 0.0, 1.0]);
/// assert!(w2 > 0.9);
/// assert!((w1 + w2 - 1.0).abs() < 1e-9);
/// ```
pub fn entropy_weights(uncertainty: &[f32], diversity: &[f32]) -> (f64, f64) {
    assert_eq!(
        uncertainty.len(),
        diversity.len(),
        "score vectors differ in length"
    );
    let n = uncertainty.len();
    if n < 2 {
        return (0.5, 0.5);
    }
    let e1 = index_entropy(uncertainty);
    let e2 = index_entropy(diversity);
    let denom = 2.0 - e1 - e2;
    if denom.abs() < 1e-12 {
        return (0.5, 0.5);
    }
    ((1.0 - e1) / denom, (1.0 - e2) / denom)
}

/// Entropy `E_j` of one score index (Eq. 11–12) on its min–max-normalised
/// values. A constant (information-free) index reports entropy 1.
fn index_entropy(scores: &[f32]) -> f64 {
    let n = scores.len();
    let normalized = normalize_scores(scores);
    let total: f64 = normalized.iter().map(|&v| v as f64).sum();
    if total <= 0.0 {
        // All-equal scores: the index cannot rank anything.
        return 1.0;
    }
    let b = 1.0 / (n as f64).ln();
    let mut entropy = 0.0f64;
    for &v in &normalized {
        let q = v as f64 / total;
        if q > 0.0 {
            entropy -= q * q.ln();
        }
    }
    (entropy * b).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normalize_constant_is_zero() {
        assert_eq!(normalize_scores(&[3.0, 3.0, 3.0]), vec![0.0, 0.0, 0.0]);
        assert!(normalize_scores(&[]).is_empty());
    }

    #[test]
    fn weights_sum_to_one() {
        let (w1, w2) = entropy_weights(&[0.1, 0.9, 0.4], &[0.3, 0.3, 0.9]);
        assert!((w1 + w2 - 1.0).abs() < 1e-9);
        assert!(w1 > 0.0 && w2 > 0.0);
    }

    #[test]
    fn flat_index_gets_zero_weight() {
        let (w1, w2) = entropy_weights(&[0.7, 0.7, 0.7, 0.7], &[0.0, 0.2, 0.9, 0.4]);
        assert!(
            w1 < 1e-9,
            "flat uncertainty should carry no weight, got {w1}"
        );
        assert!((w2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn concentrated_index_dominates() {
        // Diversity is nearly one-hot (low entropy), uncertainty spreads
        // evenly over ranks (high entropy): diversity should dominate.
        let uncertainty = [0.0f32, 0.25, 0.5, 0.75, 1.0];
        let diversity = [0.0f32, 0.0, 0.0, 0.01, 1.0];
        let (w1, w2) = entropy_weights(&uncertainty, &diversity);
        assert!(w2 > w1, "w1={w1} w2={w2}");
    }

    #[test]
    fn symmetric_inputs_get_equal_weights() {
        let a = [0.1f32, 0.5, 0.9];
        let (w1, w2) = entropy_weights(&a, &a);
        assert!((w1 - w2).abs() < 1e-9);
    }

    #[test]
    fn both_flat_falls_back_to_half() {
        let (w1, w2) = entropy_weights(&[0.5, 0.5], &[0.2, 0.2]);
        assert_eq!((w1, w2), (0.5, 0.5));
    }

    #[test]
    fn tiny_inputs_fall_back_to_half() {
        assert_eq!(entropy_weights(&[0.3], &[0.9]), (0.5, 0.5));
        assert_eq!(entropy_weights(&[], &[]), (0.5, 0.5));
    }

    proptest! {
        #[test]
        fn prop_weights_valid(
            u in proptest::collection::vec(0.0f32..1.0, 2..30),
            seed in 0u64..100,
        ) {
            // Pair with a shuffled copy to vary the second index.
            let mut d = u.clone();
            let n = d.len();
            d.rotate_left((seed as usize) % n);
            let (w1, w2) = entropy_weights(&u, &d);
            prop_assert!((0.0..=1.0).contains(&w1));
            prop_assert!((0.0..=1.0).contains(&w2));
            prop_assert!((w1 + w2 - 1.0).abs() < 1e-9);
        }

        #[test]
        fn prop_normalize_bounds(scores in proptest::collection::vec(-100.0f32..100.0, 1..50)) {
            let n = normalize_scores(&scores);
            for &v in &n {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
