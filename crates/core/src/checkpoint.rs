//! Run-state checkpointing for [`SamplingFramework`](crate::SamplingFramework).
//!
//! A [`RunCheckpoint`] is everything Algorithm 2 needs to continue from an
//! iteration boundary in a fresh process: the dataset partition, the model
//! (weights *and* optimiser moments), the fitted mixture model, the RNG
//! keystream position, accumulated per-iteration history, and — critically
//! for the paper's Eq. 2 accounting — the oracle's label cache and meters,
//! so a resumed run never re-bills a simulation that was already paid for.
//!
//! The framework is persistence-agnostic: it talks to a [`CheckpointHook`]
//! and never sees a file. The `hotspot-store` crate provides the durable
//! implementation (crash-safe atomic snapshots); [`NoCheckpoint`] is the
//! free no-op used by the plain entry points.

use crate::{ActiveError, IterationStats, ModelState, RunFaultStats};
use hotspot_gmm::GaussianMixture;
use hotspot_litho::{OracleStateSnapshot, OracleStats};
use rand_chacha::ChaChaStreamState;

/// The dataset partition of a checkpointed run. The unlabeled pool is not
/// stored: [`ActiveDataset::from_parts`](crate::ActiveDataset::from_parts)
/// recomputes it as the ascending complement of `labeled ∪ validation`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DatasetCheckpoint {
    /// Labelled training indices, in labelling order.
    pub labeled: Vec<usize>,
    /// Class of each labelled clip (aligned with `labeled`).
    pub labeled_classes: Vec<usize>,
    /// Validation indices.
    pub validation: Vec<usize>,
    /// Class of each validation clip.
    pub validation_classes: Vec<usize>,
}

/// Complete Algorithm 2 loop state at an iteration boundary.
///
/// Captured by the framework after an iteration's bookkeeping (including the
/// cold-batch termination update) and handed to the [`CheckpointHook`];
/// restoring it resumes the run bit-identically — same future selections,
/// same metrics, same Litho# — in the same or a fresh process.
#[derive(Debug, Clone, PartialEq)]
pub struct RunCheckpoint {
    /// The iteration that completed last (1-based); the resumed loop starts
    /// at `iteration + 1`.
    pub iteration: usize,
    /// The run's seed. Resume refuses a different seed: derived per-iteration
    /// seeds would silently diverge.
    pub seed: u64,
    /// The interrupted run's telemetry id; the resumed run keeps it so the
    /// journal reads as one run.
    pub run_id: u64,
    /// Benchmark clip count, for shape validation on restore.
    pub total: usize,
    /// Clip indices sorted by ascending GMM likelihood (Algorithm 2's
    /// standing query-pool order). Persisted rather than re-fit so restore
    /// emits no mixture-model telemetry.
    pub by_score: Vec<usize>,
    /// The labelled/validation partition.
    pub dataset: DatasetCheckpoint,
    /// Classifier weights, Adam moments, and step counter.
    pub model: ModelState,
    /// The fitted mixture model (Algorithm 2 line 1).
    pub gmm: GaussianMixture,
    /// Temperature fitted in the checkpointed iteration.
    pub temperature: f64,
    /// Validation ECE before calibration (`T = 1`), computed once pre-loop.
    pub ece_before: f64,
    /// Per-iteration stats accumulated so far.
    pub history: Vec<IterationStats>,
    /// Consecutive zero-hotspot batches (termination tracking), updated for
    /// the checkpointed iteration.
    pub cold_batches: usize,
    /// Fault-handling tallies accumulated so far.
    pub fault_stats: RunFaultStats,
    /// The oracle's meter reading at original run start; the run's Eq. 2
    /// delta stays anchored there across the resume.
    pub stats_before: OracleStats,
    /// The process-wide `litho.oracle.calls` counter at original run start
    /// (the counter itself is restored separately, by the persistence layer).
    pub oracle_calls_before: u64,
    /// Keystream position of the run's RNG (exhausted pre-loop today, but
    /// captured so future in-loop consumers stay resumable by construction).
    pub rng: ChaChaStreamState,
    /// Oracle label cache and meters ([`hotspot_litho::LithoOracle::state_snapshot`]);
    /// `None` when the oracle does not support state capture.
    pub oracle: Option<OracleStateSnapshot>,
}

/// Where the framework announces iteration boundaries and obtains resume
/// state. Implementations decide persistence policy (cadence, format,
/// retention); the framework only guarantees *when* hooks fire:
///
/// 1. [`resume`](CheckpointHook::resume) — once, at run start, before any
///    telemetry or oracle traffic. Returning `Some` skips the entire
///    pre-loop phase (split, top-up, initial fit) and its journal events.
/// 2. [`wants_save`](CheckpointHook::wants_save) — after each iteration's
///    bookkeeping. Returning `false` skips checkpoint construction entirely,
///    so a disabled hook costs nothing per iteration.
/// 3. [`save`](CheckpointHook::save) — only when `wants_save` returned
///    `true`, with the fully built checkpoint.
pub trait CheckpointHook {
    /// The checkpoint to resume from, if any. Called exactly once per run.
    fn resume(&mut self) -> Option<RunCheckpoint>;

    /// Whether a checkpoint should be captured after completing `iteration`.
    fn wants_save(&mut self, iteration: usize) -> bool;

    /// Persists a checkpoint.
    ///
    /// # Errors
    ///
    /// An error aborts the run: a checkpoint the caller asked for but could
    /// not be written means the durability contract is already broken, and
    /// continuing would silently widen the re-computation window.
    fn save(&mut self, checkpoint: &RunCheckpoint) -> Result<(), ActiveError>;
}

/// The no-op hook: never resumes, never saves. Used by the plain
/// [`SamplingFramework::run`](crate::SamplingFramework::run) entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCheckpoint;

impl CheckpointHook for NoCheckpoint {
    fn resume(&mut self) -> Option<RunCheckpoint> {
        None
    }

    fn wants_save(&mut self, _iteration: usize) -> bool {
        false
    }

    fn save(&mut self, _checkpoint: &RunCheckpoint) -> Result<(), ActiveError> {
        Ok(())
    }
}

/// An in-memory hook: saves every `every`-th iteration into a `Vec`, and
/// resumes from a checkpoint it is seeded with. Useful for tests and for
/// harnesses that manage persistence themselves.
#[derive(Debug, Clone, Default)]
pub struct MemoryCheckpoints {
    /// Save cadence in iterations; `0` disables saving.
    pub every: usize,
    /// Checkpoint to hand out on [`CheckpointHook::resume`].
    pub resume_from: Option<RunCheckpoint>,
    /// Checkpoints captured so far, in save order.
    pub saved: Vec<RunCheckpoint>,
}

impl MemoryCheckpoints {
    /// A hook that saves every `every` iterations and starts fresh.
    pub fn every(every: usize) -> Self {
        MemoryCheckpoints {
            every,
            ..MemoryCheckpoints::default()
        }
    }

    /// A hook that resumes from `checkpoint` and keeps saving at the same
    /// cadence.
    pub fn resuming_from(checkpoint: RunCheckpoint, every: usize) -> Self {
        MemoryCheckpoints {
            every,
            resume_from: Some(checkpoint),
            saved: Vec::new(),
        }
    }
}

impl CheckpointHook for MemoryCheckpoints {
    fn resume(&mut self) -> Option<RunCheckpoint> {
        self.resume_from.take()
    }

    fn wants_save(&mut self, iteration: usize) -> bool {
        self.every > 0 && iteration.is_multiple_of(self.every)
    }

    fn save(&mut self, checkpoint: &RunCheckpoint) -> Result<(), ActiveError> {
        self.saved.push(checkpoint.clone());
        Ok(())
    }
}
