//! Sharded-labelling determinism: the worker count, chaos-murdered
//! workers, and crash/resume must all be invisible in the canonical
//! journal and in every reported accuracy / Litho# figure.
//!
//! Three invariants, each enforced by comparing whole artifacts byte for
//! byte across separate processes:
//!
//! 1. `--workers 1` and `--workers 4` write byte-identical canonical
//!    journals and identical results (worker-count invariance).
//! 2. A campaign whose worker is murdered mid-batch (`--kill-shard`)
//!    recovers via checkpoint salvage + reassignment and finishes equal to
//!    the undisturbed campaign (dead-shard recovery).
//! 3. A sharded run crashed after a checkpoint commit and resumed equals
//!    the uninterrupted sharded run (sharding composes with durable runs).

use std::path::Path;
use std::process::Command;

/// Matches `hotspot_bench::CRASH_EXIT_CODE` (re-stated so a silent change
/// to the crash contract fails this test).
const CRASH_EXIT_CODE: i32 = 3;

fn pshd(out: &Path, journal: &Path, extra: &[&str]) -> std::process::ExitStatus {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pshd"));
    cmd.args(["--scale", "0.005", "--seed", "7", "--repeats", "1", "--out"])
        .arg(out)
        .arg("--journal")
        .arg(journal)
        .args(["--canonical-journal", "--log", "warn"])
        .args(extra);
    cmd.status().expect("spawn pshd")
}

fn faults(out: &Path, journal: &Path, extra: &[&str]) -> std::process::ExitStatus {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_faults"));
    cmd.args(["--scale", "0.005", "--seed", "7", "--out"])
        .arg(out)
        .arg("--journal")
        .arg(journal)
        .args(["--canonical-journal", "--log", "warn"])
        .args(extra);
    cmd.status().expect("spawn faults")
}

fn read_journal(path: &Path) -> Vec<u8> {
    let bytes = std::fs::read(path).expect("read journal");
    assert!(!bytes.is_empty(), "canonical journal must not be empty");
    bytes
}

/// Per-method `(method, accuracy, litho)` triples from a
/// `BENCH_pshd.json`-shaped file — wall time is machine noise and excluded.
fn outcomes(path: &Path) -> Vec<(String, f64, u64)> {
    let text = std::fs::read_to_string(path).expect("read results");
    let value: serde_json::Value = serde_json::from_str(&text).expect("parse results");
    value
        .as_array()
        .expect("results are an array")
        .iter()
        .map(|m| {
            (
                m.get("method")
                    .and_then(|v| v.as_str())
                    .expect("method field")
                    .to_owned(),
                m.get("accuracy")
                    .and_then(|v| v.as_f64())
                    .expect("accuracy field"),
                m.get("litho")
                    .and_then(|v| v.as_u64())
                    .expect("litho field"),
            )
        })
        .collect()
}

/// Asserts the canonical journal carries no shard provenance: worker
/// counts, shard telemetry, and chaos events must all be withheld, or
/// differently-sharded runs could never compare equal.
fn assert_no_shard_provenance(bytes: &[u8]) {
    let text = std::str::from_utf8(bytes).expect("journal is UTF-8");
    for banned in ["shard.", "shard.coordinator", "\"workers\""] {
        assert!(
            !text.contains(banned),
            "canonical journal leaked shard marker {banned:?}"
        );
    }
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lithohd-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn worker_count_does_not_change_canonical_journal_bytes() {
    let dir = scratch("shard-n-invariance");
    let out = dir.join("out");
    std::fs::create_dir_all(&out).expect("create out dir");
    let one = dir.join("workers1.jsonl");
    let four = dir.join("workers4.jsonl");

    let status = pshd(&out, &one, &["--workers", "1"]);
    assert!(status.success(), "pshd --workers 1 exited with {status}");
    let results_one = outcomes(&out.join("BENCH_pshd.json"));

    let status = pshd(&out, &four, &["--workers", "4"]);
    assert!(status.success(), "pshd --workers 4 exited with {status}");
    let results_four = outcomes(&out.join("BENCH_pshd.json"));

    let a = read_journal(&one);
    let b = read_journal(&four);
    assert_eq!(
        a, b,
        "canonical journals differ between --workers 1 and --workers 4 — \
         the deterministic merge leaked the worker count"
    );
    assert_no_shard_provenance(&a);
    assert_eq!(results_one.len(), 4, "expected one result per method");
    assert_eq!(
        results_one, results_four,
        "accuracy/Litho# differ between worker counts"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn murdered_worker_campaign_matches_the_undisturbed_one() {
    let dir = scratch("shard-chaos");
    let out = dir.join("out");
    std::fs::create_dir_all(&out).expect("create out dir");
    let calm = dir.join("calm.jsonl");
    let murdered = dir.join("murdered.jsonl");

    let status = faults(&out, &calm, &["--workers", "3"]);
    assert!(status.success(), "undisturbed faults exited with {status}");
    let calm_results = std::fs::read(out.join("faults.json")).expect("read undisturbed results");

    // Murder worker 1 on the second labelling batch of every run. The
    // checkpoint dir gives the killed worker a commit substrate, so
    // recovery exercises salvage-from-disk, not just recomputation.
    let ckpt = dir.join("ckpt");
    let status = faults(
        &out,
        &murdered,
        &[
            "--workers",
            "3",
            "--kill-shard",
            "1@2",
            "--checkpoint-dir",
            ckpt.to_str().expect("utf-8 path"),
        ],
    );
    assert!(status.success(), "murdered faults exited with {status}");
    let murdered_results = std::fs::read(out.join("faults.json")).expect("read murdered results");

    let a = read_journal(&calm);
    let b = read_journal(&murdered);
    assert_eq!(
        a, b,
        "canonical journal differs after a murdered worker — dead-shard \
         recovery changed labels, billing, or event order"
    );
    assert_no_shard_provenance(&b);
    assert_eq!(
        calm_results, murdered_results,
        "faults.json differs after a murdered worker — Litho# accounting \
         did not survive recovery exactly"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_crash_and_resume_matches_uninterrupted_sharded_run() {
    let dir = scratch("shard-resume");
    let out = dir.join("out");
    std::fs::create_dir_all(&out).expect("create out dir");
    let reference = dir.join("reference.jsonl");
    let resumed = dir.join("resumed.jsonl");
    let ref_ckpt = dir.join("ckpt-reference");
    let res_ckpt = dir.join("ckpt-resumed");
    let ref_ckpt = ref_ckpt.to_str().expect("utf-8 path");
    let res_ckpt = res_ckpt.to_str().expect("utf-8 path");
    let every = ["--checkpoint-every", "3"];

    let status = pshd(
        &out,
        &reference,
        &[
            &["--workers", "2", "--checkpoint-dir", ref_ckpt],
            &every[..],
        ]
        .concat(),
    );
    assert!(status.success(), "reference pshd exited with {status}");
    let ref_results = outcomes(&out.join("BENCH_pshd.json"));

    let status = pshd(
        &out,
        &resumed,
        &[
            &["--workers", "2", "--checkpoint-dir", res_ckpt],
            &every[..],
            &["--crash-after-checkpoints", "5"],
        ]
        .concat(),
    );
    assert_eq!(
        status.code(),
        Some(CRASH_EXIT_CODE),
        "crash injection must exit with the crash code, got {status}"
    );

    let status = pshd(
        &out,
        &resumed,
        &[
            &["--workers", "2", "--checkpoint-dir", res_ckpt],
            &every[..],
            &["--resume"],
        ]
        .concat(),
    );
    assert!(status.success(), "resumed pshd exited with {status}");
    let res_results = outcomes(&out.join("BENCH_pshd.json"));

    assert_eq!(
        read_journal(&reference),
        read_journal(&resumed),
        "sharded resumed canonical journal differs from the uninterrupted run"
    );
    assert_eq!(
        ref_results, res_results,
        "sharded resumed results differ from the uninterrupted run"
    );

    std::fs::remove_dir_all(&dir).ok();
}
