//! Crash/resume equivalence: a `pshd` invocation killed mid-run and resumed
//! from its newest checkpoint must reproduce the uninterrupted run exactly —
//! the canonical journal byte for byte, and every method's accuracy and
//! Litho# in the JSON results. This exercises the whole persistence stack:
//! atomic checkpoint commits, journal truncate-and-append, restored RNG /
//! model / oracle-cache state, and replay of already-completed runs without
//! re-billing a single litho simulation.

use std::path::Path;
use std::process::Command;

/// Matches `hotspot_bench::CRASH_EXIT_CODE` (integration tests run in a
/// separate process; the constant is re-stated here so a silent change to
/// the crash contract fails this test).
const CRASH_EXIT_CODE: i32 = 3;

fn pshd(out: &Path, journal: &Path, ckpt: &Path, extra: &[&str]) -> std::process::ExitStatus {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pshd"));
    cmd.args(["--scale", "0.005", "--seed", "7", "--repeats", "1", "--out"])
        .arg(out)
        .arg("--journal")
        .arg(journal)
        .arg("--canonical-journal")
        .arg("--checkpoint-dir")
        .arg(ckpt)
        .args(["--checkpoint-every", "3"])
        .args(extra);
    cmd.status().expect("spawn pshd")
}

/// Per-method `(accuracy, litho)` pairs from a `BENCH_pshd.json`-shaped file.
fn outcomes(path: &Path) -> Vec<(f64, u64)> {
    let text = std::fs::read_to_string(path).expect("read results");
    let value: serde_json::Value = serde_json::from_str(&text).expect("parse results");
    value
        .as_array()
        .expect("results are an array")
        .iter()
        .map(|m| {
            (
                m.get("accuracy")
                    .and_then(|v| v.as_f64())
                    .expect("accuracy field"),
                m.get("litho")
                    .and_then(|v| v.as_u64())
                    .expect("litho field"),
            )
        })
        .collect()
}

#[test]
fn crashed_and_resumed_run_matches_uninterrupted_run_exactly() {
    let scratch =
        std::env::temp_dir().join(format!("lithohd-resume-determinism-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    // Both invocations share one --out so path-bearing telemetry events
    // (e.g. "wrote result file") serialise identically in both journals.
    let out = scratch.join("out");
    std::fs::create_dir_all(&out).expect("create scratch dir");
    let ref_journal = scratch.join("reference.jsonl");
    let res_journal = scratch.join("resumed.jsonl");
    let ref_ckpt = scratch.join("ckpt-reference");
    let res_ckpt = scratch.join("ckpt-resumed");
    let results = out.join("BENCH_pshd.json");

    // Uninterrupted reference run, checkpointing enabled.
    let status = pshd(&out, &ref_journal, &ref_ckpt, &[]);
    assert!(status.success(), "reference pshd exited with {status}");
    let ref_results = scratch.join("reference-results.json");
    std::fs::rename(&results, &ref_results).expect("stash reference results");

    // Same invocation, killed immediately after the 5th checkpoint commit —
    // mid-way through the second of the four method runs.
    let status = pshd(
        &out,
        &res_journal,
        &res_ckpt,
        &["--crash-after-checkpoints", "5"],
    );
    assert_eq!(
        status.code(),
        Some(CRASH_EXIT_CODE),
        "crash injection must exit with the crash code, got {status}"
    );
    assert!(
        !results.exists(),
        "crashed run must not have written final results"
    );

    // Resume from the newest checkpoint and run to completion.
    let status = pshd(&out, &res_journal, &res_ckpt, &["--resume"]);
    assert!(status.success(), "resumed pshd exited with {status}");

    // The stitched journal (crashed prefix + resumed suffix) must equal the
    // uninterrupted journal byte for byte.
    let a = std::fs::read(&ref_journal).expect("read reference journal");
    let b = std::fs::read(&res_journal).expect("read resumed journal");
    assert!(!a.is_empty(), "canonical journal must not be empty");
    assert_eq!(
        a, b,
        "resumed canonical journal differs from the uninterrupted run — \
         checkpoint state or journal truncation failed to restore the stream"
    );

    // Canonical journals stay free of checkpoint provenance and wall clocks,
    // so checkpointed, crashed, and plain runs all compare equal.
    let text = String::from_utf8(b).expect("journal is UTF-8");
    for banned in ["\"type\":\"resume\"", "store.checkpoint", "checkpoint."] {
        assert!(
            !text.contains(banned),
            "canonical journal leaked checkpoint marker {banned:?}"
        );
    }

    // Outcome equivalence: identical accuracy and identical Litho# — the
    // resumed run re-billed nothing.
    let expect = outcomes(&ref_results);
    let got = outcomes(&results);
    assert_eq!(expect.len(), 4, "expected one result per method");
    assert_eq!(
        expect, got,
        "resumed accuracy/Litho# diverged from the uninterrupted run"
    );

    std::fs::remove_dir_all(&scratch).ok();
}
