//! Byte-identical-journal determinism: two separate `pshd` processes with
//! the same seed and `--canonical-journal` must produce journal files that
//! are equal byte for byte. This is stronger than the outcome-level
//! determinism tests — every event, field, and metric in the telemetry
//! stream (minus wall-clock measurements, which canonical mode withholds)
//! has to replay identically.

use std::path::Path;
use std::process::Command;

fn run_pshd(out: &Path, journal: &Path) {
    run_pshd_with(out, journal, &[]);
}

fn run_pshd_with(out: &Path, journal: &Path, extra: &[&str]) {
    let status = Command::new(env!("CARGO_BIN_EXE_pshd"))
        .args(["--scale", "0.005", "--seed", "7", "--repeats", "1", "--out"])
        .arg(out)
        .arg("--journal")
        .arg(journal)
        .arg("--canonical-journal")
        .args(extra)
        .status()
        .expect("spawn pshd");
    assert!(status.success(), "pshd exited with {status}");
}

#[test]
fn identically_seeded_runs_write_byte_identical_canonical_journals() {
    let dir =
        std::env::temp_dir().join(format!("lithohd-canonical-journal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let first = dir.join("run1.jsonl");
    let second = dir.join("run2.jsonl");
    run_pshd(&dir, &first);
    run_pshd(&dir, &second);

    let a = std::fs::read(&first).expect("read first journal");
    let b = std::fs::read(&second).expect("read second journal");
    assert!(!a.is_empty(), "canonical journal must not be empty");
    assert_eq!(
        a, b,
        "identically-seeded canonical journals differ — a nondeterministic \
         source (wall clock, hash order, ambient RNG) leaked into telemetry"
    );

    // Canonical mode must actually withhold wall-clock data.
    let text = String::from_utf8(a).expect("journal is UTF-8");
    assert!(text.lines().count() > 10, "journal suspiciously short");
    for banned in ["elapsed_us", "elapsed_ms", "duration_us", ".seconds"] {
        assert!(
            !text.contains(banned),
            "canonical journal leaked wall-clock marker {banned:?}"
        );
    }

    // The observability events the dashboard renders from must survive
    // canonical mode and parse into typed records.
    let journal = hotspot_bench::journal::Journal::parse_str(&text);
    let selections = journal.selections();
    assert!(
        !selections.is_empty(),
        "canonical journal carries no `clip selected` events"
    );
    assert!(
        selections
            .iter()
            .all(|s| s.uncertainty.is_finite() && s.diversity.is_finite()),
        "selection scores must be finite"
    );
    let bins = journal.calibration_bins();
    for stage in ["before", "iteration", "after"] {
        assert!(
            bins.iter().any(|b| b.stage == stage),
            "canonical journal carries no `calibration bin` events for stage {stage:?}"
        );
    }
    let benchmarks = journal.benchmarks();
    assert!(
        !benchmarks.is_empty(),
        "canonical journal carries no `benchmark ready` spec records"
    );
    assert!(
        benchmarks.iter().all(|b| !b.tech.is_empty()),
        "benchmark records must carry the tech needed for re-synthesis"
    );

    // And the dashboard rendered from each journal must itself be
    // byte-identical: same journal bytes in, same SVG bytes out.
    let dash_a = dir.join("dash_a");
    let dash_b = dir.join("dash_b");
    let summary_a = hotspot_bench::render::render_dashboard(
        &journal,
        &dash_a,
        &hotspot_bench::render::RenderOptions { max_clips: 2 },
    )
    .expect("render first dashboard");
    let summary_b = hotspot_bench::render::render_dashboard(
        &hotspot_bench::journal::Journal::parse_str(&text),
        &dash_b,
        &hotspot_bench::render::RenderOptions { max_clips: 2 },
    )
    .expect("render second dashboard");
    assert_eq!(summary_a.files, summary_b.files);
    assert!(summary_a.files.contains(&"index.html".to_string()));
    for name in &summary_a.files {
        let fa = std::fs::read(dash_a.join(name)).expect("read first rendering");
        let fb = std::fs::read(dash_b.join(name)).expect("read second rendering");
        assert_eq!(fa, fb, "rendered {name} differs between identical journals");
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Tracing and kernel counters are observability provenance: turning
/// `--trace` on must not change a canonical journal by a single byte, and
/// neither the `kernel.*` counters nor the replayed `profile` span events
/// may appear in it. The trace file itself still gets written — the export
/// channel is the trace JSON, never the journal.
#[test]
fn trace_flag_and_kernel_counters_stay_out_of_canonical_journals() {
    let dir = std::env::temp_dir().join(format!("lithohd-canonical-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let traced_journal = dir.join("traced.jsonl");
    let plain_journal = dir.join("plain.jsonl");
    let trace_path = dir.join("trace.json");
    run_pshd_with(
        &dir,
        &traced_journal,
        &[
            "--workers",
            "2",
            "--trace",
            trace_path.to_str().expect("utf-8 path"),
        ],
    );
    run_pshd_with(&dir, &plain_journal, &["--workers", "2"]);

    let traced = std::fs::read(&traced_journal).expect("read traced journal");
    let plain = std::fs::read(&plain_journal).expect("read plain journal");
    assert_eq!(
        traced, plain,
        "--trace changed the canonical journal — tracing must be invisible there"
    );

    let text = String::from_utf8(traced).expect("journal is UTF-8");
    for banned in ["\"kernel.", "\"target\":\"profile\"", "shard.worker"] {
        assert!(
            !text.contains(banned),
            "canonical journal leaked perf provenance marker {banned:?}"
        );
    }

    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    assert!(
        trace.contains("\"traceEvents\"") && trace.contains("shard.worker"),
        "trace export must still carry the span stream"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The Chrome-trace export is structurally deterministic: two same-seed
/// runs emit the same spans with the same names, track layout, nesting
/// (parent names), and counts. Timestamps, durations, and raw span ids are
/// wall-clock/race artifacts and are normalised away before comparing.
#[test]
fn trace_export_structure_is_deterministic_across_same_seed_runs() {
    let dir =
        std::env::temp_dir().join(format!("lithohd-trace-determinism-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let trace_a = dir.join("a.json");
    let trace_b = dir.join("b.json");
    run_pshd_with(
        &dir,
        &dir.join("a.jsonl"),
        &[
            "--workers",
            "2",
            "--trace",
            trace_a.to_str().expect("utf-8"),
        ],
    );
    run_pshd_with(
        &dir,
        &dir.join("b.jsonl"),
        &[
            "--workers",
            "2",
            "--trace",
            trace_b.to_str().expect("utf-8"),
        ],
    );
    let a = normalized_trace(&trace_a);
    let b = normalized_trace(&trace_b);
    assert!(
        a.iter()
            .any(|(tid, name, _)| *tid > 0 && name == "shard.worker"),
        "trace must carry worker-track spans"
    );
    assert!(
        a.iter()
            .any(|(_, _, parent)| parent == "shard.worker" || parent != "<root>"),
        "trace must carry nested spans"
    );
    assert_eq!(a, b, "same-seed trace exports differ structurally");
    std::fs::remove_dir_all(&dir).ok();
}

/// Reduces a Chrome-trace JSON to its timestamp-free structure: a sorted
/// multiset of `(track, span name, parent span name)` rows.
fn normalized_trace(path: &Path) -> Vec<(u64, String, String)> {
    let text = std::fs::read_to_string(path).expect("read trace");
    let value: serde_json::Value = serde_json::from_str(&text).expect("trace parses");
    let events = value
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    let complete: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .collect();
    let name_by_id: std::collections::BTreeMap<u64, &str> = complete
        .iter()
        .filter_map(|e| {
            Some((
                e.get("args")?.get("span_id")?.as_u64()?,
                e.get("name")?.as_str()?,
            ))
        })
        .collect();
    let mut rows: Vec<(u64, String, String)> = complete
        .iter()
        .map(|e| {
            let args = e.get("args").expect("span args");
            let parent = args
                .get("parent_span_id")
                .and_then(|p| p.as_u64())
                .filter(|p| *p != 0)
                .and_then(|p| name_by_id.get(&p).copied())
                .unwrap_or("<root>");
            (
                e.get("tid").and_then(|t| t.as_u64()).expect("tid"),
                e.get("name")
                    .and_then(|n| n.as_str())
                    .expect("name")
                    .to_string(),
                parent.to_string(),
            )
        })
        .collect();
    rows.sort();
    rows
}
