//! Byte-identical-journal determinism: two separate `pshd` processes with
//! the same seed and `--canonical-journal` must produce journal files that
//! are equal byte for byte. This is stronger than the outcome-level
//! determinism tests — every event, field, and metric in the telemetry
//! stream (minus wall-clock measurements, which canonical mode withholds)
//! has to replay identically.

use std::path::Path;
use std::process::Command;

fn run_pshd(out: &Path, journal: &Path) {
    let status = Command::new(env!("CARGO_BIN_EXE_pshd"))
        .args(["--scale", "0.005", "--seed", "7", "--repeats", "1", "--out"])
        .arg(out)
        .arg("--journal")
        .arg(journal)
        .arg("--canonical-journal")
        .status()
        .expect("spawn pshd");
    assert!(status.success(), "pshd exited with {status}");
}

#[test]
fn identically_seeded_runs_write_byte_identical_canonical_journals() {
    let dir =
        std::env::temp_dir().join(format!("lithohd-canonical-journal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let first = dir.join("run1.jsonl");
    let second = dir.join("run2.jsonl");
    run_pshd(&dir, &first);
    run_pshd(&dir, &second);

    let a = std::fs::read(&first).expect("read first journal");
    let b = std::fs::read(&second).expect("read second journal");
    assert!(!a.is_empty(), "canonical journal must not be empty");
    assert_eq!(
        a, b,
        "identically-seeded canonical journals differ — a nondeterministic \
         source (wall clock, hash order, ambient RNG) leaked into telemetry"
    );

    // Canonical mode must actually withhold wall-clock data.
    let text = String::from_utf8(a).expect("journal is UTF-8");
    assert!(text.lines().count() > 10, "journal suspiciously short");
    for banned in ["elapsed_us", "elapsed_ms", "duration_us", ".seconds"] {
        assert!(
            !text.contains(banned),
            "canonical journal leaked wall-clock marker {banned:?}"
        );
    }

    // The observability events the dashboard renders from must survive
    // canonical mode and parse into typed records.
    let journal = hotspot_bench::journal::Journal::parse_str(&text);
    let selections = journal.selections();
    assert!(
        !selections.is_empty(),
        "canonical journal carries no `clip selected` events"
    );
    assert!(
        selections
            .iter()
            .all(|s| s.uncertainty.is_finite() && s.diversity.is_finite()),
        "selection scores must be finite"
    );
    let bins = journal.calibration_bins();
    for stage in ["before", "iteration", "after"] {
        assert!(
            bins.iter().any(|b| b.stage == stage),
            "canonical journal carries no `calibration bin` events for stage {stage:?}"
        );
    }
    let benchmarks = journal.benchmarks();
    assert!(
        !benchmarks.is_empty(),
        "canonical journal carries no `benchmark ready` spec records"
    );
    assert!(
        benchmarks.iter().all(|b| !b.tech.is_empty()),
        "benchmark records must carry the tech needed for re-synthesis"
    );

    // And the dashboard rendered from each journal must itself be
    // byte-identical: same journal bytes in, same SVG bytes out.
    let dash_a = dir.join("dash_a");
    let dash_b = dir.join("dash_b");
    let summary_a = hotspot_bench::render::render_dashboard(
        &journal,
        &dash_a,
        &hotspot_bench::render::RenderOptions { max_clips: 2 },
    )
    .expect("render first dashboard");
    let summary_b = hotspot_bench::render::render_dashboard(
        &hotspot_bench::journal::Journal::parse_str(&text),
        &dash_b,
        &hotspot_bench::render::RenderOptions { max_clips: 2 },
    )
    .expect("render second dashboard");
    assert_eq!(summary_a.files, summary_b.files);
    assert!(summary_a.files.contains(&"index.html".to_string()));
    for name in &summary_a.files {
        let fa = std::fs::read(dash_a.join(name)).expect("read first rendering");
        let fb = std::fs::read(dash_b.join(name)).expect("read second rendering");
        assert_eq!(fa, fb, "rendered {name} differs between identical journals");
    }

    std::fs::remove_dir_all(&dir).ok();
}
