//! End-to-end tests for the `lithohd-report` binary: the real executable is
//! spawned on synthetic journals and a committed-style baseline, covering
//! the Markdown report (including truncated-journal tolerance), the diff
//! view, and both gate verdicts with their exit codes.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn report_bin() -> &'static str {
    env!("CARGO_BIN_EXE_lithohd-report")
}

fn run(args: &[&str]) -> Output {
    Command::new(report_bin())
        .args(args)
        .output()
        .expect("lithohd-report spawns")
}

fn temp_file(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("lithohd-report-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("fixture writes");
    path
}

fn journal_text(accuracy: f64, litho: u64) -> String {
    let mut text = String::new();
    text.push_str(&format!(
        concat!(
            r#"{{"type":"event","seq":0,"target":"core.framework","message":"iteration complete","#,
            r#""run_id":1,"iteration":1,"temperature":1.4,"ece":0.03,"batch_size":10,"#,
            r#""batch_hotspots":2,"labeled_size":60,"train_loss":0.5,"failed_labels":0,"#,
            r#""omega1":0.6,"omega2":0.4}}"#,
            "\n",
            r#"{{"type":"event","seq":1,"target":"profile","message":"nn.train","#,
            r#""span":"run/iteration/nn.train","duration_us":2000}}"#,
            "\n",
            r#"{{"type":"event","seq":2,"target":"core.framework","message":"run complete","#,
            r#""run_id":1,"selector":"entropy","accuracy":{accuracy},"litho":{litho},"#,
            r#""false_alarms":1,"ece_before":0.04,"ece_after":0.01,"degraded":false,"#,
            r#""label_failures":0,"oracle_retries":2,"oracle_giveups":0,"quorum_votes":0,"#,
            r#""elapsed_ms":1500}}"#,
            "\n",
            r#"{{"type":"snapshot","seq":3,"metrics":{{"counters":{{"litho.oracle.calls":{litho}}},"#,
            r#""gauges":{{"calibration.temperature":1.4}},"histograms":{{}}}}}}"#,
            "\n",
        ),
        accuracy = accuracy,
        litho = litho,
    ));
    text
}

fn baseline_text(accuracy: f64, litho: u64) -> String {
    format!(
        r#"[{{"method":"Ours","benchmark":"ICCAD12","accuracy":{accuracy},"litho":{litho},"elapsed":2.0}}]"#
    )
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn cleanup(paths: &[&Path]) {
    for path in paths {
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn gate_passes_on_the_committed_baseline_shape() {
    let journal = temp_file("gate-pass.jsonl", &journal_text(0.95, 120));
    let baseline = temp_file("gate-pass.json", &baseline_text(0.95, 120));
    let output = run(&[
        "gate",
        journal.to_str().unwrap(),
        baseline.to_str().unwrap(),
        "--tolerance-acc",
        "0.5",
        "--tolerance-litho",
        "0",
    ]);
    cleanup(&[&journal, &baseline]);
    let text = stdout(&output);
    assert!(output.status.success(), "gate must pass: {text}");
    assert!(text.contains("gate: PASS"), "got: {text}");
    assert!(text.contains("| Ours | accuracy |"), "got: {text}");
}

#[test]
fn gate_fails_nonzero_on_degraded_accuracy() {
    // The journal ran at 93% against a 95% baseline: a 2-point drop, far
    // beyond the 0.5-point tolerance.
    let journal = temp_file("gate-acc.jsonl", &journal_text(0.93, 120));
    let baseline = temp_file("gate-acc.json", &baseline_text(0.95, 120));
    let output = run(&[
        "gate",
        journal.to_str().unwrap(),
        baseline.to_str().unwrap(),
        "--tolerance-acc",
        "0.5",
        "--tolerance-litho",
        "0",
    ]);
    cleanup(&[&journal, &baseline]);
    let text = stdout(&output);
    assert_eq!(output.status.code(), Some(1), "got: {text}");
    assert!(text.contains("gate: FAIL"), "got: {text}");
    assert!(text.contains("**REGRESSION**"), "got: {text}");
}

#[test]
fn gate_fails_nonzero_on_extra_litho_clips() {
    let journal = temp_file("gate-litho.jsonl", &journal_text(0.95, 121));
    let baseline = temp_file("gate-litho.json", &baseline_text(0.95, 120));
    let output = run(&[
        "gate",
        journal.to_str().unwrap(),
        baseline.to_str().unwrap(),
        "--tolerance-litho",
        "0",
    ]);
    cleanup(&[&journal, &baseline]);
    assert_eq!(output.status.code(), Some(1));
}

#[test]
fn report_renders_markdown_and_skips_a_truncated_trailing_line() {
    let mut text = journal_text(0.95, 120);
    text.push_str(r#"{"type":"snapshot","seq":4,"metrics":{"counters":{"litho.ora"#);
    let journal = temp_file("report.jsonl", &text);
    let output = run(&["report", journal.to_str().unwrap()]);
    cleanup(&[&journal]);
    let text = stdout(&output);
    assert!(output.status.success(), "got: {text}");
    assert!(text.contains("1 skipped line"), "got: {text}");
    assert!(text.contains("## Runs"), "got: {text}");
    assert!(text.contains("| 1 | Ours | 95.00% | 120 |"), "got: {text}");
    assert!(text.contains("## Iterations (run 1)"), "got: {text}");
    assert!(text.contains("`litho.oracle.calls`"), "got: {text}");
    assert!(text.contains("run/iteration/nn.train"), "got: {text}");
    assert!(text.contains("2 retries"), "got: {text}");
}

#[test]
fn diff_reports_per_metric_deltas() {
    let a = temp_file("diff-a.jsonl", &journal_text(0.95, 120));
    let b = temp_file("diff-b.jsonl", &journal_text(0.97, 110));
    let output = run(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    cleanup(&[&a, &b]);
    let text = stdout(&output);
    assert!(output.status.success(), "got: {text}");
    assert!(
        text.contains("| Ours | accuracy | 95.00% | 97.00% | +2.00pp |"),
        "got: {text}"
    );
    assert!(
        text.contains("| Ours | litho | 120.0 | 110.0 | -10.0 |"),
        "got: {text}"
    );
}

#[test]
fn usage_errors_exit_2() {
    assert_eq!(run(&[]).status.code(), Some(2));
    assert_eq!(run(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(run(&["gate", "only-one-arg"]).status.code(), Some(2));
    assert_eq!(
        run(&["gate", "a.jsonl", "b.json", "--tolerance-acc"])
            .status
            .code(),
        Some(2)
    );
    // Missing files are I/O errors, also exit 2.
    assert_eq!(
        run(&["report", "/nonexistent/journal.jsonl"]).status.code(),
        Some(2)
    );
}
