//! Golden-file determinism for the offline dashboard: the same journal must
//! render the same file set with byte-identical contents, every SVG must be
//! structurally sound, and clip geometry must re-synthesize from the spec
//! carried in the journal alone — no network, no original artifacts.

use std::path::Path;

use hotspot_bench::journal::Journal;
use hotspot_bench::render::{render_dashboard, RenderOptions};

/// A hand-written journal exercising every record kind the renderer reads:
/// a re-synthesizable benchmark spec, two runs (entropy and random), their
/// iterations, selections, and calibration bins.
fn synthetic_journal() -> Journal {
    let mut text = String::new();
    text.push_str(
        r#"{"type":"event","seq":0,"target":"bench.generate","message":"benchmark ready","benchmark":"TinyEuv","clips":30,"seed":3,"tech":"Euv7","hotspots":6,"non_hotspots":24,"dup_rate":0.0,"near_miss_rate":0.1}"#,
    );
    text.push('\n');
    for (run_id, selector) in [(0u64, "entropy"), (1u64, "random")] {
        text.push_str(&format!(
            r#"{{"type":"event","seq":{seq},"target":"core.framework","message":"run started","run_id":{run_id},"selector":"{selector}","pool":24,"seed":3}}"#,
            seq = 1 + run_id * 10,
        ));
        text.push('\n');
        for iteration in 1u64..=3 {
            let temperature = 1.0 + 0.2 * iteration as f64;
            text.push_str(&format!(
                r#"{{"type":"event","seq":{seq},"target":"core.framework","message":"iteration complete","run_id":{run_id},"iteration":{iteration},"temperature":{temperature},"ece":{ece},"batch_size":2,"batch_hotspots":1,"labeled_size":{labeled},"train_loss":{loss},"failed_labels":0}}"#,
                seq = 2 + run_id * 10 + iteration,
                ece = 0.1 / iteration as f64,
                labeled = 6 + 2 * iteration,
                loss = 0.5 / iteration as f64,
            ));
            text.push('\n');
            for rank in 0u64..2 {
                text.push_str(&format!(
                    r#"{{"type":"event","seq":{seq},"target":"core.framework","message":"clip selected","run_id":{run_id},"iteration":{iteration},"clip":{clip},"rank":{rank},"uncertainty":{unc},"diversity":{div}}}"#,
                    seq = 6 + run_id * 10 + iteration * 2 + rank,
                    clip = (run_id * 13 + iteration * 5 + rank) % 30,
                    unc = 0.3 + 0.1 * iteration as f64 + 0.05 * rank as f64,
                    div = 0.8 - 0.1 * iteration as f64,
                ));
                text.push('\n');
            }
            text.push_str(&format!(
                r#"{{"type":"event","seq":{seq},"target":"core.framework","message":"calibration bin","run_id":{run_id},"stage":"iteration","iteration":{iteration},"bin":7,"lower":0.7,"upper":0.8,"count":4,"confidence":0.75,"accuracy":{acc}}}"#,
                seq = 30 + run_id * 10 + iteration,
                acc = 0.5 + 0.1 * iteration as f64,
            ));
            text.push('\n');
        }
        text.push_str(&format!(
            r#"{{"type":"event","seq":{seq},"target":"core.framework","message":"calibration bin","run_id":{run_id},"stage":"before","iteration":0,"bin":9,"lower":0.9,"upper":1.0,"count":6,"confidence":0.98,"accuracy":0.6}}"#,
            seq = 50 + run_id,
        ));
        text.push('\n');
        text.push_str(&format!(
            r#"{{"type":"event","seq":{seq},"target":"core.framework","message":"calibration bin","run_id":{run_id},"stage":"after","iteration":0,"bin":8,"lower":0.8,"upper":0.9,"count":6,"confidence":0.85,"accuracy":0.82}}"#,
            seq = 52 + run_id,
        ));
        text.push('\n');
        text.push_str(&format!(
            r#"{{"type":"event","seq":{seq},"target":"core.framework","message":"run complete","run_id":{run_id},"selector":"{selector}","accuracy":{acc},"litho":12,"false_alarms":1,"ece_before":0.2,"ece_after":0.03,"degraded":false,"label_failures":0,"oracle_retries":0,"oracle_giveups":0,"quorum_votes":0}}"#,
            seq = 54 + run_id,
            acc = 0.9 - 0.1 * run_id as f64,
        ));
        text.push('\n');
    }
    Journal::parse_str(&text)
}

fn render_into(dir: &Path) -> Vec<String> {
    render_dashboard(&synthetic_journal(), dir, &RenderOptions { max_clips: 3 })
        .expect("dashboard renders")
        .files
}

#[test]
fn dashboard_renders_byte_identical_and_structurally_sound() {
    let scratch =
        std::env::temp_dir().join(format!("lithohd-render-golden-{}", std::process::id()));
    let dir_a = scratch.join("a");
    let dir_b = scratch.join("b");
    let files_a = render_into(&dir_a);
    let files_b = render_into(&dir_b);
    assert_eq!(files_a, files_b, "file sets differ between renders");

    // Every expected chart family is present.
    assert!(files_a.contains(&"methods_accuracy.svg".to_string()));
    assert!(files_a.contains(&"methods_litho.svg".to_string()));
    for run in ["run000", "run001"] {
        for kind in ["trajectory", "selection", "reliability"] {
            let name = format!("{run}_{kind}.svg");
            assert!(files_a.contains(&name), "missing {name}");
        }
    }
    let clip_count = files_a.iter().filter(|f| f.starts_with("clip_")).count();
    assert_eq!(clip_count, 3, "expected exactly max_clips clip renderings");
    assert_eq!(files_a.last().map(String::as_str), Some("index.html"));

    for name in &files_a {
        let a = std::fs::read(dir_a.join(name)).expect("read first render");
        let b = std::fs::read(dir_b.join(name)).expect("read second render");
        assert_eq!(a, b, "{name} differs between identical renders");

        let text = String::from_utf8(a).expect("output is UTF-8");
        assert!(!text.contains("NaN"), "{name} contains NaN");
        assert!(!text.contains("inf"), "{name} contains inf");
        if name.ends_with(".svg") {
            assert!(text.starts_with("<svg "), "{name} missing svg root");
            assert!(text.ends_with("</svg>"), "{name} unterminated");
            assert_eq!(
                text.matches("<g ").count(),
                text.matches("</g>").count(),
                "{name} has unbalanced groups"
            );
        } else {
            assert!(text.starts_with("<!DOCTYPE html>"));
            // index.html inlines every SVG rather than linking out.
            assert!(!text.contains("<img"), "index.html must not link files");
            assert_eq!(
                text.matches("<svg ").count(),
                files_a.len() - 1,
                "index.html must inline every rendered SVG"
            );
        }
    }

    // Clip renderings carry the geometry overlays: metal, core, caption.
    let clip_name = files_a.iter().find(|f| f.starts_with("clip_")).unwrap();
    let clip = std::fs::read_to_string(dir_a.join(clip_name)).expect("read clip svg");
    assert!(clip.contains("stroke-dasharray"), "core outline missing");
    assert!(clip.contains("nm window"), "caption missing");

    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn hotspot_labelled_clips_render_first() {
    let scratch = std::env::temp_dir().join(format!("lithohd-render-order-{}", std::process::id()));
    let files = render_dashboard(
        &synthetic_journal(),
        &scratch,
        &RenderOptions { max_clips: 30 },
    )
    .expect("dashboard renders")
    .files;
    let clips: Vec<&String> = files.iter().filter(|f| f.starts_with("clip_")).collect();
    assert!(!clips.is_empty());
    let hotspot_flags: Vec<bool> = clips
        .iter()
        .map(|name| {
            std::fs::read_to_string(scratch.join(name))
                .expect("read clip svg")
                .contains("— hotspot,")
        })
        .collect();
    // All hotspot-labelled clips precede all non-hotspot ones.
    let first_cold = hotspot_flags.iter().position(|h| !h).unwrap_or(clips.len());
    assert!(
        hotspot_flags[first_cold..].iter().all(|h| !h),
        "hotspot clips must sort before non-hotspot clips: {hotspot_flags:?}"
    );
    std::fs::remove_dir_all(&scratch).ok();
}
