//! Shared experiment harness for the table/figure reproduction binaries.
//!
//! Every `src/bin/*` target reproduces one table or figure of the paper (see
//! DESIGN.md for the index). This library holds what they share: a tiny CLI
//! parser (`--scale`, `--seed`, `--out`), benchmark construction, method
//! runners, plain-text table rendering, JSON result output, and the Fig. 6(b)
//! runtime model (10 s penalty per litho-clip plus measured PSHD seconds).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod checkpoint;
mod cli;
pub mod journal;
mod methods;
mod pca;
pub mod profile;
pub mod render;
mod report;
mod runtime;

pub use checkpoint::{
    run_active_method_avg_checkpointed, run_active_method_avg_sharded_checkpointed,
    run_active_method_checkpointed, run_active_method_faulty_checkpointed,
    run_active_method_faulty_sharded_checkpointed, run_active_method_sharded_checkpointed,
    CheckpointedSequence, RunRecord, CRASH_EXIT_CODE,
};
pub use cli::ExperimentArgs;
pub use methods::{
    run_active_method, run_active_method_avg, run_active_method_avg_sharded,
    run_active_method_faulty, run_active_method_faulty_hooked, run_active_method_faulty_sharded,
    run_active_method_faulty_sharded_hooked, run_active_method_hooked, run_active_method_sharded,
    run_active_method_sharded_hooked, run_pattern_method, ActiveMethod, FaultyMethodResult,
    MethodResult, ShardSpec,
};
pub use pca::project_2d;
pub use report::{ratio_row, render_table, write_json, TableRow};
pub use runtime::{runtime_seconds, LITHO_SECONDS_PER_CLIP};

use hotspot_layout::{BenchmarkSpec, GeneratedBenchmark};

/// The four evaluated benchmarks of Table II (ICCAD16-1 is excluded for
/// having no hotspots, as in the paper), scaled by `scale`. The small
/// ICCAD16 suites are never scaled below a quarter so their class counts
/// stay meaningful.
pub fn evaluated_specs(scale: f64) -> Vec<BenchmarkSpec> {
    vec![
        BenchmarkSpec::iccad12().scaled(scale),
        BenchmarkSpec::iccad16_2().scaled(scale.max(0.25)),
        BenchmarkSpec::iccad16_3().scaled(scale.max(0.25)),
        BenchmarkSpec::iccad16_4().scaled(scale.max(0.25)),
    ]
}

/// Generates one benchmark, reporting progress as telemetry events. The
/// `benchmark ready` event carries the full spec and seed, so an offline
/// renderer can re-synthesize any clip's geometry from the journal alone.
///
/// # Errors
///
/// Propagates [`hotspot_layout::LayoutError`] from benchmark generation
/// (invalid spec or stalled geometry synthesis).
pub fn try_generate(
    spec: &BenchmarkSpec,
    seed: u64,
) -> Result<GeneratedBenchmark, hotspot_layout::LayoutError> {
    use hotspot_telemetry as telemetry;
    let _span = telemetry::span(telemetry::names::SPAN_GENERATE);
    telemetry::info(
        "bench.generate",
        "generating benchmark",
        &[
            ("benchmark", spec.name.as_str().into()),
            ("hotspots", (spec.hotspots as u64).into()),
            ("non_hotspots", (spec.non_hotspots as u64).into()),
        ],
    );
    // lithohd-lint: allow(determinism-clock) — generation time feeds a telemetry event only
    let start = std::time::Instant::now();
    let bench = GeneratedBenchmark::generate(spec, seed)?;
    telemetry::info(
        "bench.generate",
        telemetry::names::EVENT_BENCHMARK_READY,
        &[
            ("benchmark", spec.name.as_str().into()),
            ("clips", (bench.len() as u64).into()),
            ("seed", seed.into()),
            ("tech", spec.tech.name().into()),
            ("hotspots", (spec.hotspots as u64).into()),
            ("non_hotspots", (spec.non_hotspots as u64).into()),
            ("dup_rate", spec.dup_rate.into()),
            ("near_miss_rate", spec.near_miss_rate.into()),
            ("elapsed_ms", (start.elapsed().as_millis() as u64).into()),
        ],
    );
    Ok(bench)
}
