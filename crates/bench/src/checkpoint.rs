//! Durable-run support for the experiment binaries: wires the
//! `hotspot-store` checkpoint subsystem into the multi-run harnesses.
//!
//! A bench binary executes an ordered *sequence* of framework runs (methods
//! × repeats, or fault-rate sweep cells). [`CheckpointedSequence`] makes
//! the whole sequence durable: each run checkpoints at iteration
//! boundaries, completed runs are recorded in the checkpoint's progress
//! section, and a `--resume` invocation replays completed runs from the
//! record, restores the in-flight run mid-iteration, and executes the rest
//! — producing byte-identical canonical journals and identical final
//! metrics to the uninterrupted invocation.

use std::time::Duration;

use hotspot_active::{ActiveError, CheckpointHook, RunCheckpoint, SamplingConfig};
use hotspot_layout::GeneratedBenchmark;
use hotspot_litho::FaultRates;
use hotspot_store::{ByteReader, ByteWriter, CheckpointBundle, CheckpointStore, StoreError};
use hotspot_telemetry as telemetry;

use crate::cli::{journal_sink, ExperimentArgs};
use crate::methods::{
    run_active_method_faulty_hooked, run_active_method_faulty_sharded_hooked,
    run_active_method_hooked, run_active_method_sharded_hooked, ActiveMethod, FaultyMethodResult,
    MethodResult, ShardSpec,
};

/// Exit code of a `--crash-after-checkpoints` induced crash, distinct from
/// usage errors (2) so the resume-determinism suite can assert the kill
/// actually happened.
pub const CRASH_EXIT_CODE: i32 = 3;

/// The scalar outcome of one completed framework run, persisted in the
/// checkpoint progress section so a resumed harness replays finished runs
/// without re-executing (or re-billing) them.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunRecord {
    /// Detection accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Litho-clip overhead (Eq. 2).
    pub litho: u64,
    /// Billable re-simulations beyond the labelled sets.
    pub extra_simulations: u64,
    /// Oracle retries absorbed.
    pub retries: u64,
    /// Queries abandoned after exhausting retries.
    pub giveups: u64,
    /// Labels that never arrived.
    pub label_failures: u64,
    /// Whether the run degraded.
    pub degraded: bool,
    /// Measured wall seconds (informational; never compared).
    pub secs: f64,
}

impl From<&MethodResult> for RunRecord {
    fn from(r: &MethodResult) -> Self {
        RunRecord {
            accuracy: r.accuracy,
            litho: r.litho as u64,
            secs: r.elapsed.as_secs_f64(),
            ..RunRecord::default()
        }
    }
}

impl From<&FaultyMethodResult> for RunRecord {
    fn from(r: &FaultyMethodResult) -> Self {
        RunRecord {
            accuracy: r.accuracy,
            litho: r.litho as u64,
            extra_simulations: r.extra_simulations as u64,
            retries: r.retries as u64,
            giveups: r.giveups as u64,
            label_failures: r.label_failures as u64,
            degraded: r.degraded,
            secs: 0.0,
        }
    }
}

fn encode_records(records: &[RunRecord]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_usize(records.len());
    for r in records {
        w.put_f64(r.accuracy);
        w.put_u64(r.litho);
        w.put_u64(r.extra_simulations);
        w.put_u64(r.retries);
        w.put_u64(r.giveups);
        w.put_u64(r.label_failures);
        w.put_bool(r.degraded);
        w.put_f64(r.secs);
    }
    w.into_bytes()
}

fn decode_records(bytes: &[u8]) -> Result<Vec<RunRecord>, StoreError> {
    let mut r = ByteReader::new(bytes);
    let len = r.get_seq_len("progress records")?;
    let mut records = Vec::with_capacity(len);
    for _ in 0..len {
        records.push(RunRecord {
            accuracy: r.get_f64("progress")?,
            litho: r.get_u64("progress")?,
            extra_simulations: r.get_u64("progress")?,
            retries: r.get_u64("progress")?,
            giveups: r.get_u64("progress")?,
            label_failures: r.get_u64("progress")?,
            degraded: r.get_bool("progress")?,
            secs: r.get_f64("progress")?,
        });
    }
    r.finish("progress records")?;
    Ok(records)
}

/// Durable execution of an ordered run sequence (see module docs). Build
/// with [`CheckpointedSequence::from_args`]; drive every framework run
/// through [`CheckpointedSequence::next_run`] in a fixed order.
#[derive(Debug)]
pub struct CheckpointedSequence {
    store: CheckpointStore,
    every: usize,
    crash_after: Option<usize>,
    saves_done: usize,
    next_key: u64,
    completed: Vec<RunRecord>,
    inflight: Option<RunCheckpoint>,
    ordinal: usize,
}

impl CheckpointedSequence {
    /// Builds the sequence from `--checkpoint-dir` / `--checkpoint-every` /
    /// `--resume` / `--crash-after-checkpoints`. Returns `None` when no
    /// checkpoint dir was given (the binary runs un-checkpointed).
    ///
    /// Must be called **after** the benchmark is regenerated and **before**
    /// any framework run: on `--resume` it restores cumulative telemetry
    /// (discarding the duplicate increments regeneration just made),
    /// rewinds the run-id allocator, truncates the journal to the
    /// checkpoint's durable position, and opens it for appending. Exits
    /// with a message when `--resume` finds no valid checkpoint.
    pub fn from_args(args: &ExperimentArgs) -> Option<Self> {
        let dir = args.checkpoint_dir.as_ref()?;
        let store = match CheckpointStore::open(dir) {
            Ok(store) => store,
            Err(e) => {
                eprintln!("cannot open checkpoint dir {}: {e}", dir.display());
                std::process::exit(2);
            }
        };
        let next_key = store.latest_key().map_or(1, |k| k + 1);
        let mut seq = CheckpointedSequence {
            store,
            every: args.checkpoint_every,
            crash_after: args.crash_after_checkpoints,
            saves_done: 0,
            next_key,
            completed: Vec::new(),
            inflight: None,
            ordinal: 0,
        };
        if args.resume {
            seq.restore(args);
        }
        Some(seq)
    }

    fn restore(&mut self, args: &ExperimentArgs) {
        let (key, file) = match self.store.load_latest() {
            Ok(Some(found)) => found,
            Ok(None) => {
                eprintln!(
                    "--resume: no valid checkpoint in {}",
                    self.store.dir().display()
                );
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("--resume: cannot read checkpoint store: {e}");
                std::process::exit(2);
            }
        };
        let bundle = match CheckpointBundle::from_file(&file) {
            Ok(bundle) => bundle,
            Err(e) => {
                eprintln!("--resume: checkpoint {key} is unusable: {e}");
                std::process::exit(2);
            }
        };
        let progress = match decode_records(&bundle.progress) {
            Ok(progress) => progress,
            Err(e) => {
                eprintln!("--resume: checkpoint {key} progress is unusable: {e}");
                std::process::exit(2);
            }
        };
        // Cumulative counters/histograms continue from the checkpoint, not
        // from this process's partial re-setup work (the benchmark was
        // regenerated before this call; the original generation is already
        // accounted inside the restored state).
        telemetry::restore_metrics_state(&bundle.metrics);
        telemetry::set_run_id_watermark(bundle.run_id_watermark);
        telemetry::counter(telemetry::names::CHECKPOINT_RESUMES).incr();
        args.open_journal_resumed(bundle.journal);
        if let Some(sink) = journal_sink() {
            sink.record_resume(bundle.run.iteration as u64, key);
        }
        telemetry::info(
            "store.checkpoint",
            "resuming from checkpoint",
            &[
                ("checkpoint", key.into()),
                ("iteration", (bundle.run.iteration as u64).into()),
                ("completed_runs", (progress.len() as u64).into()),
            ],
        );
        self.completed = progress;
        self.inflight = Some(bundle.run);
    }

    /// Executes (or, on resume, replays) the next run of the sequence. The
    /// closure receives the checkpoint hook to thread into
    /// `run_with_oracle_checkpointed`; call order must be identical across
    /// invocations — the sequence is positional.
    pub fn next_run(
        &mut self,
        run: impl FnOnce(&mut dyn CheckpointHook) -> RunRecord,
    ) -> RunRecord {
        if let Some(&done) = self.completed.get(self.ordinal) {
            self.ordinal += 1;
            return done;
        }
        let record = run(self);
        self.completed.push(record);
        self.ordinal += 1;
        record
    }
}

impl CheckpointHook for CheckpointedSequence {
    fn resume(&mut self) -> Option<RunCheckpoint> {
        self.inflight.take()
    }

    fn wants_save(&mut self, iteration: usize) -> bool {
        iteration.is_multiple_of(self.every)
    }

    fn save(&mut self, checkpoint: &RunCheckpoint) -> Result<(), ActiveError> {
        let bundle = CheckpointBundle {
            run: checkpoint.clone(),
            metrics: telemetry::metrics_state(),
            run_id_watermark: telemetry::run_id_watermark(),
            journal: journal_sink().map(|sink| sink.position()),
            progress: encode_records(&self.completed),
        };
        self.store
            .save(self.next_key, &bundle.to_file())
            .map_err(|e| ActiveError::Checkpoint {
                detail: format!("checkpoint save failed: {e}"),
            })?;
        self.next_key += 1;
        self.saves_done += 1;
        if self.crash_after == Some(self.saves_done) {
            // The injected crash the resume-determinism suite drives: die
            // right after the commit rename, like a power cut. Flush sinks
            // first only because a real kill would also find the journal
            // flushed (JsonlSink flushes per record).
            telemetry::flush();
            eprintln!(
                "crash injected after checkpoint {} (--crash-after-checkpoints {})",
                self.next_key - 1,
                self.saves_done
            );
            std::process::exit(CRASH_EXIT_CODE);
        }
        Ok(())
    }
}

/// Checkpointed sibling of [`crate::run_active_method`]: one framework run
/// driven through the sequence.
pub fn run_active_method_checkpointed(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    config: &SamplingConfig,
    seed: u64,
    seq: &mut CheckpointedSequence,
) -> MethodResult {
    let record = seq.next_run(|hook| {
        RunRecord::from(&run_active_method_hooked(method, bench, config, seed, hook))
    });
    method_result(method, bench, record, None)
}

/// Checkpointed sibling of [`crate::run_active_method_avg`]: each repeat is
/// one durable run in the sequence, and the mean is computed from the
/// persisted records, so a resumed average equals the uninterrupted one.
pub fn run_active_method_avg_checkpointed(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    config: &SamplingConfig,
    seed: u64,
    repeats: usize,
    seq: &mut CheckpointedSequence,
) -> MethodResult {
    assert!(repeats > 0, "repeats must be positive");
    let (mut acc, mut litho, mut secs) = (0.0f64, 0.0f64, 0.0f64);
    for repeat in 0..repeats {
        let run_seed = seed + repeat as u64;
        let record = seq.next_run(|hook| {
            RunRecord::from(&run_active_method_hooked(
                method, bench, config, run_seed, hook,
            ))
        });
        acc += record.accuracy;
        litho += record.litho as f64;
        secs += record.secs;
    }
    let n = repeats as f64;
    MethodResult {
        method: method.label().to_owned(),
        benchmark: bench.spec().name.clone(),
        accuracy: acc / n,
        litho: (litho / n).round() as usize,
        elapsed: Duration::from_secs_f64(secs / n),
        workers: None,
    }
}

/// Checkpointed sibling of [`crate::run_active_method_sharded`].
pub fn run_active_method_sharded_checkpointed(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    config: &SamplingConfig,
    seed: u64,
    spec: &ShardSpec,
    seq: &mut CheckpointedSequence,
) -> MethodResult {
    let record = seq.next_run(|hook| {
        RunRecord::from(&run_active_method_sharded_hooked(
            method, bench, config, seed, spec, hook,
        ))
    });
    method_result(method, bench, record, Some(spec.workers))
}

/// Checkpointed sibling of [`crate::run_active_method_avg`] with sharded
/// labelling: each repeat is one durable sharded run.
pub fn run_active_method_avg_sharded_checkpointed(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    config: &SamplingConfig,
    seed: u64,
    repeats: usize,
    spec: &ShardSpec,
    seq: &mut CheckpointedSequence,
) -> MethodResult {
    assert!(repeats > 0, "repeats must be positive");
    let (mut acc, mut litho, mut secs) = (0.0f64, 0.0f64, 0.0f64);
    for repeat in 0..repeats {
        let run_seed = seed + repeat as u64;
        let record = seq.next_run(|hook| {
            RunRecord::from(&run_active_method_sharded_hooked(
                method, bench, config, run_seed, spec, hook,
            ))
        });
        acc += record.accuracy;
        litho += record.litho as f64;
        secs += record.secs;
    }
    let n = repeats as f64;
    MethodResult {
        method: method.label().to_owned(),
        benchmark: bench.spec().name.clone(),
        accuracy: acc / n,
        litho: (litho / n).round() as usize,
        elapsed: Duration::from_secs_f64(secs / n),
        workers: Some(spec.workers),
    }
}

/// Checkpointed sibling of [`crate::run_active_method_faulty_sharded`].
#[allow(clippy::too_many_arguments)]
pub fn run_active_method_faulty_sharded_checkpointed(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    config: &SamplingConfig,
    seed: u64,
    rates: FaultRates,
    quorum: usize,
    spec: &ShardSpec,
    seq: &mut CheckpointedSequence,
) -> FaultyMethodResult {
    let record = seq.next_run(|hook| {
        RunRecord::from(&run_active_method_faulty_sharded_hooked(
            method, bench, config, seed, rates, quorum, spec, hook,
        ))
    });
    faulty_method_result(method, bench, rates, quorum, record)
}

/// Checkpointed sibling of [`crate::run_active_method_faulty`].
#[allow(clippy::too_many_arguments)]
pub fn run_active_method_faulty_checkpointed(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    config: &SamplingConfig,
    seed: u64,
    rates: FaultRates,
    quorum: usize,
    seq: &mut CheckpointedSequence,
) -> FaultyMethodResult {
    let record = seq.next_run(|hook| {
        RunRecord::from(&run_active_method_faulty_hooked(
            method, bench, config, seed, rates, quorum, hook,
        ))
    });
    faulty_method_result(method, bench, rates, quorum, record)
}

fn faulty_method_result(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    rates: FaultRates,
    quorum: usize,
    record: RunRecord,
) -> FaultyMethodResult {
    FaultyMethodResult {
        method: method.label().to_owned(),
        benchmark: bench.spec().name.clone(),
        transient: rates.transient,
        flip: rates.flip,
        quorum: quorum.max(1),
        accuracy: record.accuracy,
        litho: record.litho as usize,
        extra_simulations: record.extra_simulations as usize,
        retries: record.retries as usize,
        giveups: record.giveups as usize,
        label_failures: record.label_failures as usize,
        degraded: record.degraded,
    }
}

fn method_result(
    method: ActiveMethod,
    bench: &GeneratedBenchmark,
    record: RunRecord,
    workers: Option<usize>,
) -> MethodResult {
    MethodResult {
        method: method.label().to_owned(),
        benchmark: bench.spec().name.clone(),
        accuracy: record.accuracy,
        litho: record.litho as usize,
        elapsed: Duration::from_secs_f64(record.secs),
        workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_through_progress_bytes() {
        let records = vec![
            RunRecord {
                accuracy: 0.875,
                litho: 120,
                extra_simulations: 4,
                retries: 2,
                giveups: 1,
                label_failures: 1,
                degraded: true,
                secs: 1.25,
            },
            RunRecord::default(),
        ];
        let decoded = decode_records(&encode_records(&records)).unwrap();
        assert_eq!(decoded, records);
        assert!(decode_records(&encode_records(&records)[..5]).is_err());
    }
}
